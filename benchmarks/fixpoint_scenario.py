"""Shared transitive-closure scenario for the fixpoint benchmarks and CI.

A long-diameter supply graph: one spine path ``0 -> 1 -> ... -> n-1``
with a short leaf hanging off every tenth node.  The closure from node 0
needs ~``n`` expansion rounds, which is exactly the shape that separates
semi-naive from naive iteration: per round the semi-naive frontier is a
couple of rows while the naive frontier is the whole accumulator, so
total row work is O(n) vs O(n²) for the same result.

Churn is *insert-only* (new delivery leaves attached to random spine
nodes), so executors with delta variants enabled warm-restart the cached
closure from just the new edges instead of re-closing from scratch.
Used by ``bench_fixpoint.py`` (pytest gate) and ``ci_bench.py`` (the CI
benchmark/regression pipeline), so the two always measure the same
workload.
"""

from __future__ import annotations

import random
from collections import deque

from repro.engine.algebra import Fixpoint, Join, Project, RecursiveRef, TableScan, Values
from repro.engine.catalog import Catalog
from repro.engine.expressions import BinaryOp, ColumnRef
from repro.engine.schema import Column, Schema
from repro.engine.table import Table

N_NODES = 1200
LEAF_EVERY = 30
CHURN_FRACTION = 0.01  # new edges per tick, as a fraction of the edge count
SEED = 7


def build_edges_catalog(n_nodes: int = N_NODES) -> tuple[Catalog, Table]:
    catalog = Catalog()
    edges = catalog.create_table("edges", Schema([Column("src"), Column("dst")]))
    rows = [{"src": i, "dst": i + 1} for i in range(n_nodes - 1)]
    rows += [
        {"src": i, "dst": n_nodes + i} for i in range(0, n_nodes, LEAF_EVERY)
    ]
    edges.insert_many(rows)
    return catalog, edges


def closure_plan(start: int = 0) -> Fixpoint:
    """Reachable node set from *start* — set semantics, warm-restartable."""
    schema = Schema([Column("node")])
    base = Values(schema, [{"node": start}])
    step = Project(
        Join(
            RecursiveRef(schema),
            TableScan("edges"),
            BinaryOp("==", ColumnRef("node"), ColumnRef("src")),
            how="inner",
        ),
        {"node": ColumnRef("dst")},
    )
    return Fixpoint(base, step)


def churn_step(
    edges: Table, rng: random.Random, tick: int, fraction: float = CHURN_FRACTION
) -> int:
    """Insert-only churn: attach new delivery leaves to random spine nodes."""
    n_new = max(1, int(len(edges) * fraction))
    edges.insert_many(
        {
            "src": rng.randrange(N_NODES),
            "dst": 1_000_000 + tick * 100_000 + j,
        }
        for j in range(n_new)
    )
    return n_new


def bfs_reachable(edges: Table, start: int = 0) -> set:
    """Imperative reference oracle for the closure plan."""
    adjacency: dict = {}
    for row in edges.rows():
        adjacency.setdefault(row["src"], []).append(row["dst"])
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen
