"""Shared rts-derived scenario for the sharded-execution benchmark and tests.

Everything here is module-level and picklable so the same factory builds
identical worlds on the coordinator side (the single-process oracle) and
inside every forked/spawned shard worker.

The scenario scales the rts workload's map up (units drift toward the
script's hard-coded (50, 50) rally point, so a larger world keeps that an
interior point while giving the strip partitioner room) and keeps the
workload **equivalence-safe**: every effect combinator in play is either
an integer sum (``damage``, ``enemies_seen``) or a single-assignment
average (``vx``/``vy`` — one drift assignment per actor), so results are
independent of evaluation order and of which shard computed them.
"""

from __future__ import annotations

import random

from repro.runtime.world import GameWorld
from repro.shard.spec import ShardSpec
from repro.workloads.rts import build_rts_world, unit_rows

#: Interaction reach of the rts scripts: `range` caps at 10, so a band
#: probe spans at most 20 and a halo of 12 per side covers it with slack.
MAX_INTERACTION_RANGE = 10.0
HALO_WIDTH = 12.0


def scenario_spec(world_size: float = 300.0, adaptive_halo: bool = False) -> ShardSpec:
    return ShardSpec(
        axis_column="x",
        world_min=0.0,
        world_max=world_size,
        halo_width=HALO_WIDTH,
        adaptive_halo=adaptive_halo,
        partitioned_classes=("Unit",),
    )


def empty_world_factory(world_size: float = 300.0) -> GameWorld:
    """A ready-to-tick rts world with no units spawned (workers load rows)."""
    return build_rts_world(0, world_size=world_size)


def bench_world_factory() -> GameWorld:
    """The benchmark configuration: 300-wide map, all engine paths on."""
    return empty_world_factory(300.0)


def scenario_rows(n_units: int, world_size: float = 300.0, seed: int = 17) -> list[dict]:
    """Unit rows for the scenario (no ids; the loader assigns them)."""
    return list(unit_rows(n_units, world_size=world_size, seed=seed))


def subscriber_centers(
    n_subscribers: int, world_size: float = 300.0, seed: int = 43
) -> list[tuple[float, float]]:
    """Fixed AOI centers for the subscription fan-out load."""
    rng = random.Random(seed)
    return [
        (rng.uniform(0.0, world_size), rng.uniform(0.0, world_size))
        for _ in range(n_subscribers)
    ]


def build_single_world(n_units: int, world_size: float = 300.0, seed: int = 17) -> GameWorld:
    """The single-process oracle: same factory, same rows, spawned in order."""
    world = empty_world_factory(world_size)
    world.spawn_many("Unit", scenario_rows(n_units, world_size, seed))
    return world


AOI_RADIUS = 8.0


def run_shard_benchmark(
    n_units: int = 10_000,
    n_subscribers: int = 1_000,
    n_shards: int = 4,
    warmup: int = 3,
    ticks: int = 3,
    world_size: float = 300.0,
    seed: int = 17,
) -> dict:
    """Single-process vs sharded tick cost on the same scenario.

    The gated ``shard_speedup`` is **critical-path CPU**: median
    single-process CPU seconds per tick divided by the sharded fleet's
    median ``max(per-worker CPU) + coordinator routing CPU``.  CPU seconds
    (``time.process_time``) are scheduling-invariant, so the number a
    multi-core deployment's wall clock converges to is measured correctly
    even on a single-core CI runner where the worker processes time-slice
    — the same accounting the E7 cluster simulation gates
    (``simulated_tick_seconds = max per-node compute + network``).  Wall
    clock for both sides is reported as informational.
    """
    import functools
    import statistics
    import time

    from repro.shard import ShardedWorld

    spec = scenario_spec(world_size)
    rows = scenario_rows(n_units, world_size, seed)
    centers = subscriber_centers(n_subscribers, world_size)

    single = empty_world_factory(world_size)
    single.spawn_many("Unit", rows)
    sessions = []
    for i, center in enumerate(centers):
        session = single.subscriptions.connect(f"sub-{i}")
        single.subscriptions.subscribe_aoi(
            session, "Unit", radius=AOI_RADIUS, dims=("x", "y"), center=center
        )
        sessions.append(session)
    for _ in range(warmup):
        single.tick()
        for session in sessions:
            session.take()
    single_cpu, single_wall = [], []
    for _ in range(ticks):
        cpu0, wall0 = time.process_time(), time.perf_counter()
        single.tick()
        for session in sessions:
            session.take()
        single_cpu.append(time.process_time() - cpu0)
        single_wall.append(time.perf_counter() - wall0)

    factory = functools.partial(empty_world_factory, world_size)
    with ShardedWorld(factory, spec, n_shards=n_shards) as sharded:
        sharded.load({"Unit": rows})
        for i, center in enumerate(centers):
            sharded.subscribe_aoi(f"sub-{i}", "Unit", radius=AOI_RADIUS, center=center)
        for _ in range(warmup):
            sharded.tick()
        measured = [sharded.tick() for _ in range(ticks)]

    single_cpu_median = statistics.median(single_cpu)
    critical_path = statistics.median(r.critical_path_seconds for r in measured)
    return {
        "n_units": n_units,
        "n_subscribers": n_subscribers,
        "n_shards": n_shards,
        "ticks": ticks,
        "single_cpu_seconds_per_tick": round(single_cpu_median, 6),
        "single_wall_seconds_per_tick": round(statistics.median(single_wall), 6),
        "critical_path_seconds_per_tick": round(critical_path, 6),
        "sharded_wall_seconds_per_tick": round(
            statistics.median(r.wall_seconds for r in measured), 6
        ),
        "max_worker_cpu_seconds_per_tick": round(
            statistics.median(max(r.worker_cpu_seconds) for r in measured), 6
        ),
        "coordinator_cpu_seconds_per_tick": round(
            statistics.median(r.coordinator_cpu_seconds for r in measured), 6
        ),
        "exchange_bytes_per_tick": int(
            statistics.median(r.exchange_bytes for r in measured)
        ),
        "exchange_rows_per_tick": int(
            statistics.median(r.exchange_rows for r in measured)
        ),
        "halo_rows_per_tick": int(statistics.median(r.halo_rows for r in measured)),
        "handoff_rows_per_tick": int(
            statistics.median(r.handoff_rows for r in measured)
        ),
        "subscription_messages_per_tick": int(
            statistics.median(r.subscription_messages for r in measured)
        ),
        "shard_speedup": round(single_cpu_median / critical_path, 3),
        "wall_speedup": round(
            statistics.median(single_wall)
            / statistics.median(r.wall_seconds for r in measured),
            3,
        ),
    }
