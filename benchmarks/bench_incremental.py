"""E14 — delta-driven incremental execution vs. batch and row execution.

The state-effect tick model means most tables change only sparsely between
ticks, yet the batch path re-snapshots and re-scans full tables every tick.
The incremental path (``repro/engine/operators/incremental.py``) maintains
registered queries' materialized results from per-tick deltas instead, so
per-tick work is proportional to the churn, not the table.

Measurements:

* the acceptance gate: on the shared low-churn scenario
  (``incremental_scenario.py``, 2% of rows mutated per tick) the
  incremental path must beat the batch path by >= 3x across a multi-tick
  run, with all three paths producing equivalent results every tick,
* pytest-benchmark timings of one churn+query tick per path,
* an idle Figure-2 world (units that never move): the delta nets to zero
  and tick cost collapses to bookkeeping.

Floats are compared with ``math.isclose``: the view maintains sums by
running addition/subtraction, which is exact for ints but may differ from
a fresh fold by rounding error.
"""

from __future__ import annotations

import math
import random
import time

import pytest

from incremental_scenario import (
    CHURN_FRACTION,
    SEED,
    build_units_catalog,
    churn_step,
    tick_query,
)
from repro import ExecutionMode
from repro.engine.executor import Executor
from repro.workloads import build_rts_world

TICKS = 30


def _normalized(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def _assert_equivalent(a, b, context=""):
    na, nb = _normalized(a), _normalized(b)
    assert len(na) == len(nb), f"{context}: {len(na)} vs {len(nb)} rows"
    for row_a, row_b in zip(na, nb):
        for (key_a, val_a), (key_b, val_b) in zip(row_a, row_b):
            assert key_a == key_b, f"{context}: column {key_a} vs {key_b}"
            if isinstance(val_a, float) or isinstance(val_b, float):
                assert math.isclose(val_a, val_b, rel_tol=1e-9, abs_tol=1e-9), (
                    f"{context}: {key_a}={val_a} vs {val_b}"
                )
            else:
                assert val_a == val_b, f"{context}: {key_a}={val_a} vs {val_b}"


def test_incremental_speedup_low_churn():
    """Acceptance: >= 3x over the batch path on a 2%-churn multi-tick run,
    with incremental/batch/row equivalence asserted every tick."""
    catalog, units = build_units_catalog()
    plan = tick_query()
    row_exec = Executor(catalog, use_batch=False, use_incremental=False)
    batch_exec = Executor(catalog, use_incremental=False)
    inc_exec = Executor(catalog)
    assert inc_exec.register_incremental(plan)

    # Correctness first: all three paths must agree under churn.
    rng = random.Random(SEED + 1)
    for tick in range(10):
        inc_rows = inc_exec.execute(plan).rows
        batch_rows = batch_exec.execute(plan).rows
        row_rows = row_exec.execute(plan).rows
        _assert_equivalent(batch_rows, row_rows, f"tick {tick} batch-vs-row")
        _assert_equivalent(inc_rows, batch_rows, f"tick {tick} inc-vs-batch")
        churn_step(units, rng, tick)

    # Timing: per tick, churn once, then run each path on identical state.
    view = inc_exec.incremental_view(plan)
    inc_time = batch_time = row_time = 0.0
    for tick in range(TICKS):
        churn_step(units, rng, tick)
        start = time.perf_counter()
        inc_exec.execute(plan)
        inc_time += time.perf_counter() - start
        start = time.perf_counter()
        batch_exec.execute(plan)
        batch_time += time.perf_counter() - start
        start = time.perf_counter()
        row_exec.execute(plan)
        row_time += time.perf_counter() - start
    assert view.delta_refreshes >= TICKS, view.stats()

    batch_speedup = batch_time / inc_time
    row_speedup = row_time / inc_time
    print(
        f"\n{TICKS} ticks at {CHURN_FRACTION:.0%} churn: "
        f"incremental {inc_time * 1e3:.1f}ms, batch {batch_time * 1e3:.1f}ms, "
        f"row {row_time * 1e3:.1f}ms -> {batch_speedup:.1f}x vs batch, "
        f"{row_speedup:.1f}x vs row"
    )
    assert batch_speedup >= 3.0, f"incremental only {batch_speedup:.2f}x vs batch"


def test_incremental_noop_tick_is_free():
    """With zero churn the view serves the cached multiset without scanning."""
    catalog, units = build_units_catalog(n_rows=2000)
    plan = tick_query()
    executor = Executor(catalog)
    assert executor.register_incremental(plan)
    executor.execute(plan)
    view = executor.incremental_view(plan)
    executor.execute(plan)
    # A no-op update bumps versions but nets to an empty delta.
    rowid = next(units.row_ids())
    units.update(rowid, dict(units.get(rowid)))
    executor.execute(plan)
    assert view.stats()["noop_hits"] == 2
    assert view.stats()["full_refreshes"] == 1


@pytest.mark.benchmark(group="E14-incremental-tick")
def test_tick_incremental(benchmark):
    catalog, units = build_units_catalog()
    plan = tick_query()
    executor = Executor(catalog)
    executor.register_incremental(plan)
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(units, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)


@pytest.mark.benchmark(group="E14-incremental-tick")
def test_tick_batch(benchmark):
    catalog, units = build_units_catalog()
    plan = tick_query()
    executor = Executor(catalog, use_incremental=False)
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(units, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)


@pytest.mark.benchmark(group="E14-incremental-tick")
def test_tick_row(benchmark):
    catalog, units = build_units_catalog()
    plan = tick_query()
    executor = Executor(catalog, use_batch=False, use_incremental=False)
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(units, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)


@pytest.mark.benchmark(group="E14-incremental-idle-world")
def test_idle_fig2_world_incremental(benchmark):
    world = build_rts_world(
        300,
        mode=ExecutionMode.COMPILED,
        with_physics=False,
        scripts=["count_neighbours"],
        use_incremental=True,
    )
    world.tick()
    benchmark(world.tick)


@pytest.mark.benchmark(group="E14-incremental-idle-world")
def test_idle_fig2_world_batch(benchmark):
    world = build_rts_world(
        300,
        mode=ExecutionMode.COMPILED,
        with_physics=False,
        scripts=["count_neighbours"],
        use_incremental=False,
    )
    world.tick()
    benchmark(world.tick)
