"""Ramp load test: find the tick-deadline breaking point of one world.

Real-time games have a hard per-tick budget (Section 2: the tick loop must
finish before the next frame).  This driver answers the capacity question
"how many entities and subscribers can one world carry before it misses
that budget?" by growing a single RTS world in place — spawning more units
and attaching more fog-of-war subscribers each step — and timing a batch of
ticks at every size.  The ramp stops at the first step whose *median* tick
time exceeds ``--deadline-ms`` (median, not max, so one GC pause cannot end
the run early) and reports that breaking point together with the
per-phase latency percentiles (p50/p95/p99) accumulated by the live
metrics registry over the whole ramp — the same
``repro_tick_phase_seconds`` histograms a Prometheus scrape sees.

The result is appended to the ``history`` list of ``BENCH_tick.json`` (the
artifact ``ci_bench.py`` maintains), so capacity trends ride along with the
speedup trajectory.  Absolute numbers are machine-dependent and never
gated; the artifact records them for trend reading only.

Usage::

    python benchmarks/loadtest.py                        # defaults
    python benchmarks/loadtest.py --deadline-ms 25 --growth 200
    python benchmarks/loadtest.py --trace ramp.trace.json  # Perfetto trace
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import ExecutionMode  # noqa: E402
from repro.workloads.rts import attach_fog_of_war, build_rts_world, unit_rows  # noqa: E402

__all__ = ["run_loadtest", "append_history", "main"]


def run_loadtest(
    *,
    start_units: int = 100,
    growth: int = 100,
    max_steps: int = 12,
    ticks_per_step: int = 5,
    deadline_ms: float = 50.0,
    subscribers_per_step: int = 8,
    vision: float = 12.0,
    world_size: float = 200.0,
    seed: int = 17,
    tracer=None,
) -> dict:
    """Grow one world until the median tick breaches *deadline_ms*.

    Each step spawns *growth* more units and connects
    *subscribers_per_step* more AOI subscribers into the **same** world
    (state, plan caches and incremental views persist across steps, as
    they would in a long-running server), then times *ticks_per_step*
    ticks.  Returns a summary dict with per-step samples, the breaking
    point (or ``None`` when the ramp completed under deadline), and the
    phase-histogram percentiles from the attached metrics registry.
    """
    world = build_rts_world(
        start_units, mode=ExecutionMode.COMPILED, world_size=world_size, seed=seed
    )
    metrics = world.attach_metrics()
    if tracer is not None:
        world.attach_tracer(tracer)
    sessions: list = []
    units = start_units
    steps: list[dict] = []
    breaking_point: dict | None = None
    for step in range(max_steps):
        if step > 0:
            world.spawn_many("Unit", unit_rows(growth, world_size, seed + step))
            units += growth
        _, new_sessions, _ = attach_fog_of_war(
            world, n_observers=subscribers_per_step, vision=vision, seed=seed + step
        )
        sessions.extend(new_sessions)
        world.tick()  # warm plans/views for the new size before sampling
        for session in sessions:
            session.take()
        samples = []
        messages = 0
        for _ in range(ticks_per_step):
            start = time.perf_counter()
            world.tick()
            samples.append(time.perf_counter() - start)
            for session in sessions:
                messages += len(session.take())
        median_ms = statistics.median(samples) * 1000.0
        entry = {
            "step": step,
            "units": units,
            "subscribers": len(sessions),
            "median_tick_ms": round(median_ms, 3),
            "max_tick_ms": round(max(samples) * 1000.0, 3),
            "subscription_messages": messages,
        }
        steps.append(entry)
        if median_ms > deadline_ms:
            breaking_point = entry
            break
    return {
        "workload": "rts+aoi",
        "deadline_ms": deadline_ms,
        "start_units": start_units,
        "growth": growth,
        "ticks_per_step": ticks_per_step,
        "subscribers_per_step": subscribers_per_step,
        "steps": steps,
        "breached": breaking_point is not None,
        "breaking_point": breaking_point,
        "phase_quantiles_ms": {
            phase: {name: round(value * 1000.0, 3) for name, value in quantiles.items()}
            for phase, quantiles in metrics.phase_quantiles().items()
        },
    }


def append_history(result: dict, output_path: str, limit: int = 200) -> None:
    """Append one loadtest entry to the artifact's ``history`` list.

    ``BENCH_tick.json`` is owned by ``ci_bench.py``; this only touches the
    carried-forward ``history`` so both tools accumulate into one
    trajectory.  Creates a minimal artifact when none exists yet.
    """
    data: dict = {}
    try:
        with open(output_path) as handle:
            data = json.load(handle)
            if not isinstance(data, dict):
                data = {}
    except (OSError, ValueError):
        pass
    history = data.get("history")
    if not isinstance(history, list):
        history = []
    compact = {k: v for k, v in result.items() if k != "steps"}
    history.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "loadtest": compact,
        }
    )
    data["history"] = history[-limit:]
    with open(output_path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--start-units", type=int, default=100)
    parser.add_argument("--growth", type=int, default=100)
    parser.add_argument("--max-steps", type=int, default=12)
    parser.add_argument("--ticks-per-step", type=int, default=5)
    parser.add_argument("--deadline-ms", type=float, default=50.0)
    parser.add_argument("--subscribers-per-step", type=int, default=8)
    parser.add_argument("--world-size", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--output", default="BENCH_tick.json", help="artifact whose history to append to"
    )
    parser.add_argument(
        "--no-history", action="store_true", help="do not touch the artifact"
    )
    parser.add_argument(
        "--trace", default=None, help="also export a Chrome trace-event JSON here"
    )
    args = parser.parse_args(argv)

    tracer = None
    if args.trace:
        from repro.obs.tracing import TickTracer

        tracer = TickTracer()
    result = run_loadtest(
        start_units=args.start_units,
        growth=args.growth,
        max_steps=args.max_steps,
        ticks_per_step=args.ticks_per_step,
        deadline_ms=args.deadline_ms,
        subscribers_per_step=args.subscribers_per_step,
        world_size=args.world_size,
        seed=args.seed,
        tracer=tracer,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["breached"]:
        bp = result["breaking_point"]
        print(
            f"deadline {args.deadline_ms}ms breached at {bp['units']} units / "
            f"{bp['subscribers']} subscribers (median {bp['median_tick_ms']}ms)",
            file=sys.stderr,
        )
    else:
        last = result["steps"][-1]
        print(
            f"ramp completed under the {args.deadline_ms}ms deadline at "
            f"{last['units']} units / {last['subscribers']} subscribers "
            f"(median {last['median_tick_ms']}ms)",
            file=sys.stderr,
        )
    if tracer is not None:
        tracer.export(args.trace)
        print(f"wrote trace {args.trace}", file=sys.stderr)
    if not args.no_history:
        append_history(result, args.output)
        print(f"appended loadtest entry to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
