"""E1 — Figures 1 and 2 of the paper.

The class-declaration fragment (Figure 1) and the accum-loop counting units
in range (Figure 2) compile and run; the compiled set-at-a-time execution
produces the same counts as the per-object interpreter, and this benchmark
measures the cost of one tick of that exact query in both modes.
"""

from __future__ import annotations

import pytest

from repro import ExecutionMode
from repro.workloads import build_rts_world


def _world(mode: ExecutionMode, n: int = 300):
    return build_rts_world(n, mode=mode, with_physics=False, scripts=["count_neighbours"])


def test_fig2_compiled_equals_interpreted():
    compiled = _world(ExecutionMode.COMPILED, 150)
    interpreted = _world(ExecutionMode.INTERPRETED, 150)
    compiled.tick()
    interpreted.tick()
    seen_c = {(k[1], v["enemies_seen"]) for k, v in compiled.last_effects.values.items()}
    seen_i = {(k[1], v["enemies_seen"]) for k, v in interpreted.last_effects.values.items()}
    assert seen_c == seen_i


@pytest.mark.benchmark(group="E1-fig2")
def test_fig2_compiled_tick(benchmark):
    world = _world(ExecutionMode.COMPILED)
    benchmark(world.tick)


@pytest.mark.benchmark(group="E1-fig2")
def test_fig2_interpreted_tick(benchmark):
    world = _world(ExecutionMode.INTERPRETED)
    benchmark(world.tick)
