"""E4 — adaptive multi-plan optimization across workload states (Section 4.1).

The game alternates between "exploring" (spread-out units, selective range
join) and "fighting" (clustered units, dense range join).  A plan compiled
for one state is mis-optimized for the other; the adaptive manager keeps
one plan per state and switches, which should track the better static plan
in every phase.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Experiment
from repro.engine import (
    AdaptiveQueryManager,
    Aggregate,
    AggregateSpec,
    ExecutionFeedback,
    Executor,
    Join,
    Select,
    TableScan,
    and_all,
    col,
)
from repro.workloads.state_switching import load_state, make_state_catalog

N_UNITS = 250
PHASES = ["exploring", "fighting", "exploring", "fighting"]


def range_join_plan():
    join = Join(TableScan("unit", alias="self"), TableScan("unit", alias="u"), None, how="cross")
    predicate = and_all(
        [
            col("u.x").ge(col("self.x") - col("self.range")),
            col("u.x").le(col("self.x") + col("self.range")),
            col("u.y").ge(col("self.y") - col("self.range")),
            col("u.y").le(col("self.y") + col("self.range")),
            col("u.strength").gt(col("self.strength")),
        ]
    )
    return Aggregate(Select(join, predicate), ["self.id"], [AggregateSpec("threats", "count")])


def run_adaptive(catalog, ticks_per_phase: int = 3) -> float:
    manager = AdaptiveQueryManager(catalog, range_join_plan())
    total = 0.0
    for phase in PHASES:
        load_state(catalog, phase, N_UNITS)
        if phase not in manager.states:
            manager.compile_for_state(phase)
        manager.switch_to(phase)
        for _ in range(ticks_per_phase):
            start = time.perf_counter()
            rows = manager.physical_plan().rows()
            elapsed = time.perf_counter() - start
            total += elapsed
            manager.record_execution(ExecutionFeedback(rows=len(rows), runtime=elapsed, state_hint=phase))
    return total


def run_static(catalog, compile_state: str, ticks_per_phase: int = 3) -> float:
    load_state(catalog, compile_state, N_UNITS)
    executor = Executor(catalog)
    planned = executor.prepare(range_join_plan())
    total = 0.0
    for phase in PHASES:
        load_state(catalog, phase, N_UNITS)
        for _ in range(ticks_per_phase):
            start = time.perf_counter()
            planned.physical.rows()
            total += time.perf_counter() - start
    return total


@pytest.mark.benchmark(group="E4-adaptive")
def test_adaptive_plan_switching(benchmark):
    catalog = make_state_catalog()
    benchmark(lambda: run_adaptive(catalog, ticks_per_phase=1))


@pytest.mark.benchmark(group="E4-adaptive")
def test_static_plan_compiled_for_exploring(benchmark):
    catalog = make_state_catalog()
    benchmark(lambda: run_static(catalog, "exploring", ticks_per_phase=1))


def test_adaptive_tracks_best_static(capsys):
    catalog = make_state_catalog()
    adaptive = run_adaptive(catalog)
    static_exploring = run_static(catalog, "exploring")
    static_fighting = run_static(catalog, "fighting")
    experiment = Experiment(
        "E4: adaptive multi-plan vs single static plans",
        "total seconds over exploring/fighting/exploring/fighting phases",
        columns=["strategy", "seconds"],
    )
    experiment.add_row(strategy="adaptive (per-state plans)", seconds=adaptive)
    experiment.add_row(strategy="static (exploring plan)", seconds=static_exploring)
    experiment.add_row(strategy="static (fighting plan)", seconds=static_fighting)
    with capsys.disabled():
        experiment.print()
    # Adaptive should not be materially worse than the best static plan.
    assert adaptive <= 1.5 * min(static_exploring, static_fighting)
