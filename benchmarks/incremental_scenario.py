"""Shared low-churn tick scenario for the incremental benchmarks and CI.

One table of ``N_ROWS`` units, a hot tick-query (filter + grouped
aggregate), and a deterministic churn step that touches ``CHURN_FRACTION``
of the rows per tick (plus a trickle of inserts/deletes) — the shape the
delta-driven path is built for.  Used by ``bench_incremental.py`` (pytest
gate) and ``ci_bench.py`` (the CI benchmark/regression pipeline), so the
two always measure the same workload.
"""

from __future__ import annotations

import random

from repro.engine.algebra import Aggregate, AggregateSpec, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.expressions import col, lit
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import DataType

N_ROWS = 10_000
N_ZONES = 100
CHURN_FRACTION = 0.01  # 1% of rows per tick — "low churn" (≤ 5%)
SEED = 42


def build_units_catalog(n_rows: int = N_ROWS, seed: int = SEED) -> tuple[Catalog, Table]:
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "units",
        Schema(
            [
                Column("id", DataType.NUMBER),
                Column("zone", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("health", DataType.NUMBER),
            ]
        ),
    )
    for i in range(n_rows):
        units.insert(
            {
                "id": i,
                "zone": i % N_ZONES,
                "x": rng.uniform(0, 100),
                "health": rng.uniform(0, 100),
            }
        )
    return catalog, units


def tick_query() -> Aggregate:
    """The hot tick-query shape: filter the world, aggregate per zone."""
    return Aggregate(
        Select(
            TableScan("units"),
            col("x").gt(lit(25.0)).and_(col("health").gt(lit(10.0))),
        ),
        ["zone"],
        [
            AggregateSpec("n", "count"),
            AggregateSpec("total_hp", "sum", col("health")),
        ],
    )


def churn_step(units: Table, rng: random.Random, tick: int, fraction: float = CHURN_FRACTION) -> None:
    """Mutate ``fraction`` of the rows, plus an occasional insert/delete."""
    rowids = list(units.row_ids())
    for rowid in rng.sample(rowids, max(1, int(len(rowids) * fraction))):
        units.update(
            rowid, {"x": rng.uniform(0, 100), "health": rng.uniform(0, 100)}
        )
    if tick % 3 == 0:
        units.insert(
            {
                "id": 1_000_000 + tick,
                "zone": rng.randrange(N_ZONES),
                "x": rng.uniform(0, 100),
                "health": rng.uniform(0, 100),
            }
        )
        units.delete(rng.choice(rowids))
