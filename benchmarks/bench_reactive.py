"""E11 — reactive handlers vs. the conditional prologue (Section 3.2).

The simplest reactive model is "syntactic sugar for the sequence of
conditionals" at the top of each tick.  Both formulations of a guard that
retaliates when hurt must behave identically; the benchmark compares their
per-tick cost.
"""

from __future__ import annotations

import pytest

from repro import ExecutionMode, GameWorld
from repro.bench import Experiment, measure
from repro.runtime import Handler
from repro.sgl.ir import EffectAssignment

CONDITIONAL_SOURCE = """
class Guard {
  state:
    number x = 0;
    number hp = 10;
    number hurt_last_tick = 0;
  effects:
    number vx : sum;
    number heal : sum;
}

script react(Guard self) {
  if (hurt_last_tick == 1) { heal <- 1; }
  vx <- 1;
}
"""

HANDLER_SOURCE = """
class Guard {
  state:
    number x = 0;
    number hp = 10;
    number hurt_last_tick = 0;
  effects:
    number vx : sum;
    number heal : sum;
}

script advance(Guard self) {
  vx <- 1;
}
"""


def common_rules(world: GameWorld) -> None:
    world.add_update_rule("Guard", "x", lambda s, e: s["x"] + e.get("vx", 0))
    world.add_update_rule("Guard", "hp", lambda s, e: min(10, s["hp"] + e.get("heal", 0)))


def build_conditional(n: int) -> GameWorld:
    world = GameWorld(CONDITIONAL_SOURCE, mode=ExecutionMode.COMPILED)
    common_rules(world)
    world.add_update_rule("Guard", "hurt_last_tick", lambda s, e: s["hurt_last_tick"])
    for i in range(n):
        world.spawn("Guard", hp=8 if i % 2 == 0 else 10, hurt_last_tick=1 if i % 2 == 0 else 0)
    return world


def build_handler(n: int) -> GameWorld:
    world = GameWorld(HANDLER_SOURCE, mode=ExecutionMode.COMPILED)
    common_rules(world)
    world.add_update_rule("Guard", "hurt_last_tick", lambda s, e: s["hurt_last_tick"])
    world.add_handler(
        Handler(
            name="retaliate",
            class_name="Guard",
            condition=lambda row: row["hurt_last_tick"] == 1,
            action=lambda row: [EffectAssignment("Guard", row["id"], "heal", 1)],
        )
    )
    for i in range(n):
        world.spawn("Guard", hp=8 if i % 2 == 0 else 10, hurt_last_tick=1 if i % 2 == 0 else 0)
    return world


@pytest.mark.benchmark(group="E11-reactive")
def test_conditional_prologue(benchmark):
    world = build_conditional(400)
    benchmark(world.tick)


@pytest.mark.benchmark(group="E11-reactive")
def test_reactive_handlers(benchmark):
    world = build_handler(400)
    benchmark(world.tick)


def test_handlers_match_conditionals(capsys):
    conditional = build_conditional(100)
    handler = build_handler(100)
    # Handlers evaluate after the update step and feed the *next* tick, so
    # run one extra warm-up tick for the handler world before comparing.
    handler.tick()
    conditional.tick()
    handler.tick()
    hp_conditional = sorted((g["id"], g["hp"]) for g in conditional.objects("Guard"))
    hp_handler = sorted((g["id"], g["hp"]) for g in handler.objects("Guard"))
    assert hp_conditional == hp_handler

    experiment = Experiment(
        "E11: reactive handlers vs conditional prologue (400 guards)",
        columns=["variant", "tick_s"],
    )
    experiment.add_row(variant="conditional prologue", tick_s=measure(build_conditional(400).tick, repeat=2))
    experiment.add_row(variant="reactive handlers", tick_s=measure(build_handler(400).tick, repeat=2))
    with capsys.disabled():
        experiment.print()
