"""CI benchmark pipeline: record the perf trajectory, gate regressions.

Runs a fixed-seed benchmark suite and writes ``BENCH_tick.json``:

* per-workload tick times (rts / traffic / marketplace, compiled mode,
  default engine configuration) — recorded for trend tracking,
* the shared low-churn incremental scenario
  (``benchmarks/incremental_scenario.py``) timed on all three execution
  paths, yielding the incremental-vs-batch and incremental-vs-row
  speedups, plus the batch-vs-row speedup of the hot tick query,
* the shared moving-units band-join scenario
  (``benchmarks/index_join_scenario.py``) timed on the persistent-index,
  grid-rebuild and row paths, yielding the index-join speedups,
* the shared many-scripts scenario (``benchmarks/shared_plans_scenario.py``)
  timed through the tick pipeline (``Executor.execute_tick``, shared
  subplans evaluated once per tick) and per-query, yielding the
  multi-query-optimization speedup,
* the shared subscription-serving scenario
  (``benchmarks/subscription_scenario.py``, 1k subscribers / 1% churn)
  timed as delta fan-out (``SubscriptionManager.flush``) and as naive
  per-client re-query, yielding the subscription fan-out speedup,
* the WAL durability scenario (gated rts workload with an attached delta
  log), yielding the persist efficiency (ticks with vs without the
  persist phase) and the replay-vs-live-rerun speedup,
* the shared transitive-closure scenario
  (``benchmarks/fixpoint_scenario.py``, long-diameter supply graph under
  1% insert-only edge churn) timed as naive fixpoint, from-scratch
  semi-naive, and warm re-closure from the cached accumulator, yielding
  the semi-naive and warm-restart speedups,
* the kernel-compilation scenarios (``benchmarks/bench_compiled.py``):
  the hot filter+aggregate tick query and the scout/unit band join, each
  timed compiled vs interpreted-batch, yielding the compiled speedups,
* the sharded-execution scenario (``benchmarks/shard_scenario.py``,
  10k-unit rts world with 1k AOI subscribers split across 4 worker
  processes), yielding the critical-path shard speedup vs the
  single-process oracle plus the exchange bytes shipped per tick.

Regression gating compares the *dimensionless speedups* against the
checked-in baseline (``benchmarks/BENCH_baseline.json``) and fails when any
drops by more than ``--tolerance`` (default 20%).  Absolute tick times are
recorded in the artifact but never gated — CI runners differ too much in
raw speed for wall-clock thresholds to be meaningful; the ratios between
paths on the same machine are stable.

Every run also *appends* its gated metrics (plus the workload tick
medians) to the ``history`` list carried forward from the previous
``BENCH_tick.json``, so the artifact accumulates the perf trajectory
across CI runs instead of holding only the latest sample.

Usage::

    python benchmarks/ci_bench.py --output BENCH_tick.json \
        --baseline benchmarks/BENCH_baseline.json          # check (CI)
    python benchmarks/ci_bench.py --write-baseline         # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import bench_compiled  # noqa: E402
import fixpoint_scenario  # noqa: E402
import index_join_scenario  # noqa: E402
import shard_scenario  # noqa: E402
import shared_plans_scenario  # noqa: E402
import subscription_scenario  # noqa: E402
from incremental_scenario import (  # noqa: E402
    CHURN_FRACTION,
    SEED,
    build_units_catalog,
    churn_step,
    tick_query,
)
from repro import ExecutionMode  # noqa: E402
from repro.engine import EngineConfig
from repro.engine.executor import Executor  # noqa: E402
from repro.obs.collector import PHASE_FIELDS  # noqa: E402
from repro.service.subscriptions import SubscriptionManager  # noqa: E402
from repro.workloads import build_rts_world  # noqa: E402
from repro.workloads.marketplace import build_marketplace_world  # noqa: E402
from repro.workloads.traffic import build_traffic_world  # noqa: E402

BASELINE_DEFAULT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_baseline.json")

#: Speedup metrics gated against the baseline (path → description).
GATED_METRICS = {
    "incremental.speedup_vs_batch": "incremental path vs batch path",
    "incremental.speedup_vs_row": "incremental path vs row path",
    "incremental.batch_speedup_vs_row": "batch path vs row path",
    "index_join.speedup_vs_rebuild": "index-probing band join vs per-tick grid rebuild",
    "index_join.speedup_vs_row": "index-probing band join vs row path",
    "shared_plans.speedup_vs_unshared": "tick-wide shared-subplan pipeline vs per-query execution",
    "subscriptions.fanout_speedup": "subscription delta fan-out vs naive per-client re-query",
    "compiled.speedup_filter_aggregate": "compiled kernel vs interpreted batch, filter+aggregate",
    "compiled.speedup_band_join": "compiled kernel vs interpreted batch, band join",
    "fixpoint.speedup_semi_naive_vs_naive": "semi-naive fixpoint iteration vs naive",
    "fixpoint.incremental_speedup_vs_full": "warm re-closure under churn vs from-scratch semi-naive",
    "wal.persist_efficiency": "tick throughput with the WAL persist phase vs without",
    "wal.replay_speedup_vs_live": "log replay (checkpoint + deltas) vs re-running the live world",
    "distributed.shard_speedup": "4-shard critical-path tick CPU vs single-process",
}


def _time_ticks(world, ticks: int) -> float:
    world.tick()  # warm plan caches and snapshots
    samples = []
    for _ in range(ticks):
        start = time.perf_counter()
        world.tick()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _phase_medians(world, ticks: int) -> dict:
    """Per-phase median seconds over the last *ticks* reports, keyed by the
    live metric's phase label (``repro_tick_phase_seconds{phase=...}``)."""
    reports = world.reports[-ticks:]
    return {
        phase: round(statistics.median(getattr(r, attr) for r in reports), 6)
        for phase, attr in PHASE_FIELDS
    }


def bench_workloads() -> dict:
    workloads = {
        "rts": lambda: build_rts_world(150, mode=ExecutionMode.COMPILED),
        "traffic": lambda: build_traffic_world(150, mode=ExecutionMode.COMPILED),
        "marketplace": lambda: build_marketplace_world(60, mode=ExecutionMode.COMPILED),
    }
    out = {}
    for name, builder in workloads.items():
        world = builder()
        median = _time_ticks(world, ticks=15)
        out[name] = {
            "median_tick_seconds": round(median, 6),
            "phase_median_seconds": _phase_medians(world, ticks=15),
        }
    return out


def bench_incremental(ticks: int = 30) -> dict:
    catalog, units = build_units_catalog()
    plan = tick_query()
    paths = {
        "incremental": Executor(catalog),
        "batch": Executor(catalog, EngineConfig(use_incremental=False)),
        "row": Executor(catalog, EngineConfig(use_batch=False, use_incremental=False)),
    }
    assert paths["incremental"].register_incremental(plan)
    for executor in paths.values():
        executor.execute(plan)
    rng = random.Random(SEED)
    totals = dict.fromkeys(paths, 0.0)
    for tick in range(ticks):
        churn_step(units, rng, tick)
        for name, executor in paths.items():
            start = time.perf_counter()
            executor.execute(plan)
            totals[name] += time.perf_counter() - start
    return {
        "ticks": ticks,
        "rows": len(units),
        "churn_fraction": CHURN_FRACTION,
        "incremental_seconds": round(totals["incremental"], 6),
        "batch_seconds": round(totals["batch"], 6),
        "row_seconds": round(totals["row"], 6),
        "speedup_vs_batch": round(totals["batch"] / totals["incremental"], 3),
        "speedup_vs_row": round(totals["row"] / totals["incremental"], 3),
        "batch_speedup_vs_row": round(totals["row"] / totals["batch"], 3),
    }


def bench_index_join(ticks: int = 30) -> dict:
    catalog, units, scouts = index_join_scenario.build_band_catalog()
    plan = index_join_scenario.band_join_query()
    paths = {
        "indexed": Executor(catalog, EngineConfig(use_incremental=False)),
        "rebuild": Executor(catalog, EngineConfig(use_indexes=False, use_incremental=False)),
        "row": Executor(
            catalog,
            EngineConfig(use_indexes=False, use_batch=False, use_incremental=False),
        ),
    }
    for executor in paths.values():
        executor.execute(plan)
    rng = random.Random(index_join_scenario.SEED)
    totals = dict.fromkeys(paths, 0.0)
    for tick in range(ticks):
        index_join_scenario.churn_step(units, scouts, rng, tick)
        for name, executor in paths.items():
            start = time.perf_counter()
            executor.execute(plan)
            totals[name] += time.perf_counter() - start
    return {
        "ticks": ticks,
        "units": len(units),
        "scouts": len(scouts),
        "churn_fraction": index_join_scenario.CHURN_FRACTION,
        "indexed_seconds": round(totals["indexed"], 6),
        "rebuild_seconds": round(totals["rebuild"], 6),
        "row_seconds": round(totals["row"], 6),
        "speedup_vs_rebuild": round(totals["rebuild"] / totals["indexed"], 3),
        "speedup_vs_row": round(totals["row"] / totals["indexed"], 3),
    }


def bench_fixpoint(ticks: int = 8, naive_ticks: int = 2) -> dict:
    """Semi-naive vs naive closure, and warm re-closure under edge churn.

    The naive path is O(n²) per closure on the long-diameter scenario, so
    it is timed on the first *naive_ticks* only and compared per tick
    (the graph only grows with churn — early ticks favor naive, making
    the gate conservative)."""
    catalog, edges = fixpoint_scenario.build_edges_catalog()
    plan = fixpoint_scenario.closure_plan()
    naive_exec = Executor(catalog, EngineConfig(use_incremental=False, use_fixpoint=False))
    semi_exec = Executor(catalog, EngineConfig(use_incremental=False))
    warm_exec = Executor(catalog, EngineConfig())
    for executor in (naive_exec, semi_exec, warm_exec):
        executor.execute(plan)
    rng = random.Random(fixpoint_scenario.SEED)
    naive_total = semi_total = warm_total = 0.0
    for tick in range(ticks):
        fixpoint_scenario.churn_step(edges, rng, tick)
        start = time.perf_counter()
        semi_rows = semi_exec.execute(plan).rows
        semi_total += time.perf_counter() - start
        if tick < naive_ticks:
            start = time.perf_counter()
            naive_exec.execute(plan)
            naive_total += time.perf_counter() - start
        start = time.perf_counter()
        warm_exec.execute(plan)
        warm_total += time.perf_counter() - start
    assert {row["node"] for row in semi_rows} == fixpoint_scenario.bfs_reachable(edges)
    naive_per_tick = naive_total / naive_ticks
    semi_per_tick = semi_total / ticks
    warm_per_tick = warm_total / ticks
    return {
        "ticks": ticks,
        "naive_ticks": naive_ticks,
        "edges": len(edges),
        "churn_fraction": fixpoint_scenario.CHURN_FRACTION,
        "naive_seconds_per_tick": round(naive_per_tick, 6),
        "semi_naive_seconds_per_tick": round(semi_per_tick, 6),
        "warm_seconds_per_tick": round(warm_per_tick, 6),
        "warm_restarts": warm_exec.fixpoint_report()["warm_restarts"],
        "speedup_semi_naive_vs_naive": round(naive_per_tick / semi_per_tick, 3),
        "incremental_speedup_vs_full": round(semi_per_tick / warm_per_tick, 3),
    }


def bench_shared_plans(ticks: int = 15) -> dict:
    catalog, units = shared_plans_scenario.build_units_catalog()
    plans = shared_plans_scenario.tick_queries()
    specs = shared_plans_scenario.tick_specs(plans)
    shared_exec = Executor(catalog, EngineConfig(use_incremental=False))
    unshared_exec = Executor(catalog, EngineConfig(use_incremental=False))
    shared_exec.execute_tick(specs)
    for plan in plans:
        unshared_exec.execute(plan)
    rng = random.Random(shared_plans_scenario.SEED)
    shared_total = unshared_total = 0.0
    for _ in range(ticks):
        shared_plans_scenario.churn_step(units, rng)
        start = time.perf_counter()
        shared_exec.execute_tick(specs)
        shared_total += time.perf_counter() - start
        start = time.perf_counter()
        for plan in plans:
            unshared_exec.execute(plan)
        unshared_total += time.perf_counter() - start
    stats = shared_exec.last_tick_stats
    return {
        "ticks": ticks,
        "rows": len(units),
        "queries": len(plans),
        "shared_subplans": stats.get("shared_subplans", 0),
        "evaluations_saved": stats.get("evaluations_saved", 0),
        "shared_seconds": round(shared_total, 6),
        "unshared_seconds": round(unshared_total, 6),
        "speedup_vs_unshared": round(unshared_total / shared_total, 3),
    }


def bench_subscriptions(ticks: int = 8) -> dict:
    catalog, units = subscription_scenario.build_units_catalog()
    plans = subscription_scenario.client_plans()
    manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
    sessions, _ = subscription_scenario.subscribe_clients(manager, plans)
    for session in sessions:
        session.take()
    naive_exec = Executor(catalog, EngineConfig(use_incremental=False))
    subscription_scenario.naive_tick(naive_exec, plans)  # warm plan cache
    rng = random.Random(subscription_scenario.SEED)
    delta_total = naive_total = 0.0
    messages = 0
    for tick in range(ticks):
        subscription_scenario.churn_step(units, rng)
        start = time.perf_counter()
        manager.flush(tick)
        for session in sessions:
            messages += len(session.take())
        delta_total += time.perf_counter() - start
        start = time.perf_counter()
        subscription_scenario.naive_tick(naive_exec, plans)
        naive_total += time.perf_counter() - start
    return {
        "ticks": ticks,
        "rows": len(units),
        "subscribers": len(plans),
        "churn_fraction": subscription_scenario.CHURN_FRACTION,
        "query_groups": manager.stats()["query_groups"],
        "messages": messages,
        "delta_seconds": round(delta_total, 6),
        "naive_seconds": round(naive_total, 6),
        "fanout_speedup": round(naive_total / delta_total, 3),
    }


def bench_wal(ticks: int = 15) -> dict:
    """Durability cost and replay throughput on the gated rts workload.

    ``persist_efficiency`` is (median tick without WAL) / (median tick with
    WAL) — 1.0 means free durability, and the ISSUE 6 gate of <10% persist
    overhead corresponds to a floor of ~0.9.  ``replay_speedup_vs_live``
    is (live re-run of the whole history) / (checkpoint + delta replay).
    """
    import tempfile

    from repro.persistence.replay import replay_tables

    plain = build_rts_world(150, mode=ExecutionMode.COMPILED)
    plain_median = _time_ticks(plain, ticks=ticks)

    path = tempfile.mkdtemp(prefix="ci-wal-")
    walled = build_rts_world(150, mode=ExecutionMode.COMPILED)
    wal = walled.attach_wal(path, checkpoint_interval=50)
    walled_median = _time_ticks(walled, ticks=ticks)
    persist_median = statistics.median(
        report.persist_seconds for report in walled.reports[-ticks:]
    )
    bytes_per_tick = walled.reports[-1].wal_bytes
    walled.detach_wal()

    start = time.perf_counter()
    rerun = build_rts_world(150, mode=ExecutionMode.COMPILED)
    for _ in range(ticks + 1):
        rerun.tick()
    live_seconds = time.perf_counter() - start
    start = time.perf_counter()
    replay_tables(path)
    replay_seconds = time.perf_counter() - start

    return {
        "ticks": ticks,
        "plain_median_tick_seconds": round(plain_median, 6),
        "walled_median_tick_seconds": round(walled_median, 6),
        "persist_median_seconds": round(persist_median, 6),
        "wal_bytes_per_tick": bytes_per_tick,
        "live_seconds": round(live_seconds, 6),
        "replay_seconds": round(replay_seconds, 6),
        "persist_efficiency": round(plain_median / walled_median, 3),
        "replay_speedup_vs_live": round(live_seconds / replay_seconds, 3),
    }


def bench_compiled_kernels() -> dict:
    """Compiled-vs-interpreted speedups on the two gated kernel shapes."""
    fa_interp, fa_compiled = bench_compiled._filter_aggregate_run()
    band_interp, band_compiled = bench_compiled._band_join_run()
    return {
        "filter_aggregate_interp_seconds": round(fa_interp, 6),
        "filter_aggregate_compiled_seconds": round(fa_compiled, 6),
        "band_join_interp_seconds": round(band_interp, 6),
        "band_join_compiled_seconds": round(band_compiled, 6),
        "speedup_filter_aggregate": round(fa_interp / fa_compiled, 3),
        "speedup_band_join": round(band_interp / band_compiled, 3),
    }


def bench_distributed() -> dict:
    """Sharded multi-process tick vs the single-process oracle.

    The gated ``shard_speedup`` is the scheduling-invariant critical-path
    CPU ratio (see ``shard_scenario.run_shard_benchmark``); wall-clock
    numbers for both sides ride along as informational.
    """
    return shard_scenario.run_shard_benchmark(
        n_units=10_000, n_subscribers=1_000, n_shards=4, warmup=3, ticks=3
    )


def run_suite() -> dict:
    return {
        "schema": 1,
        "workloads": bench_workloads(),
        "incremental": bench_incremental(),
        "index_join": bench_index_join(),
        "shared_plans": bench_shared_plans(),
        "subscriptions": bench_subscriptions(),
        "wal": bench_wal(),
        "compiled": bench_compiled_kernels(),
        "fixpoint": bench_fixpoint(),
        "distributed": bench_distributed(),
    }


def _lookup(results: dict, dotted: str):
    node = results
    for part in dotted.split("."):
        node = node[part]
    return node


def check_regressions(results: dict, baseline: dict, tolerance: float) -> list[str]:
    failures = []
    for metric, description in GATED_METRICS.items():
        try:
            base = float(_lookup(baseline, metric))
        except (KeyError, TypeError):
            continue  # metric not in baseline yet: informational only
        current = float(_lookup(results, metric))
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{metric} ({description}): {current:.2f}x is more than "
                f"{tolerance:.0%} below the baseline {base:.2f}x (floor {floor:.2f}x)"
            )
    return failures


def _append_history(results: dict, output_path: str, limit: int = 200) -> None:
    """Carry the perf trajectory forward: load the previous artifact's
    ``history``, append this run's gated metrics + workload medians, and
    store it (bounded to *limit* entries) in the new results."""
    history: list[dict] = []
    try:
        with open(output_path) as handle:
            history = json.load(handle).get("history", [])
            if not isinstance(history, list):
                history = []
    except (OSError, ValueError):
        pass
    entry: dict = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": {},
        "workloads": {},
    }
    for metric in GATED_METRICS:
        try:
            entry["metrics"][metric] = float(_lookup(results, metric))
        except (KeyError, TypeError):
            continue
    for name, data in results.get("workloads", {}).items():
        entry["workloads"][name] = {
            "median_tick_seconds": data.get("median_tick_seconds"),
            "phase_median_seconds": data.get("phase_median_seconds"),
        }
    distributed = results.get("distributed")
    if distributed:
        entry["distributed"] = {
            "exchange_bytes_per_tick": distributed.get("exchange_bytes_per_tick"),
            "critical_path_seconds_per_tick": distributed.get(
                "critical_path_seconds_per_tick"
            ),
        }
    history.append(entry)
    results["history"] = history[-limit:]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_tick.json", help="where to write results")
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write results to {BASELINE_DEFAULT} instead of gating",
    )
    parser.add_argument("--tolerance", type=float, default=0.20, help="allowed regression")
    args = parser.parse_args(argv)

    results = run_suite()
    _append_history(results, args.output)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    print(json.dumps(results, indent=2, sort_keys=True))

    if args.write_baseline:
        baseline = {k: v for k, v in results.items() if k != "history"}
        with open(BASELINE_DEFAULT, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline {BASELINE_DEFAULT}")
        return 0

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures = check_regressions(results, baseline, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"no regression beyond {args.tolerance:.0%} vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
