"""E17 — delta fan-out serving vs. naive per-client re-query.

The subscription service's reason to exist: at 1k subscribers / 1% churn
(``subscription_scenario.py``) serving every client from per-tick signed
deltas — each distinct standing query computed once, AOI changes routed
through subscription cells — must beat re-running every client's query per
tick by >= 5x (the ISSUE acceptance gate), while a sampled set of client
result sets stays exactly equal to scratch re-execution.
"""

from __future__ import annotations

import random
import time

from subscription_scenario import (
    CHURN_FRACTION,
    N_SUBSCRIBERS,
    SEED,
    build_units_catalog,
    churn_step,
    client_plans,
    naive_tick,
    subscribe_clients,
)
from repro.engine.executor import Executor
from repro.service.protocol import ResultSet, row_key
from repro.service.subscriptions import SubscriptionManager

TICKS = 10
GATE = 5.0


def _multiset(rows):
    return sorted(map(row_key, rows))


def test_delta_stream_equivalence_sampled():
    """Snapshot + delta stream == scratch re-query, for sampled clients."""
    catalog, units = build_units_catalog(n_rows=1_500)
    plans = client_plans(n_subscribers=60)
    manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
    sessions, sub_ids = subscribe_clients(manager, plans)
    scratch = Executor(catalog, use_incremental=False)
    states = {sid: ResultSet() for sid in sub_ids}
    for session, sid in zip(sessions, sub_ids):
        for message in session.take():
            states[sid].apply(message)
    rng = random.Random(SEED)
    for tick in range(6):
        churn_step(units, rng)
        manager.flush(tick)
        for session, sid in zip(sessions, sub_ids):
            for message in session.take():
                states[sid].apply(message)
        for (kind, plan, _), sid in list(zip(plans, sub_ids))[::7]:
            expect = scratch.execute(plan, cache=False).rows
            assert _multiset(expect) == _multiset(states[sid].rows()), (
                f"tick {tick}: {kind} subscription {sid} diverged"
            )


def test_fanout_speedup_gate():
    """Delta fan-out must serve 1k subscribers >= 5x faster than re-query."""
    catalog, units = build_units_catalog()
    plans = client_plans()
    assert len(plans) == N_SUBSCRIBERS

    manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
    sessions, _ = subscribe_clients(manager, plans)
    for session in sessions:
        session.take()
    naive_exec = Executor(catalog, use_incremental=False)
    naive_tick(naive_exec, plans)  # warm the plan cache

    rng = random.Random(SEED)
    delta_total = naive_total = 0.0
    delta_messages = 0
    for tick in range(TICKS):
        churn_step(units, rng)

        start = time.perf_counter()
        stats = manager.flush(tick)
        for session in sessions:
            delta_messages += len(session.take())
        delta_total += time.perf_counter() - start

        start = time.perf_counter()
        naive_tick(naive_exec, plans)
        naive_total += time.perf_counter() - start
        del stats

    speedup = naive_total / delta_total
    print(
        f"\n[bench_subscriptions] subscribers={N_SUBSCRIBERS} ticks={TICKS} "
        f"churn={CHURN_FRACTION:.0%} delta={delta_total:.3f}s "
        f"naive={naive_total:.3f}s speedup={speedup:.1f}x "
        f"(messages={delta_messages}, groups={manager.stats()['query_groups']})"
    )
    assert speedup >= GATE, (
        f"delta fan-out only {speedup:.1f}x faster than per-client re-query "
        f"(gate: {GATE:.0f}x at {N_SUBSCRIBERS} subscribers)"
    )


def test_dedup_collapses_filter_clients_into_few_groups():
    """500 filter clients share N_FILTER_SHAPES query groups (PR-4
    fingerprint dedup), so group evaluations stay O(shapes), not O(clients)."""
    catalog, _ = build_units_catalog(n_rows=500)
    plans = client_plans(n_subscribers=100)
    manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
    subscribe_clients(manager, plans)
    stats = manager.stats()
    n_filter_clients = sum(1 for kind, _, _ in plans if kind == "filter")
    assert stats["query_subscribers"] == n_filter_clients
    assert stats["query_groups"] <= 8
    assert stats["dedup_factor"] >= n_filter_clients / 8


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
