"""E16 — tick-wide shared-subplan pipelines vs. per-query execution.

N scripts over one class re-derive the same hot join every tick; the
multi-query-optimized pipeline (``Executor.prepare_tick`` /
``execute_tick``, planned by ``repro/engine/optimizer/mqo.py``) evaluates
each shared subplan once per tick and serves every consumer from the
materialization, with effect aggregation optionally fused in-plan.

Measurements:

* the acceptance gate: on the shared many-scripts scenario
  (``shared_plans_scenario.py``, 8 queries sharing one band join) the
  pipeline must beat per-query execution by >= 2x across a multi-tick
  churned run, with both paths producing identical rows every tick,
* world-level: a generated many-scripts RTS-style world timed with MQO on
  and off (informational — the world tick includes update/reactive steps
  that sharing does not touch),
* sink fusion: per-target partials must reproduce the row-at-a-time
  effect-store fold exactly.
"""

from __future__ import annotations

import random
import time

from shared_plans_scenario import (
    N_QUERIES,
    SEED,
    build_units_catalog,
    churn_step,
    tick_queries,
    tick_specs,
)
from repro import ExecutionMode
from repro.runtime.world import GameWorld
from repro.engine.executor import Executor

TICKS = 20


def _normalized(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def test_shared_tick_equivalence():
    """Pipeline results must match per-query execution row-for-row."""
    catalog, units = build_units_catalog(n_rows=600)
    plans = tick_queries()
    specs = tick_specs(plans)
    shared_exec = Executor(catalog, use_incremental=False)
    unshared_exec = Executor(catalog, use_incremental=False)
    rng = random.Random(SEED + 1)
    for tick in range(5):
        shared_results = shared_exec.execute_tick(specs)
        for plan, result in zip(plans, shared_results):
            expected = unshared_exec.execute(plan).rows
            assert result.rows is not None
            assert _normalized(result.rows) == _normalized(expected), (
                f"tick {tick}, query {result.key}"
            )
        churn_step(units, rng)
    stats = shared_exec.last_tick_stats
    assert stats["shared_subplans"] >= 1, stats
    assert stats["evaluations_saved"] >= N_QUERIES - 1, stats


def test_shared_plan_speedup_gate():
    """Acceptance: the shared pipeline is >= 2x per-query execution on the
    many-scripts-one-hot-join scenario."""
    catalog, units = build_units_catalog()
    plans = tick_queries()
    specs = tick_specs(plans)
    shared_exec = Executor(catalog, use_incremental=False)
    unshared_exec = Executor(catalog, use_incremental=False)
    # Warm both plan caches / pipelines.
    shared_exec.execute_tick(specs)
    for plan in plans:
        unshared_exec.execute(plan)

    rng = random.Random(SEED)
    shared_time = unshared_time = 0.0
    for _ in range(TICKS):
        churn_step(units, rng)
        start = time.perf_counter()
        shared_exec.execute_tick(specs)
        shared_time += time.perf_counter() - start
        start = time.perf_counter()
        for plan in plans:
            unshared_exec.execute(plan)
        unshared_time += time.perf_counter() - start

    speedup = unshared_time / shared_time
    print(
        f"\n{TICKS} ticks x {len(plans)} queries: shared {shared_time * 1e3:.1f}ms, "
        f"unshared {unshared_time * 1e3:.1f}ms -> {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"shared pipeline only {speedup:.2f}x vs per-query"


def _many_scripts_source(n_scripts: int = 6) -> str:
    """An RTS-style program whose scripts all share the same hot band join."""
    effects = "\n".join(f"    number dmg{i} : sum;" for i in range(n_scripts))
    scripts = "\n".join(
        f"""
script s{i}(Unit self) {{
  accum number tot with sum over Unit u from UNIT {{
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range && u.player != player) {{
      u.dmg{i} <- attack * {i + 1};
      tot <- 1;
    }}
  }} in {{
    if (tot == 0) {{ dmg{i} <- 0; }}
  }}
}}"""
        for i in range(n_scripts)
    )
    return f"""
class Unit {{
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number range = 10;
    number attack = 1;
  effects:
{effects}
}}
{scripts}
"""


def _build_many_scripts_world(use_mqo: bool) -> GameWorld:
    rng = random.Random(SEED)
    world = GameWorld(
        _many_scripts_source(),
        mode=ExecutionMode.COMPILED,
        use_incremental=False,
        use_mqo=use_mqo,
    )
    world.spawn_many(
        "Unit",
        [
            {
                "player": i % 2,
                "x": rng.uniform(0, 200),
                "y": rng.uniform(0, 200),
                "range": 10,
                "attack": rng.choice([1, 2]),
            }
            for i in range(400)
        ],
    )
    return world


def test_world_many_scripts_sharing():
    """World-level: MQO must engage (shared subplans + fused effects) and
    produce the same combined effects as the unshared tick."""
    world_mqo = _build_many_scripts_world(use_mqo=True)
    world_plain = _build_many_scripts_world(use_mqo=False)
    for _ in range(3):
        report = world_mqo.tick()
        world_plain.tick()
        assert world_mqo.last_effects.values == world_plain.last_effects.values
        assert (
            world_mqo.last_effects.assignment_counts
            == world_plain.last_effects.assignment_counts
        )
    assert report.shared_subplans >= 1
    assert report.fused_effect_rows > 0

    def mean_tick(world, ticks=5):
        start = time.perf_counter()
        for _ in range(ticks):
            world.tick()
        return (time.perf_counter() - start) / ticks

    mqo_tick = mean_tick(world_mqo)
    plain_tick = mean_tick(world_plain)
    print(
        f"\nmany-scripts world: mqo {mqo_tick * 1e3:.2f}ms/tick, "
        f"unshared {plain_tick * 1e3:.2f}ms/tick -> {plain_tick / mqo_tick:.1f}x"
    )
