"""E20 — semi-naive fixpoint evaluation vs naive, and warm re-closure.

Recursive plans make reachability a first-class query, but only if the
iteration strategy is right: naive evaluation re-derives the entire
accumulator every round, while semi-naive joins just the previous round's
delta against the step body.  On the long-diameter closure scenario
(``fixpoint_scenario.py``) that is O(n) vs O(n²) row work for identical
results.

Measurements:

* the acceptance gates: semi-naive must beat naive by >= 3x on the shared
  scenario, and — under 1% insert-only edge churn — warm re-closure from
  the cached accumulator (delta variants) must beat from-scratch
  semi-naive recomputation by >= 2x, with every path's result equal to
  the imperative BFS oracle every tick,
* pytest-benchmark timings of one churn+closure tick per path.
"""

from __future__ import annotations

import random
import time

import pytest

from fixpoint_scenario import (
    CHURN_FRACTION,
    SEED,
    bfs_reachable,
    build_edges_catalog,
    churn_step,
    closure_plan,
)
from repro.engine.config import EngineConfig
from repro.engine.executor import Executor

TICKS = 8
#: The naive path is O(n²) per closure — time it on the first few ticks
#: only and compare per-tick averages (the graph only grows with churn,
#: so early ticks favor naive; the gate is conservative).
NAIVE_TICKS = 2


def _nodes(rows) -> set:
    return {row["node"] for row in rows}


def test_semi_naive_and_warm_restart_speedups():
    """Acceptance: >= 3x semi-naive vs naive; >= 2x warm vs from-scratch
    under insert-only churn; all paths equal to the BFS oracle each tick."""
    catalog, edges = build_edges_catalog()
    plan = closure_plan()
    naive_exec = Executor(catalog, EngineConfig(use_incremental=False, use_fixpoint=False))
    semi_exec = Executor(catalog, EngineConfig(use_incremental=False))
    warm_exec = Executor(catalog, EngineConfig())

    # Warm the plan caches (and the warm path's cached closure) once.
    for executor in (naive_exec, semi_exec, warm_exec):
        assert _nodes(executor.execute(plan).rows) == bfs_reachable(edges)

    rng = random.Random(SEED)
    naive_time = semi_time = warm_time = 0.0
    for tick in range(TICKS):
        churn_step(edges, rng, tick)
        oracle = bfs_reachable(edges)
        start = time.perf_counter()
        semi_rows = semi_exec.execute(plan).rows
        semi_time += time.perf_counter() - start
        assert _nodes(semi_rows) == oracle, f"tick {tick}: semi != oracle"
        if tick < NAIVE_TICKS:
            start = time.perf_counter()
            naive_rows = naive_exec.execute(plan).rows
            naive_time += time.perf_counter() - start
            assert _nodes(naive_rows) == oracle, f"tick {tick}: naive != oracle"
        start = time.perf_counter()
        warm_rows = warm_exec.execute(plan).rows
        warm_time += time.perf_counter() - start
        assert _nodes(warm_rows) == oracle, f"tick {tick}: warm != oracle"

    warm_report = warm_exec.fixpoint_report()
    assert warm_report["warm_restarts"] >= TICKS, warm_report

    semi_speedup = (naive_time / NAIVE_TICKS) / (semi_time / TICKS)
    warm_speedup = semi_time / warm_time
    print(
        f"\nat {CHURN_FRACTION:.0%} edge churn: "
        f"naive {naive_time / NAIVE_TICKS * 1e3:.1f}ms/tick, semi-naive "
        f"{semi_time / TICKS * 1e3:.1f}ms/tick, warm {warm_time / TICKS * 1e3:.1f}ms/tick "
        f"-> {semi_speedup:.1f}x semi vs naive, "
        f"{warm_speedup:.1f}x warm vs from-scratch"
    )
    assert semi_speedup >= 3.0, f"semi-naive only {semi_speedup:.2f}x vs naive"
    assert warm_speedup >= 2.0, f"warm re-closure only {warm_speedup:.2f}x vs from-scratch"


def test_unchanged_graph_serves_cached_closure():
    """No churn between executions: the version-vector cache answers."""
    catalog, edges = build_edges_catalog(n_nodes=200)
    plan = closure_plan()
    executor = Executor(catalog, EngineConfig(use_incremental=False))
    first = _nodes(executor.execute(plan).rows)
    rounds_after_first = executor.fixpoint_report()["total_rounds"]
    second = _nodes(executor.execute(plan).rows)
    report = executor.fixpoint_report()
    assert second == first
    assert report["cache_hits"] == 1
    assert report["total_rounds"] == rounds_after_first


@pytest.mark.benchmark(group="E20-fixpoint-closure")
def test_closure_semi_naive(benchmark):
    catalog, edges = build_edges_catalog()
    plan = closure_plan()
    executor = Executor(catalog, EngineConfig(use_incremental=False))
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(edges, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)


@pytest.mark.benchmark(group="E20-fixpoint-closure")
def test_closure_naive(benchmark):
    catalog, edges = build_edges_catalog()
    plan = closure_plan()
    executor = Executor(catalog, EngineConfig(use_incremental=False, use_fixpoint=False))
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(edges, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)


@pytest.mark.benchmark(group="E20-fixpoint-closure")
def test_closure_warm(benchmark):
    catalog, edges = build_edges_catalog()
    plan = closure_plan()
    executor = Executor(catalog, EngineConfig())
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(edges, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)
