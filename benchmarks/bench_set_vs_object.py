"""E2 — set-at-a-time vs. object-at-a-time execution (Sections 1-2).

The paper's core performance claim: compiling scripts to relational plans
and processing behaviours set-at-a-time "dramatically improves performance"
over per-object scripting, with the gap growing with the number of objects.
The pytest-benchmark entries time one full RTS combat tick in each mode;
the sweep test prints the speedup curve across population sizes.
"""

from __future__ import annotations

import pytest

from repro import ExecutionMode
from repro.bench import Experiment, measure
from repro.workloads import build_rts_world


@pytest.mark.benchmark(group="E2-set-vs-object")
@pytest.mark.parametrize("mode", [ExecutionMode.COMPILED, ExecutionMode.INTERPRETED])
def test_rts_tick(benchmark, mode):
    world = build_rts_world(300, mode=mode, with_physics=True, scripts=["engage"])
    benchmark(world.tick)


def test_speedup_grows_with_population(scaling_sizes, capsys):
    experiment = Experiment(
        "E2: compiled (set-at-a-time) vs interpreted (object-at-a-time)",
        "one 'engage' combat tick; speedup = interpreted / compiled",
        columns=["units", "compiled_s", "interpreted_s", "speedup"],
    )
    speedups = []
    for n in scaling_sizes:
        compiled = build_rts_world(n, mode=ExecutionMode.COMPILED, with_physics=False, scripts=["engage"])
        interpreted = build_rts_world(n, mode=ExecutionMode.INTERPRETED, with_physics=False, scripts=["engage"])
        compiled_s = measure(compiled.tick, repeat=2, warmup=1)
        interpreted_s = measure(interpreted.tick, repeat=2, warmup=1)
        speedup = interpreted_s / compiled_s
        speedups.append(speedup)
        experiment.add_row(units=n, compiled_s=compiled_s, interpreted_s=interpreted_s, speedup=speedup)
    with capsys.disabled():
        experiment.print()
    # The paper's claim: compiled wins, and the advantage grows with n.
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] >= speedups[0]
