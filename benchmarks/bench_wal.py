"""E18 — WAL persist overhead and replay-vs-live throughput.

The durability gates (ISSUE 6):

* the persist phase (consolidate every table's change log, append one
  compressed commit record) must cost **< 10% of the median tick** on the
  gated rts workload (150 units, compiled mode) — durability as a tax,
  not a second engine;
* replaying a run from the log (checkpoint + deltas) must beat re-running
  the live world by **>= 2x** — otherwise "recover from the log" loses to
  "just re-simulate", and time-travel debugging is slower than reproducing
  the bug live.

Both gates are ratios of timings taken on the same machine in the same
process, so they are stable across runner speeds (the repo's benchmark
convention; see ``ci_bench.py``).
"""

from __future__ import annotations

import statistics
import tempfile
import time

from repro import ExecutionMode
from repro.persistence.replay import replay_tables
from repro.workloads import build_rts_world

N_UNITS = 150
TICKS = 15
PERSIST_GATE = 0.10  # persist phase < 10% of the median tick
REPLAY_GATE = 2.0  # replay >= 2x faster than the live run


def build_world():
    return build_rts_world(N_UNITS, mode=ExecutionMode.COMPILED)


def test_persist_overhead_gate():
    """The timed persist phase stays under 10% of the tick, measured from
    the tick reports themselves (persist_seconds is part of total_seconds,
    so the ratio is exact, not a cross-run subtraction)."""
    world = build_world()
    world.attach_wal(tempfile.mkdtemp(prefix="bench-wal-"), checkpoint_interval=50)
    world.tick()  # warm plan caches
    persists, totals = [], []
    for _ in range(TICKS):
        report = world.tick()
        persists.append(report.persist_seconds)
        totals.append(report.total_seconds)
    fraction = statistics.median(persists) / statistics.median(totals)
    print(
        f"\npersist {statistics.median(persists) * 1e3:.2f} ms of "
        f"{statistics.median(totals) * 1e3:.2f} ms tick = {fraction:.1%} "
        f"({world.reports[-1].wal_bytes} bytes/tick)"
    )
    assert fraction < PERSIST_GATE, (
        f"persist phase is {fraction:.1%} of the median tick (gate {PERSIST_GATE:.0%})"
    )


def test_replay_speedup_gate():
    """Reconstructing the final state from the log must be >= 2x faster
    than re-running the simulation, and exactly equal to it."""
    path = tempfile.mkdtemp(prefix="bench-replay-")
    world = build_world()
    wal = world.attach_wal(path, checkpoint_interval=50)
    for _ in range(TICKS + 1):
        world.tick()
    expected = {name: table.snapshot() for name, table in wal._tables()}
    world.detach_wal()

    start = time.perf_counter()
    rerun = build_world()
    for _ in range(TICKS + 1):
        rerun.tick()
    live_seconds = time.perf_counter() - start

    start = time.perf_counter()
    state = replay_tables(path)
    replay_seconds = time.perf_counter() - start

    assert state.tables == expected  # fast AND right
    speedup = live_seconds / replay_seconds
    print(
        f"\nlive {live_seconds * 1e3:.1f} ms vs replay {replay_seconds * 1e3:.1f} ms "
        f"= {speedup:.1f}x"
    )
    assert speedup >= REPLAY_GATE, (
        f"replay is only {speedup:.2f}x faster than the live run (gate {REPLAY_GATE}x)"
    )


def test_compression_earns_its_keep():
    """Commit records deflate: the on-disk log must be well under the raw
    JSON it encodes (the optimization the persist gate depends on)."""
    import json

    from repro.persistence.replay import iter_log_records

    path = tempfile.mkdtemp(prefix="bench-bytes-")
    world = build_world()
    wal = world.attach_wal(path, checkpoint_interval=50)
    for _ in range(10):
        world.tick()
    on_disk = wal.log.byte_size
    raw = sum(
        len(json.dumps(record, separators=(",", ":"), default=repr))
        for record in iter_log_records(wal.log)
    )
    ratio = raw / on_disk
    print(f"\n{on_disk} bytes on disk for {raw} bytes of JSON = {ratio:.1f}x")
    assert ratio >= 2.0, f"compression ratio {ratio:.2f}x is below 2x"


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
