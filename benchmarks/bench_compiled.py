"""E19 — plan-to-kernel compilation vs. the interpreted batch path.

The kernel compiler (``repro/engine/compile/``) collapses a fusable
physical pipeline — filter+project+join+aggregate over column lists —
into one generated Python function, cached by the MQO plan fingerprint.
These benchmarks gate the two hot shapes the compiler exists for:

* the filter+aggregate tick query from the incremental scenario
  (``incremental_scenario.py``), where the interpreted batch path runs
  four operators with per-operator materialization and the kernel runs
  one loop, and
* the band join from the index-join scenario
  (``index_join_scenario.py``), where the kernel fuses the transient-grid
  range probe and its residual filter.

Both gates require the compiled path >= 2x the interpreted batch path,
with identical rows — in identical order — every churned tick.  Churn and
the tick-shared columnar snapshot are built outside the timed region
(during a real tick every query of the tick shares one snapshot), and the
two paths are timed back-to-back within each tick so machine noise hits
both sides alike.
"""

from __future__ import annotations

import random
import time

import incremental_scenario
import index_join_scenario
from repro.engine import EngineConfig
from repro.engine.executor import Executor

TICKS_FILTER_AGG = 60
TICKS_BAND = 20
GATE_SPEEDUP = 2.0

INTERP_CONFIG = EngineConfig(use_incremental=False, use_indexes=False)
COMPILED_CONFIG = INTERP_CONFIG.replace(use_compiled=True)


def _paired_run(catalog, plan, warm_tables, churn, ticks):
    """Time interpreted vs compiled execution of *plan* tick by tick.

    Returns ``(interp_seconds, compiled_seconds)``; asserts exact row and
    row-order equality on every tick.
    """
    interp = Executor(catalog, INTERP_CONFIG)
    compiled = Executor(catalog, COMPILED_CONFIG)
    interp.execute(plan)
    compiled.execute(plan)
    interp_total = compiled_total = 0.0
    for tick in range(ticks):
        churn(tick)
        for table in warm_tables:
            table.to_batch()
        start = time.perf_counter()
        expected = interp.execute(plan).rows
        interp_total += time.perf_counter() - start
        start = time.perf_counter()
        got = compiled.execute(plan).rows
        compiled_total += time.perf_counter() - start
        assert got == expected, f"tick {tick}: compiled rows diverged"
    report = compiled.kernel_report()
    assert report["compiled"] >= 1, report
    assert report["declined"] == 0, report
    return interp_total, compiled_total


def _filter_aggregate_run(ticks=TICKS_FILTER_AGG):
    catalog, units = incremental_scenario.build_units_catalog()
    plan = incremental_scenario.tick_query()
    rng = random.Random(incremental_scenario.SEED)
    return _paired_run(
        catalog,
        plan,
        [units],
        lambda tick: incremental_scenario.churn_step(units, rng, tick),
        ticks,
    )


def _band_join_run(ticks=TICKS_BAND):
    catalog, units, scouts = index_join_scenario.build_band_catalog()
    plan = index_join_scenario.band_join_query()
    rng = random.Random(index_join_scenario.SEED)
    return _paired_run(
        catalog,
        plan,
        [units, scouts],
        lambda tick: index_join_scenario.churn_step(units, scouts, rng, tick),
        ticks,
    )


def test_compiled_filter_aggregate_gate():
    """Acceptance: the fused filter+aggregate kernel is >= 2x the
    interpreted batch operators on the hot grouped-aggregate tick query."""
    interp, compiled = _filter_aggregate_run()
    speedup = interp / compiled
    print(
        f"\nfilter+aggregate: interpreted {interp * 1000:.1f} ms, "
        f"compiled {compiled * 1000:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= GATE_SPEEDUP, (
        f"compiled filter+aggregate speedup {speedup:.2f}x below the "
        f"{GATE_SPEEDUP:.1f}x gate"
    )


def test_compiled_band_join_gate():
    """Acceptance: the fused band-join kernel is >= 2x the interpreted
    range-probe join on the scout/unit proximity query."""
    interp, compiled = _band_join_run()
    speedup = interp / compiled
    print(
        f"\nband join: interpreted {interp * 1000:.1f} ms, "
        f"compiled {compiled * 1000:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= GATE_SPEEDUP, (
        f"compiled band-join speedup {speedup:.2f}x below the {GATE_SPEEDUP:.1f}x gate"
    )


def test_kernel_cache_serves_repeated_plans():
    """Replanning the same query must hit the fingerprint-keyed cache."""
    catalog, units = incremental_scenario.build_units_catalog(n_rows=500)
    plan = incremental_scenario.tick_query()
    executor = Executor(catalog, COMPILED_CONFIG)
    executor.execute(plan)
    executor.invalidate_plans()  # drops kernels with the plans
    executor.execute(plan)
    report = executor.kernel_report()
    assert report["compiled"] == 2, report  # recompiled after invalidation
    executor.planner.plan(plan)  # fresh lowering, same fingerprint
    assert executor.kernel_report()["hits"] >= 1


if __name__ == "__main__":
    test_compiled_filter_aggregate_gate()
    test_compiled_band_join_gate()
    test_kernel_cache_serves_repeated_plans()
    print("ok")
