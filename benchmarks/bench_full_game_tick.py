"""E12 — full game tick rate and phase breakdown (Section 1, Section 2).

The motivating scalability question (EVE Online's 40,000 concurrent users
on one server) translates here into: how does the achievable tick rate of a
complete game — scripts, effect combination, physics, update rules — scale
with the number of NPCs, and where does the time go (query+effect step vs.
update step)?
"""

from __future__ import annotations

import pytest

from repro import ExecutionMode
from repro.bench import Experiment
from repro.workloads import build_rts_world, build_traffic_world


@pytest.mark.benchmark(group="E12-full-game")
@pytest.mark.parametrize("n_units", [100, 300])
def test_full_rts_tick(benchmark, n_units):
    world = build_rts_world(n_units, mode=ExecutionMode.COMPILED)
    benchmark(world.tick)


@pytest.mark.benchmark(group="E12-full-game")
def test_full_traffic_tick(benchmark):
    world = build_traffic_world(500)
    benchmark(world.tick)


def test_tick_rate_scaling_and_phase_breakdown(scaling_sizes, capsys):
    experiment = Experiment(
        "E12: full game tick (scripts + physics + updates)",
        columns=["units", "ticks_per_s", "effect_step_pct", "update_step_pct"],
    )
    rates = []
    for n in scaling_sizes:
        world = build_rts_world(n, mode=ExecutionMode.COMPILED)
        world.tick()  # warm-up: compiles plans
        reports = world.run(3)
        total = sum(r.total_seconds for r in reports) / len(reports)
        effect = sum(r.effect_step_seconds for r in reports) / len(reports)
        update = sum(r.update_step_seconds for r in reports) / len(reports)
        rates.append(1.0 / total if total else float("inf"))
        experiment.add_row(
            units=n,
            ticks_per_s=rates[-1],
            effect_step_pct=100 * effect / total,
            update_step_pct=100 * update / total,
        )
    with capsys.disabled():
        experiment.print()
    # Tick rate decreases with population but stays interactive at the small end.
    assert rates[0] > rates[-1]
    assert rates[0] > 5.0
