"""E5 — parallel effect computation (Section 4.2).

"Since all tables are read-only until the update phase, effect computation
can occur without synchronization."  The partitioned executor splits the
acting-object extent across workers; results must match serial execution
exactly, and the simulated speedup (sum of partition work / slowest
partition) should scale with the worker count even though the Python GIL
hides wall-clock gains for pure-Python operators (see DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.bench import Experiment
from repro.engine import (
    Aggregate,
    AggregateSpec,
    Catalog,
    Column,
    DataType,
    Executor,
    Join,
    PartitionedExecutor,
    Schema,
    Select,
    TableScan,
    and_all,
    col,
)
from repro.workloads.state_switching import unit_positions


def make_catalog(n: int = 400) -> Catalog:
    catalog = Catalog()
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("player", DataType.NUMBER),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
            Column("range", DataType.NUMBER),
            Column("strength", DataType.NUMBER),
        ]
    )
    catalog.create_table("unit", schema, key="id").insert_many(unit_positions(n, "exploring"))
    return catalog


def effect_plan():
    join = Join(TableScan("unit", alias="self"), TableScan("unit", alias="u"), None, how="cross")
    predicate = and_all(
        [
            col("u.x").ge(col("self.x") - col("self.range")),
            col("u.x").le(col("self.x") + col("self.range")),
            col("u.y").ge(col("self.y") - col("self.range")),
            col("u.y").le(col("self.y") + col("self.range")),
        ]
    )
    return Aggregate(Select(join, predicate), ["self.id"], [AggregateSpec("cnt", "count")])


@pytest.mark.benchmark(group="E5-parallel")
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_partitioned_effect_step(benchmark, workers):
    catalog = make_catalog()
    executor = PartitionedExecutor(catalog, n_workers=workers, use_threads=False)
    benchmark(lambda: executor.execute(effect_plan(), "unit", "id", partition_only_scan_alias="self"))


def test_speedup_curve_and_correctness(capsys):
    catalog = make_catalog()
    serial_rows = {(r["self.id"], r["cnt"]) for r in Executor(catalog).execute(effect_plan()).rows}
    experiment = Experiment(
        "E5: simulated parallel speedup of the effect step",
        columns=["workers", "wall_clock_s", "simulated_speedup"],
    )
    speedups = {}
    for workers in (1, 2, 4, 8):
        executor = PartitionedExecutor(catalog, n_workers=workers, use_threads=False)
        result = executor.execute(effect_plan(), "unit", "id", partition_only_scan_alias="self")
        assert {(r["self.id"], r["cnt"]) for r in result.rows} == serial_rows
        speedups[workers] = result.simulated_speedup
        experiment.add_row(workers=workers, wall_clock_s=result.wall_clock, simulated_speedup=result.simulated_speedup)
    with capsys.disabled():
        experiment.print()
    assert speedups[4] > speedups[1]
    assert speedups[8] > 2.0
