"""E10 — waitNextTick vs. a hand-written state machine (Section 3.2).

The paper argues waitNextTick is pure syntactic convenience: "there is a
direct translation between multi-tick programs using waitNextTick and
standard single-tick SGL programs".  The benchmark runs the same
move/regroup/strike behaviour written both ways and checks equal results
and comparable cost.
"""

from __future__ import annotations

import pytest

from repro import ExecutionMode, GameWorld
from repro.bench import Experiment, measure

MULTI_TICK_SOURCE = """
class Soldier {
  state:
    number x = 0;
    number stamina = 10;
  effects:
    number dx : sum;
    number rest : sum;
    number strike : sum;
}

script campaign(Soldier self) {
  dx <- 1;
  waitNextTick;
  rest <- 1;
  waitNextTick;
  strike <- 1;
}
"""

STATE_MACHINE_SOURCE = """
class Soldier {
  state:
    number x = 0;
    number stamina = 10;
    number phase = 0;
  effects:
    number dx : sum;
    number rest : sum;
    number strike : sum;
}

script campaign(Soldier self) {
  if (phase == 0) { dx <- 1; }
  if (phase == 1) { rest <- 1; }
  if (phase == 2) { strike <- 1; }
}
"""


def build_multi_tick(n: int):
    world = GameWorld(MULTI_TICK_SOURCE, mode=ExecutionMode.COMPILED)
    world.add_update_rule("Soldier", "x", lambda s, e: s["x"] + e.get("dx", 0))
    world.add_update_rule(
        "Soldier", "stamina", lambda s, e: s["stamina"] + e.get("rest", 0) - e.get("strike", 0)
    )
    for _ in range(n):
        world.spawn("Soldier")
    return world


def build_state_machine(n: int):
    world = GameWorld(STATE_MACHINE_SOURCE, mode=ExecutionMode.COMPILED)
    world.add_update_rule("Soldier", "x", lambda s, e: s["x"] + e.get("dx", 0))
    world.add_update_rule(
        "Soldier", "stamina", lambda s, e: s["stamina"] + e.get("rest", 0) - e.get("strike", 0)
    )
    world.add_update_rule("Soldier", "phase", lambda s, e: (s["phase"] + 1) % 3)
    for _ in range(n):
        world.spawn("Soldier")
    return world


@pytest.mark.benchmark(group="E10-multitick")
def test_wait_next_tick_version(benchmark):
    world = build_multi_tick(400)
    benchmark(world.tick)


@pytest.mark.benchmark(group="E10-multitick")
def test_hand_written_state_machine(benchmark):
    world = build_state_machine(400)
    benchmark(world.tick)


def test_equivalence_and_overhead(capsys):
    multi = build_multi_tick(200)
    manual = build_state_machine(200)
    for _ in range(6):
        multi.tick()
        manual.tick()
    state_multi = sorted((s["id"], s["x"], s["stamina"]) for s in multi.objects("Soldier"))
    state_manual = sorted((s["id"], s["x"], s["stamina"]) for s in manual.objects("Soldier"))
    assert state_multi == state_manual

    experiment = Experiment(
        "E10: waitNextTick vs hand-written state machine (200 soldiers, 1 tick)",
        columns=["variant", "tick_s"],
    )
    experiment.add_row(variant="waitNextTick", tick_s=measure(build_multi_tick(200).tick, repeat=2))
    experiment.add_row(variant="state machine", tick_s=measure(build_state_machine(200).tick, repeat=2))
    with capsys.disabled():
        experiment.print()
