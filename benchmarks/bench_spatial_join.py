"""E3 — spatial-index range join vs. nested-loop join (Sections 2, 4).

The "units in range" query is the workhorse of SGL workloads.  The grid
based range-probe join the planner picks should beat the naive nested-loop
plan, with the gap growing quadratically in the number of units.
"""

from __future__ import annotations

import pytest

from repro.bench import Experiment, measure
from repro.engine import (
    Aggregate,
    AggregateSpec,
    Catalog,
    Column,
    DataType,
    Executor,
    Join,
    Schema,
    Select,
    TableScan,
    and_all,
    col,
)
from repro.workloads.state_switching import unit_positions


def make_catalog(n: int) -> Catalog:
    catalog = Catalog()
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("player", DataType.NUMBER),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
            Column("range", DataType.NUMBER),
            Column("strength", DataType.NUMBER),
        ]
    )
    table = catalog.create_table("unit", schema, key="id")
    table.insert_many(unit_positions(n, "exploring"))
    return catalog


def range_join_plan():
    join = Join(TableScan("unit", alias="self"), TableScan("unit", alias="u"), None, how="cross")
    predicate = and_all(
        [
            col("u.x").ge(col("self.x") - col("self.range")),
            col("u.x").le(col("self.x") + col("self.range")),
            col("u.y").ge(col("self.y") - col("self.range")),
            col("u.y").le(col("self.y") + col("self.range")),
        ]
    )
    return Aggregate(Select(join, predicate), ["self.id"], [AggregateSpec("cnt", "count")])


@pytest.mark.benchmark(group="E3-spatial-join")
def test_optimized_range_probe_join(benchmark):
    executor = Executor(make_catalog(400), optimize=True)
    plan = range_join_plan()
    benchmark(lambda: executor.execute(plan))


@pytest.mark.benchmark(group="E3-spatial-join")
def test_naive_nested_loop_join(benchmark):
    executor = Executor(make_catalog(400), optimize=False, use_indexes=False)
    plan = range_join_plan()
    benchmark(lambda: executor.execute(plan, cache=False))


def test_optimized_join_wins_and_gap_grows(scaling_sizes, capsys):
    experiment = Experiment(
        "E3: grid range-probe join vs nested-loop join",
        columns=["units", "optimized_s", "naive_s", "speedup"],
    )
    speedups = []
    for n in scaling_sizes:
        catalog = make_catalog(n)
        optimized = Executor(catalog, optimize=True)
        naive = Executor(catalog, optimize=False, use_indexes=False)
        plan = range_join_plan()
        optimized_s = measure(lambda: optimized.execute(plan), repeat=2)
        naive_s = measure(lambda: naive.execute(plan, cache=False), repeat=2)
        speedups.append(naive_s / optimized_s)
        experiment.add_row(units=n, optimized_s=optimized_s, naive_s=naive_s, speedup=speedups[-1])
    with capsys.disabled():
        experiment.print()
    assert speedups[-1] > 1.0
    assert speedups[-1] >= speedups[0] * 0.8  # gap does not shrink materially
