"""E13 — columnar batch execution vs. row-at-a-time execution.

The tick loop executes the same queries every tick over memory-resident
tables; the row-at-a-time iterator model pays one dict materialization per
row per operator for that.  The batch path (``repro/engine/batch.py``,
``repro/engine/operators/batch_ops.py``) runs batch-capable subtrees over
shared column lists with compiled predicates instead.

Three measurements:

* the hot tick-query shape (filter + grouped aggregate over 10k rows),
  where the acceptance bar is a >= 2x speedup for the batch path,
* the Figure-2 accumulation loop (``count_neighbours``), where the band
  join itself stays on the grid-accelerated row path and batching covers
  the scan/filter/aggregate legs around it,
* the full game tick, where physics and the update step bound the
  achievable win (see docs/PERFORMANCE.md for the breakdown).
"""

from __future__ import annotations

import random
import time

import pytest

from repro import ExecutionMode
from repro.engine.algebra import Aggregate, AggregateSpec, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.expressions import col, lit
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.workloads import build_rts_world

N_ROWS = 10_000


def _units_catalog(n_rows: int = N_ROWS, seed: int = 42) -> Catalog:
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "units",
        Schema(
            [
                Column("id", DataType.NUMBER),
                Column("player", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
                Column("health", DataType.NUMBER),
            ]
        ),
    )
    for i in range(n_rows):
        units.insert(
            {
                "id": i,
                "player": i % 4,
                "x": rng.uniform(0, 100),
                "y": rng.uniform(0, 100),
                "health": rng.uniform(0, 100),
            }
        )
    return catalog


def _tick_query() -> Aggregate:
    """The hot tick-query shape: filter the world, aggregate per player."""
    return Aggregate(
        Select(
            TableScan("units"),
            col("x").gt(lit(25.0)).and_(col("health").gt(lit(10.0))),
        ),
        ["player"],
        [AggregateSpec("n", "count"), AggregateSpec("total_hp", "sum", col("health"))],
    )


def _best_of(fn, repetitions: int = 7) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_speedup_filter_aggregate_10k():
    """Acceptance: >= 2x on a 10k-row filter+aggregate tick query."""
    catalog = _units_catalog()
    plan = _tick_query()
    row_exec = Executor(catalog, use_batch=False)
    batch_exec = Executor(catalog, use_batch=True)
    assert batch_exec.prepare(plan).uses_batch
    assert not row_exec.prepare(plan).uses_batch
    # Results must agree before timings mean anything.
    row_rows = sorted(row_exec.execute(plan).rows, key=lambda r: r["player"])
    batch_rows = sorted(batch_exec.execute(plan).rows, key=lambda r: r["player"])
    assert row_rows == batch_rows

    row_time = _best_of(lambda: row_exec.execute(plan))
    batch_time = _best_of(lambda: batch_exec.execute(plan))
    speedup = row_time / batch_time
    print(
        f"\n10k-row filter+aggregate: row {row_time * 1e3:.2f}ms, "
        f"batch {batch_time * 1e3:.2f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"batch path only {speedup:.2f}x faster"


@pytest.mark.benchmark(group="E13-columnar-query")
def test_filter_aggregate_batch(benchmark):
    catalog = _units_catalog()
    executor = Executor(catalog, use_batch=True)
    plan = _tick_query()
    executor.execute(plan)  # warm the plan cache and the columnar snapshot
    benchmark(lambda: executor.execute(plan))


@pytest.mark.benchmark(group="E13-columnar-query")
def test_filter_aggregate_row(benchmark):
    catalog = _units_catalog()
    executor = Executor(catalog, use_batch=False)
    plan = _tick_query()
    executor.execute(plan)
    benchmark(lambda: executor.execute(plan))


def _fig2_world(use_batch: bool, n: int = 300):
    return build_rts_world(
        n,
        mode=ExecutionMode.COMPILED,
        with_physics=False,
        scripts=["count_neighbours"],
        use_batch=use_batch,
    )


@pytest.mark.benchmark(group="E13-columnar-fig2")
def test_fig2_accum_loop_batch(benchmark):
    world = _fig2_world(use_batch=True)
    world.tick()
    benchmark(world.tick)


@pytest.mark.benchmark(group="E13-columnar-fig2")
def test_fig2_accum_loop_row(benchmark):
    world = _fig2_world(use_batch=False)
    world.tick()
    benchmark(world.tick)


@pytest.mark.benchmark(group="E13-columnar-full-tick")
def test_full_game_tick_batch(benchmark):
    world = build_rts_world(200, mode=ExecutionMode.COMPILED)
    world.tick()
    benchmark(world.tick)


@pytest.mark.benchmark(group="E13-columnar-full-tick")
def test_full_game_tick_row(benchmark):
    world = build_rts_world(200, mode=ExecutionMode.COMPILED, use_batch=False)
    world.tick()
    benchmark(world.tick)
