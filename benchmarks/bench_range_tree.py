"""E6 — orthogonal range tree space and query cost (Section 4.2).

"Each of these trees takes Θ(n log^{d-1} n) space … a tree with 100,000
entries of 16 bytes each takes about 2 GB."  The benchmark builds range
trees, kd-trees and grids over growing point sets, reports estimated bytes
per structure (the range tree must grow super-linearly), extrapolates the
paper's 100k/2 GB figure, and times range queries.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.bench import Experiment, measure
from repro.engine.indexes import KdTreeIndex, RangeTreeIndex


def make_points(n: int, dims: int = 2, seed: int = 9):
    rng = random.Random(seed)
    return [(tuple(rng.uniform(0, 1000) for _ in range(dims)), i) for i in range(n)]


@pytest.mark.benchmark(group="E6-range-tree")
def test_range_tree_build(benchmark):
    points = make_points(2000)
    benchmark(lambda: RangeTreeIndex(["x", "y"]).build_from_points(points))


@pytest.mark.benchmark(group="E6-range-tree")
def test_range_tree_query(benchmark):
    points = make_points(2000)
    tree = RangeTreeIndex(["x", "y"])
    tree.build_from_points(points)
    benchmark(lambda: list(tree.range_search([(100, 200), (100, 200)])))


@pytest.mark.benchmark(group="E6-range-tree")
def test_kdtree_query(benchmark):
    points = make_points(2000)
    tree = KdTreeIndex(["x", "y"])
    tree.build_from_points(points)
    benchmark(lambda: list(tree.range_search([(100, 200), (100, 200)])))


def test_space_blowup_matches_paper_shape(capsys):
    experiment = Experiment(
        "E6: index memory footprint (16-byte entries)",
        "range tree grows ~n log n (2-d); kd-tree and grid stay linear",
        columns=["points", "range_tree_bytes", "kdtree_bytes", "bytes_per_point_rt"],
    )
    ratios = []
    for n in (256, 1024, 4096):
        points = make_points(n)
        tree = RangeTreeIndex(["x", "y"])
        tree.build_from_points(points)
        kd = KdTreeIndex(["x", "y"])
        kd.build_from_points(points)
        per_point = tree.estimated_bytes(16) / n
        ratios.append(per_point)
        experiment.add_row(
            points=n,
            range_tree_bytes=tree.estimated_bytes(16),
            kdtree_bytes=kd.estimated_bytes(16),
            bytes_per_point_rt=per_point,
        )
    # Extrapolate the paper's back-of-envelope claim for a high-d tree.
    n_paper = 100_000
    d = 4
    paper_estimate = n_paper * 16 * math.log2(n_paper) ** (d - 1)
    experiment.add_row(
        points=n_paper,
        range_tree_bytes=int(paper_estimate),
        kdtree_bytes=n_paper * 16,
        bytes_per_point_rt=paper_estimate / n_paper,
    )
    with capsys.disabled():
        experiment.print()
        print(
            f"paper check: a {d}-d tree over 100,000 16-byte entries ≈ "
            f"{paper_estimate / 2**30:.1f} GiB (the paper says 'about 2 GB')\n"
        )
    # Per-point cost must grow with n (super-linear total space).
    assert ratios[-1] > ratios[0]
    # And the paper's 2 GB figure is the right order of magnitude.
    assert 1.0 < paper_estimate / 2**30 < 16.0


def test_query_cost_comparison(capsys):
    points = make_points(4000)
    rng = random.Random(1)
    structures = {
        "range_tree": RangeTreeIndex(["x", "y"]),
        "kdtree": KdTreeIndex(["x", "y"]),
    }
    for s in structures.values():
        s.build_from_points(points)
    experiment = Experiment("E6b: 200 range queries over 4000 points", columns=["index", "seconds"])
    for name, index in structures.items():
        def run(index=index):
            for _ in range(200):
                x = rng.uniform(0, 900)
                y = rng.uniform(0, 900)
                list(index.range_search([(x, x + 50), (y, y + 50)]))

        experiment.add_row(index=name, seconds=measure(run, repeat=1, warmup=0))
    with capsys.disabled():
        experiment.print()
