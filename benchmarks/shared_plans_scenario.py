"""Shared many-scripts tick scenario for the MQO benchmarks and CI.

The regime the paper's Figure-2-style workloads stress: *many* scripts over
one class, each re-deriving the same hot spatial self-join per tick with
only its projection differing.  Unshared execution evaluates the band join
once per query; the tick pipeline (``Executor.execute_tick``) evaluates it
once per *tick* and serves every consumer from the materialization.

Used by ``bench_shared_plans.py`` (pytest gate: shared >= 2x unshared) and
``ci_bench.py`` (the CI benchmark/regression pipeline), so the two always
measure the same workload.
"""

from __future__ import annotations

import random

from repro.engine.algebra import Join, LogicalPlan, Project, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.expressions import BinaryOp, col, lit
from repro.engine.executor import TickQuerySpec
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import DataType

N_ROWS = 2_000
N_QUERIES = 8
WORLD_SIZE = 600.0
BAND = 12.0
CHURN_FRACTION = 0.02
SEED = 7


def build_units_catalog(n_rows: int = N_ROWS, seed: int = SEED) -> tuple[Catalog, Table]:
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "units",
        Schema(
            [
                Column("id", DataType.NUMBER),
                Column("player", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
                Column("attack", DataType.NUMBER),
            ]
        ),
    )
    for i in range(n_rows):
        units.insert(
            {
                "id": i,
                "player": i % 2,
                "x": rng.uniform(0, WORLD_SIZE),
                "y": rng.uniform(0, WORLD_SIZE),
                "attack": rng.choice([1, 2, 3]),
            }
        )
    return catalog, units


def _band_condition() -> BinaryOp:
    """The Figure-2 shape: all units b within BAND of unit a, other player."""
    condition = col("b.x").ge(col("a.x") - lit(BAND))
    condition = condition.and_(col("b.x").le(col("a.x") + lit(BAND)))
    condition = condition.and_(col("b.y").ge(col("a.y") - lit(BAND)))
    condition = condition.and_(col("b.y").le(col("a.y") + lit(BAND)))
    condition = condition.and_(col("b.player").ne(col("a.player")))
    return condition


def tick_queries(n_queries: int = N_QUERIES) -> list[LogicalPlan]:
    """``n_queries`` effect-query-shaped plans sharing the hot band join.

    Each plan is built fresh (distinct objects, as the SGL compiler would
    emit for distinct scripts); only the projected value differs, so the
    optimized join subtree is fingerprint-identical across all of them.
    """
    plans: list[LogicalPlan] = []
    for k in range(n_queries):
        joined = Select(
            Join(TableScan("units", "a"), TableScan("units", "b"), None, how="cross"),
            _band_condition(),
        )
        plans.append(
            Project(
                joined,
                {
                    "__target__": col("b.id"),
                    "__value__": col("b.attack") * lit(k + 1),
                },
            )
        )
    return plans


def tick_specs(plans: list[LogicalPlan]) -> list[TickQuerySpec]:
    """Pipeline specs for *plans* (plain row results, no sink fusion, so the
    shared-vs-unshared comparison isolates subplan sharing)."""
    return [TickQuerySpec(key=f"q{k}", plan=plan) for k, plan in enumerate(plans)]


def churn_step(
    units: Table, rng: random.Random, fraction: float = CHURN_FRACTION
) -> None:
    """Move ``fraction`` of the units so consecutive ticks differ."""
    rowids = list(units.row_ids())
    for rowid in rng.sample(rowids, max(1, int(len(rowids) * fraction))):
        units.update(
            rowid,
            {"x": rng.uniform(0, WORLD_SIZE), "y": rng.uniform(0, WORLD_SIZE)},
        )
