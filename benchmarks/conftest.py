"""Shared fixtures and sizing knobs for the benchmark suite.

Sizes are chosen so the whole suite finishes in a few minutes on a laptop;
every benchmark exposes its sweep parameters so EXPERIMENTS.md can point at
larger configurations.
"""

from __future__ import annotations

import pytest

#: Unit counts used by scaling sweeps (kept modest for CI-sized runs).
SCALING_SIZES = (100, 200, 400)


@pytest.fixture(scope="session")
def scaling_sizes() -> tuple[int, ...]:
    return SCALING_SIZES
