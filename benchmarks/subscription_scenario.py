"""Shared subscription-serving scenario for the benchmarks and CI.

The paper's serving regime: one simulated world, ~1k connected clients,
~1% of the world churning per tick.  Half the clients hold spatial
area-of-interest views (every box distinct — no dedup leverage), the other
half hold filter standing queries drawn from a small set of shapes (heavy
dedup leverage: thousands of players watching "team 3" share one group).

Two serving strategies over identical state and subscriptions:

* **naive per-client re-query** — every client's standing query re-executed
  (and its full result materialized) every tick, through a plan-cached
  executor with spatial indexes available; this is the honest baseline the
  ISSUE's >= 5x gate is measured against,
* **delta fan-out** — one ``SubscriptionManager.flush`` per tick: each
  distinct query group computes its signed delta once (change-log cursors,
  no re-execution for filter groups) and the AOI interest manager routes
  changed rows through subscription cells.

Used by ``bench_subscriptions.py`` (pytest gate) and ``ci_bench.py`` (the
``subscriptions.fanout_speedup`` gated metric), so both measure the same
workload.
"""

from __future__ import annotations

import random

from repro.engine.algebra import LogicalPlan, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.expressions import BinaryOp, col, lit
from repro.engine.indexes.grid_index import GridIndex
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.service.subscriptions import SubscriptionManager

N_ROWS = 5_000
N_SUBSCRIBERS = 1_000
N_FILTER_SHAPES = 8
WORLD_SIZE = 400.0
AOI_RADIUS = 12.0
CELL_SIZE = 16.0
CHURN_FRACTION = 0.01
SEED = 31


def build_units_catalog(n_rows: int = N_ROWS, seed: int = SEED) -> tuple[Catalog, Table]:
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "units",
        Schema(
            [
                Column("id", DataType.NUMBER, nullable=False),
                Column("team", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
                Column("health", DataType.NUMBER),
            ]
        ),
        key="id",
    )
    for i in range(n_rows):
        units.insert(
            {
                "id": i,
                "team": i % N_FILTER_SHAPES,
                "x": rng.uniform(0.0, WORLD_SIZE),
                "y": rng.uniform(0.0, WORLD_SIZE),
                "health": rng.randrange(1, 101),
            }
        )
    catalog.create_index("units", "units_xy", GridIndex(("x", "y"), cell_size=CELL_SIZE))
    return catalog, units


def churn_step(units: Table, rng: random.Random) -> None:
    """Move CHURN_FRACTION of the units to fresh positions."""
    n_moves = max(1, int(len(units) * CHURN_FRACTION))
    ids = rng.sample(range(len(units)), n_moves)
    for unit_id in ids:
        units.update_by_key(
            unit_id,
            {"x": rng.uniform(0.0, WORLD_SIZE), "y": rng.uniform(0.0, WORLD_SIZE)},
        )


def _aoi_plan(cx: float, cy: float, radius: float) -> LogicalPlan:
    box = BinaryOp(
        "&&",
        BinaryOp(
            "&&",
            BinaryOp(">=", col("x"), lit(cx - radius)),
            BinaryOp("<=", col("x"), lit(cx + radius)),
        ),
        BinaryOp(
            "&&",
            BinaryOp(">=", col("y"), lit(cy - radius)),
            BinaryOp("<=", col("y"), lit(cy + radius)),
        ),
    )
    return Select(TableScan("units"), box)


def _filter_plan(shape: int) -> LogicalPlan:
    return Select(TableScan("units"), BinaryOp("==", col("team"), lit(shape)))


def client_plans(
    n_subscribers: int = N_SUBSCRIBERS, seed: int = SEED
) -> list[tuple[str, LogicalPlan, dict]]:
    """One standing query per simulated client: ``(kind, plan, params)``.

    The plan is what the naive strategy re-executes per client per tick;
    ``params`` carries what the delta strategy needs to register the same
    view as a subscription.
    """
    rng = random.Random(seed + 1)
    out: list[tuple[str, LogicalPlan, dict]] = []
    for i in range(n_subscribers):
        if i % 2 == 0:
            cx = rng.uniform(AOI_RADIUS, WORLD_SIZE - AOI_RADIUS)
            cy = rng.uniform(AOI_RADIUS, WORLD_SIZE - AOI_RADIUS)
            out.append(
                ("aoi", _aoi_plan(cx, cy, AOI_RADIUS), {"center": (cx, cy), "radius": AOI_RADIUS})
            )
        else:
            shape = rng.randrange(N_FILTER_SHAPES)
            out.append(("filter", _filter_plan(shape), {"shape": shape}))
    return out


def subscribe_clients(
    manager: SubscriptionManager, plans: list[tuple[str, LogicalPlan, dict]]
):
    """Register every client with the delta-serving manager (one session
    each, as a real fleet of connections would)."""
    sessions = []
    subscription_ids = []
    for kind, plan, params in plans:
        session = manager.connect()
        if kind == "aoi":
            sub_id = manager.subscribe_aoi(
                session,
                "units",
                radius=params["radius"],
                center=params["center"],
                cell_size=CELL_SIZE,
            )
        else:
            sub_id = manager.subscribe_query(session, plan)
        sessions.append(session)
        subscription_ids.append(sub_id)
    return sessions, subscription_ids


def naive_tick(executor: Executor, plans: list[tuple[str, LogicalPlan, dict]]) -> int:
    """The baseline: re-run every client's standing query, materializing
    its full result (what per-client serving ships each tick)."""
    served = 0
    for _, plan, _ in plans:
        served += len(executor.execute(plan).rows)
    return served
