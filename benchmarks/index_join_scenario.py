"""Shared moving-units band-join scenario for the index-join benchmarks.

A population of ``N_UNITS`` units at ~1% churn per tick, probed by a small
squad of ``N_SCOUTS`` scouts that runs the Figure-2 band join against the
whole population each tick ("report every unit within my range").  The
units table carries a registered :class:`GridIndex` over ``(x, y)`` —
maintained O(1) per mutation — so the same catalog serves three paths:

* **indexed** — the planner probes the persistent grid
  (``IndexProbeJoinOp``); the inner side is never rescanned, so per-tick
  join cost is O(scouts · candidates), independent of the population,
* **rebuild** — ``use_indexes=False``: the planner's fallback
  (``RangeProbeJoinOp``) materializes the inner side and rebuilds a
  transient grid on every execution — O(population) per tick,
* **row** — additionally ``use_batch=False``: the rebuild path with
  row-at-a-time scan legs.

Used by ``bench_index_join.py`` (pytest gate: indexed ≥ 3x vs rebuild) and
``ci_bench.py`` (the CI benchmark/regression pipeline), so the two always
measure the same workload.
"""

from __future__ import annotations

import random

from repro.engine.algebra import Join, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.expressions import and_all, col
from repro.engine.indexes import GridIndex
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import DataType

N_UNITS = 10_000
N_SCOUTS = 150
RADIUS_CHOICES = (1.5, 2.0, 2.5)
WORLD_SIZE = 100.0
CELL_SIZE = 2.0  # ~ half the typical probe width (2 * radius)
CHURN_FRACTION = 0.01  # 1% of units move per tick
SCOUT_CHURN_FRACTION = 0.25  # scouts are on the move
SEED = 77


def build_band_catalog(
    n_units: int = N_UNITS, n_scouts: int = N_SCOUTS, seed: int = SEED
) -> tuple[Catalog, Table, Table]:
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "unit",
        Schema(
            [
                Column("id", DataType.NUMBER, nullable=False),
                Column("player", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
            ]
        ),
    )
    for i in range(n_units):
        units.insert(
            {
                "id": i,
                "player": i % 2,
                "x": rng.uniform(0, WORLD_SIZE),
                "y": rng.uniform(0, WORLD_SIZE),
            }
        )
    scouts = catalog.create_table(
        "scout",
        Schema(
            [
                Column("id", DataType.NUMBER, nullable=False),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
                Column("range", DataType.NUMBER),
            ]
        ),
    )
    for i in range(n_scouts):
        scouts.insert(
            {
                "id": i,
                "x": rng.uniform(0, WORLD_SIZE),
                "y": rng.uniform(0, WORLD_SIZE),
                "range": rng.choice(RADIUS_CHOICES),
            }
        )
    catalog.create_index("unit", "unit_xy_grid", GridIndex(["x", "y"], cell_size=CELL_SIZE))
    return catalog, units, scouts


def band_join_query() -> Select:
    """Each scout reports every unit within its per-row range (Figure 2)."""
    join = Join(
        TableScan("scout", alias="self"), TableScan("unit", alias="u"), None, how="cross"
    )
    predicate = and_all(
        [
            col("u.x").ge(col("self.x") - col("self.range")),
            col("u.x").le(col("self.x") + col("self.range")),
            col("u.y").ge(col("self.y") - col("self.range")),
            col("u.y").le(col("self.y") + col("self.range")),
        ]
    )
    return Select(join, predicate)


def churn_step(
    units: Table,
    scouts: Table,
    rng: random.Random,
    tick: int,
    fraction: float = CHURN_FRACTION,
) -> None:
    """Move ``fraction`` of the units and a chunk of the scouts, plus an
    occasional unit spawn/despawn.

    Mutations go through ``Table.update``/``insert``/``delete``, so the
    registered grid index is maintained O(1) per move — the cost the
    indexed path amortizes where the rebuild path pays O(table) per query.
    """
    rowids = list(units.row_ids())
    for rowid in rng.sample(rowids, max(1, int(len(rowids) * fraction))):
        units.update(
            rowid, {"x": rng.uniform(0, WORLD_SIZE), "y": rng.uniform(0, WORLD_SIZE)}
        )
    scout_ids = list(scouts.row_ids())
    for rowid in rng.sample(scout_ids, max(1, int(len(scout_ids) * SCOUT_CHURN_FRACTION))):
        scouts.update(
            rowid, {"x": rng.uniform(0, WORLD_SIZE), "y": rng.uniform(0, WORLD_SIZE)}
        )
    if tick % 3 == 0:
        units.insert(
            {
                "id": 1_000_000 + tick,
                "player": tick % 2,
                "x": rng.uniform(0, WORLD_SIZE),
                "y": rng.uniform(0, WORLD_SIZE),
            }
        )
        units.delete(rng.choice(rowids))
