"""E15 — persistent index-backed band joins vs. per-tick grid rebuilds.

Section 4.2 of the paper argues that indexing is what makes per-tick range
queries scale — yet until PR 3 the band-join operators rebuilt a transient
grid over the inner side on every execution while registered
``GridIndex``/``RangeTreeIndex`` structures (maintained O(1) per mutation)
sat unused by the planner.  This benchmark measures what probing the
persistent index buys on the shared moving-units scenario
(``index_join_scenario.py``: 10k units at ~1% churn, probed by a 150-scout
squad running the Figure-2 band join each tick).

Measurements:

* the acceptance gate: the indexed path must beat the grid-rebuild path by
  >= 3x across a multi-tick run, with indexed/batch/row results asserted
  equivalent every tick,
* pytest-benchmark timings of one churn+query tick per path,
* the incremental view on the same query with the index available — the
  delta path probes the index for the unchanged side instead of rescanning
  it (informational; the incremental gate lives in bench_incremental.py).
"""

from __future__ import annotations

import random
import time

import pytest

from index_join_scenario import (
    CHURN_FRACTION,
    SEED,
    band_join_query,
    build_band_catalog,
    churn_step,
)
from repro.engine.executor import Executor
from repro.engine.operators import IndexProbeJoinOp, RangeProbeJoinOp

TICKS = 30


def _normalized(rows):
    return sorted((tuple(sorted(r.items())) for r in rows), key=repr)


def _paths(catalog):
    return {
        "indexed": Executor(catalog, use_incremental=False),
        "rebuild": Executor(catalog, use_indexes=False, use_incremental=False),
        "row": Executor(
            catalog, use_indexes=False, use_batch=False, use_incremental=False
        ),
    }


def test_index_join_speedup_vs_rebuild():
    """Acceptance: >= 3x over the per-tick grid-rebuild path at ~1% churn,
    with indexed/batch/row equivalence asserted every tick."""
    catalog, units, scouts = build_band_catalog()
    plan = band_join_query()
    paths = _paths(catalog)

    # The planner must actually have chosen the two paths being compared.
    indexed_ops = [type(op).__name__ for op in paths["indexed"].prepare(plan).physical.walk()]
    rebuild_ops = [type(op).__name__ for op in paths["rebuild"].prepare(plan).physical.walk()]
    assert IndexProbeJoinOp.__name__ in indexed_ops, indexed_ops
    assert RangeProbeJoinOp.__name__ in rebuild_ops, rebuild_ops

    # Correctness first: all three paths must agree under churn, per tick.
    rng = random.Random(SEED + 1)
    for tick in range(8):
        rows = {name: executor.execute(plan).rows for name, executor in paths.items()}
        assert rows["indexed"], f"tick {tick}: no matches, gate would be vacuous"
        assert _normalized(rows["indexed"]) == _normalized(rows["rebuild"]), f"tick {tick}"
        assert _normalized(rows["indexed"]) == _normalized(rows["row"]), f"tick {tick}"
        churn_step(units, scouts, rng, tick)

    # Timing: per tick, churn once, then run each path on identical state.
    totals = dict.fromkeys(paths, 0.0)
    for tick in range(TICKS):
        churn_step(units, scouts, rng, tick)
        for name, executor in paths.items():
            start = time.perf_counter()
            executor.execute(plan)
            totals[name] += time.perf_counter() - start

    speedup = totals["rebuild"] / totals["indexed"]
    row_speedup = totals["row"] / totals["indexed"]
    print(
        f"\n{TICKS} ticks at {CHURN_FRACTION:.0%} churn: "
        f"indexed {totals['indexed'] * 1e3:.1f}ms, rebuild {totals['rebuild'] * 1e3:.1f}ms, "
        f"row {totals['row'] * 1e3:.1f}ms -> {speedup:.1f}x vs rebuild, "
        f"{row_speedup:.1f}x vs row"
    )
    assert speedup >= 3.0, f"indexed band join only {speedup:.2f}x vs grid rebuild"


def test_incremental_band_join_probes_index():
    """The delta path on the same query probes the index for the unchanged
    side; equivalent results, and strictly fewer full-table rescans."""
    from repro.engine.operators import DeltaJoinOp

    catalog, units, scouts = build_band_catalog()
    plan = band_join_query()
    inc = Executor(catalog)
    assert inc.register_incremental(plan)
    ref = Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
    view = inc.incremental_view(plan)
    rng = random.Random(SEED + 2)
    for tick in range(5):
        assert _normalized(inc.execute(plan).rows) == _normalized(ref.execute(plan).rows)
        churn_step(units, scouts, rng, tick)
    probes = [
        op.band_probe
        for op in view.root.walk()
        if isinstance(op, DeltaJoinOp) and op.band_probe is not None
    ]
    assert probes and sum(p.index_probes for p in probes) > 0
    assert view.delta_refreshes >= 4, view.stats()


@pytest.mark.benchmark(group="E15-index-join-tick")
def test_tick_indexed(benchmark):
    catalog, units, scouts = build_band_catalog()
    plan = band_join_query()
    executor = Executor(catalog, use_incremental=False)
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(units, scouts, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)


@pytest.mark.benchmark(group="E15-index-join-tick")
def test_tick_grid_rebuild(benchmark):
    catalog, units, scouts = build_band_catalog()
    plan = band_join_query()
    executor = Executor(catalog, use_indexes=False, use_incremental=False)
    executor.execute(plan)
    rng = random.Random(SEED)
    state = {"tick": 0}

    def one_tick():
        churn_step(units, scouts, rng, state["tick"])
        state["tick"] += 1
        executor.execute(plan)

    benchmark(one_tick)
