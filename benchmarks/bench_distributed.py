"""E7 — shared-nothing cluster: index partitioning and latency (Section 4.2).

Partitioning the traffic workload across simulated nodes should (a) divide
the per-node memory footprint of the big range-tree index, and (b) reduce
the per-tick compute on the critical path, while higher network latency
eats into the gain — the latency sensitivity the paper highlights for MMOs.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import Experiment
from repro.engine.distributed import (
    Cluster,
    DistributedRangeIndex,
    NetworkModel,
    SpatialPartitioner,
)

WORLD = 2000.0


def vehicle_rows(n: int, seed: int = 3):
    rng = random.Random(seed)
    return [
        {"id": i, "x": rng.uniform(0, WORLD), "y": rng.uniform(0, WORLD), "range": 15.0}
        for i in range(n)
    ]


def run_tick(n_nodes: int, latency: float, n_vehicles: int = 300):
    cluster = Cluster(
        n_nodes,
        SpatialPartitioner("x", n_partitions=n_nodes, world_max=WORLD),
        NetworkModel(latency_s=latency),
    )
    cluster.load(vehicle_rows(n_vehicles))
    return cluster.run_range_query_tick(["x", "y"], "range", lambda a, b: {"id": a["id"]})


@pytest.mark.benchmark(group="E7-distributed")
@pytest.mark.parametrize("nodes", [1, 4])
def test_distributed_tick(benchmark, nodes):
    benchmark(lambda: run_tick(nodes, latency=0.0005))


def test_scaleout_and_latency_sensitivity(capsys):
    experiment = Experiment(
        "E7: simulated tick time on a shared-nothing cluster",
        columns=["nodes", "latency_s", "tick_s", "ghost_rows", "messages"],
    )
    single = run_tick(1, 0.0005)
    results = {}
    for nodes in (1, 2, 4, 8):
        for latency in (0.0005, 0.02):
            result = run_tick(nodes, latency)
            results[(nodes, latency)] = result
            experiment.add_row(
                nodes=nodes,
                latency_s=latency,
                tick_s=result.simulated_tick_seconds,
                ghost_rows=result.ghost_rows_shipped,
                messages=result.messages,
            )
    with capsys.disabled():
        experiment.print()
    # Results are identical regardless of partitioning.
    assert len(results[(4, 0.0005)].results) == len(single.results)
    # Scale-out helps at low latency; high latency erodes the benefit.
    assert results[(4, 0.0005)].simulated_tick_seconds < single.simulated_tick_seconds
    assert results[(4, 0.02)].simulated_tick_seconds > results[(4, 0.0005)].simulated_tick_seconds


def test_partitioned_index_memory(capsys):
    rng = random.Random(7)
    points = [((rng.uniform(0, WORLD), rng.uniform(0, WORLD)), i) for i in range(2000)]
    experiment = Experiment(
        "E7b: orthogonal range tree partitioned across nodes",
        columns=["nodes", "max_shard_bytes", "total_bytes", "shards_touched_by_narrow_query"],
    )
    max_bytes = {}
    for nodes in (1, 2, 4, 8):
        index = DistributedRangeIndex(
            ["x", "y"], SpatialPartitioner("x", n_partitions=nodes, world_max=WORLD)
        )
        index.build(points)
        max_bytes[nodes] = index.max_shard_bytes()
        experiment.add_row(
            nodes=nodes,
            max_shard_bytes=index.max_shard_bytes(),
            total_bytes=index.total_bytes(),
            shards_touched_by_narrow_query=len(index.shards_for_query([(0, 100), (0, WORLD)])),
        )
    with capsys.disabled():
        experiment.print()
    # Per-node memory shrinks as the index is partitioned across more nodes.
    assert max_bytes[8] < max_bytes[1] / 4
