"""E7 / E21 — distributed execution: simulation and the real sharded engine.

E7 (Section 4.2) keeps the original *simulated* shared-nothing cluster:
partitioning the traffic workload across simulated nodes should (a) divide
the per-node memory footprint of the big range-tree index, and (b) reduce
the per-tick compute on the critical path, while higher network latency
eats into the gain — the latency sensitivity the paper highlights for MMOs.

E21 runs the *real* multi-process sharded engine (``repro.shard``) on the
rts-derived scenario and gates the critical-path CPU speedup: 4 shards on
10k units / 1k AOI subscribers must beat the single-process oracle by at
least 2x.  CPU seconds are scheduling-invariant, so the gate holds on
single-core CI runners (see ``shard_scenario.run_shard_benchmark``).
"""

from __future__ import annotations

import random

import pytest

import shard_scenario
from repro.bench import Experiment
from repro.engine.distributed import (
    Cluster,
    DistributedRangeIndex,
    NetworkModel,
    SpatialPartitioner,
)

WORLD = 2000.0


def vehicle_rows(n: int, seed: int = 3):
    rng = random.Random(seed)
    return [
        {"id": i, "x": rng.uniform(0, WORLD), "y": rng.uniform(0, WORLD), "range": 15.0}
        for i in range(n)
    ]


def run_tick(n_nodes: int, latency: float, n_vehicles: int = 300):
    cluster = Cluster(
        n_nodes,
        SpatialPartitioner("x", n_partitions=n_nodes, world_max=WORLD),
        NetworkModel(latency_s=latency),
    )
    cluster.load(vehicle_rows(n_vehicles))
    return cluster.run_range_query_tick(["x", "y"], "range", lambda a, b: {"id": a["id"]})


@pytest.mark.benchmark(group="E7-distributed")
@pytest.mark.parametrize("nodes", [1, 4])
def test_distributed_tick(benchmark, nodes):
    benchmark(lambda: run_tick(nodes, latency=0.0005))


def test_scaleout_and_latency_sensitivity(capsys):
    experiment = Experiment(
        "E7: simulated tick time on a shared-nothing cluster",
        columns=["nodes", "latency_s", "tick_s", "ghost_rows", "messages"],
    )
    single = run_tick(1, 0.0005)
    results = {}
    for nodes in (1, 2, 4, 8):
        for latency in (0.0005, 0.02):
            result = run_tick(nodes, latency)
            results[(nodes, latency)] = result
            experiment.add_row(
                nodes=nodes,
                latency_s=latency,
                tick_s=result.simulated_tick_seconds,
                ghost_rows=result.ghost_rows_shipped,
                messages=result.messages,
            )
    with capsys.disabled():
        experiment.print()
    # Results are identical regardless of partitioning.
    assert len(results[(4, 0.0005)].results) == len(single.results)
    # Scale-out helps at low latency; high latency erodes the benefit.
    assert results[(4, 0.0005)].simulated_tick_seconds < single.simulated_tick_seconds
    assert results[(4, 0.02)].simulated_tick_seconds > results[(4, 0.0005)].simulated_tick_seconds


def test_partitioned_index_memory(capsys):
    rng = random.Random(7)
    points = [((rng.uniform(0, WORLD), rng.uniform(0, WORLD)), i) for i in range(2000)]
    experiment = Experiment(
        "E7b: orthogonal range tree partitioned across nodes",
        columns=["nodes", "max_shard_bytes", "total_bytes", "shards_touched_by_narrow_query"],
    )
    max_bytes = {}
    for nodes in (1, 2, 4, 8):
        index = DistributedRangeIndex(
            ["x", "y"], SpatialPartitioner("x", n_partitions=nodes, world_max=WORLD)
        )
        index.build(points)
        max_bytes[nodes] = index.max_shard_bytes()
        experiment.add_row(
            nodes=nodes,
            max_shard_bytes=index.max_shard_bytes(),
            total_bytes=index.total_bytes(),
            shards_touched_by_narrow_query=len(index.shards_for_query([(0, 100), (0, WORLD)])),
        )
    with capsys.disabled():
        experiment.print()
    # Per-node memory shrinks as the index is partitioned across more nodes.
    assert max_bytes[8] < max_bytes[1] / 4


# -- E21: the real multi-process sharded engine ------------------------------------------


def test_sharded_smoke_two_shards(capsys):
    """Fast end-to-end pass over the whole protocol at small scale."""
    result = shard_scenario.run_shard_benchmark(
        n_units=600, n_subscribers=40, n_shards=2, warmup=1, ticks=2
    )
    with capsys.disabled():
        print(
            f"\nE21 smoke (2 shards, 600 units): speedup={result['shard_speedup']}x "
            f"exchange_bytes/tick={result['exchange_bytes_per_tick']}"
        )
    assert result["exchange_bytes_per_tick"] > 0
    assert result["halo_rows_per_tick"] > 0
    assert result["critical_path_seconds_per_tick"] > 0


def test_sharded_speedup_gate(capsys):
    """The ISSUE 9 acceptance gate: >=2x tick throughput at 4 shards on the
    10k-unit / 1k-subscriber scenario, measured as critical-path CPU."""
    result = shard_scenario.run_shard_benchmark(
        n_units=10_000, n_subscribers=1_000, n_shards=4, warmup=3, ticks=3
    )
    experiment = Experiment(
        "E21: sharded multi-process tick vs single-process oracle",
        columns=[
            "shards",
            "single_cpu_s",
            "critical_path_s",
            "speedup",
            "exchange_bytes",
        ],
    )
    experiment.add_row(
        shards=result["n_shards"],
        single_cpu_s=result["single_cpu_seconds_per_tick"],
        critical_path_s=result["critical_path_seconds_per_tick"],
        speedup=result["shard_speedup"],
        exchange_bytes=result["exchange_bytes_per_tick"],
    )
    with capsys.disabled():
        experiment.print()
    assert result["shard_speedup"] >= 2.0
    assert result["exchange_bytes_per_tick"] > 0
