"""E8 — transactions: throughput, abort rate vs. contention (Section 3.1).

Atomic purchase blocks with ``gold >= 0`` / ``stock >= 0`` constraints must
prevent duping and negative balances; as more buyers contend for the same
seller's limited stock, the abort rate rises while committed throughput per
seller stays capped at the stock.
"""

from __future__ import annotations

import pytest

from repro import ExecutionMode
from repro.bench import Experiment
from repro.workloads import build_marketplace_world


@pytest.mark.benchmark(group="E8-transactions")
@pytest.mark.parametrize("mode", [ExecutionMode.INTERPRETED, ExecutionMode.COMPILED])
def test_marketplace_tick(benchmark, mode):
    world = build_marketplace_world(64, buyers_per_item=4, seller_stock=2, mode=mode)
    benchmark(world.tick)


def test_abort_rate_vs_contention(capsys):
    experiment = Experiment(
        "E8: transaction outcomes vs contention (stock = 2 per seller)",
        columns=["buyers_per_item", "submitted", "committed", "aborted", "abort_rate"],
    )
    rates = []
    for contention in (1, 2, 4, 8, 16):
        world = build_marketplace_world(32, buyers_per_item=contention, seller_stock=2)
        report = world.tick()
        tx = world.last_transaction_report
        rates.append(tx.abort_rate)
        experiment.add_row(
            buyers_per_item=contention,
            submitted=report.transactions_submitted,
            committed=tx.commit_count,
            aborted=tx.abort_count,
            abort_rate=tx.abort_rate,
        )
        traders = world.objects("Trader")
        assert all(t["stock"] >= 0 for t in traders)
        assert all(t["gold"] >= -1e-9 for t in traders)
    with capsys.disabled():
        experiment.print()
    assert rates[0] == 0.0
    assert rates[-1] > 0.5
    assert rates == sorted(rates)
