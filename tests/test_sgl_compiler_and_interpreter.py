"""Structural tests for the SGL compiler IR, the interpreter's reference
handling, and the benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench import Experiment
from repro.engine.algebra import Aggregate, Join
from repro.sgl import SGLCompiler, SchemaGenerator, SchemaLayout, analyze_program, parse_program
from repro.sgl.errors import SGLCompileError
from repro.sgl.interpreter import ScriptInterpreter
from repro.sgl.ir import ACTOR_COLUMN, TARGET_COLUMN, VALUE_COLUMN

SOURCE = """
class Item { state: number weight = 1; effects: number wear : sum; }

class Unit {
  state:
    number x = 0;
    number gold = 10;
    ref<Item> weapon;
  effects:
    number damage : sum;
    number spend : sum;
}

script swing(Unit self) {
  if (weapon.weight > 2) {
    weapon.wear <- 1;
    damage <- weapon.weight;
  }
}

script buy(Unit self) {
  atomic require(gold >= 0) {
    spend <- 5;
  }
}

script nested(Unit self) {
  accum number a with sum over Unit u from Unit {
    accum number b with sum over Unit v from Unit {
      b <- 1;
    } in { }
  } in { }
}
"""


def compile_program(source=SOURCE):
    program = parse_program(source)
    analyzed = analyze_program(program)
    generator = SchemaGenerator(SchemaLayout.SINGLE)
    schemas = {decl.name: generator.generate(decl) for decl in program.classes}
    return SGLCompiler(analyzed, schemas, generator), analyzed


class TestCompilerStructure:
    def test_ref_read_adds_dereference_join(self):
        compiler, _ = compile_program()
        compiled = compiler.compile_script("swing")
        queries = compiled.all_queries()
        assert {q.effect for q in queries} == {"wear", "damage"}
        damage = next(q for q in queries if q.effect == "damage")
        joins = [n for n in damage.plan.walk() if isinstance(n, Join)]
        assert any(j.how == "left" for j in joins)  # the weapon deref join
        wear = next(q for q in queries if q.effect == "wear")
        assert wear.target_class == "Item"

    def test_transactional_queries_carry_actor_and_constraints(self):
        compiler, _ = compile_program()
        compiled = compiler.compile_script("buy")
        (query,) = compiled.all_queries()
        assert query.transactional
        assert len(query.constraints) == 1
        projections = dict(next(iter(
            n for n in query.plan.walk() if hasattr(n, "projections")
        )).projections)
        assert TARGET_COLUMN in projections
        assert VALUE_COLUMN in projections
        assert ACTOR_COLUMN in projections

    def test_nested_accum_rejected(self):
        compiler, _ = compile_program()
        with pytest.raises(SGLCompileError):
            compiler.compile_script("nested")

    def test_accum_loop_compiles_to_aggregate(self, simple_game_source):
        compiler, _ = compile_program(simple_game_source)
        compiled = compiler.compile_script("brawl")
        (query,) = compiled.all_queries()
        assert any(isinstance(node, Aggregate) for node in query.plan.walk())
        assert query.plan.referenced_tables() == {"Unit"}


class TestInterpreterReferences:
    def test_reference_dereference_and_effect_on_referenced_object(self):
        program = parse_program(SOURCE)
        analyzed = analyze_program(program)
        interpreter = ScriptInterpreter(analyzed)
        items = {0: {"id": 0, "weight": 5}}
        units = {0: {"id": 0, "x": 0, "gold": 10, "weapon": 0}}

        class View:
            def extent(self, class_name):
                return list(items.values()) if class_name == "Item" else list(units.values())

            def get_object(self, class_name, object_id):
                store = items if class_name == "Item" else units
                return store.get(object_id)

        result, next_pc = interpreter.run_script("swing", units[0], View())
        assert next_pc == 0
        effects = {(a.class_name, a.effect): a.value for a in result.effects}
        assert effects[("Item", "wear")] == 1
        assert effects[("Unit", "damage")] == 5

    def test_evaluate_expression_for_constraints(self):
        program = parse_program(SOURCE)
        interpreter = ScriptInterpreter(analyze_program(program))
        from repro.sgl.parser import parse_expression

        class EmptyView:
            def extent(self, class_name):
                return []

            def get_object(self, class_name, object_id):
                return None

        value = interpreter.evaluate_expression(
            parse_expression("gold - 4 >= 0"), "Unit", {"id": 1, "gold": 3, "x": 0, "weapon": None}, EmptyView()
        )
        assert value is False


class TestBenchHarness:
    def test_experiment_renders_aligned_table(self):
        experiment = Experiment("demo", "description", columns=["n", "seconds"])
        experiment.add_row(n=10, seconds=0.5)
        experiment.add_row(n=1000, seconds=0.0001234)
        text = experiment.render()
        assert "demo" in text and "n" in text and "1000" in text
        assert len(text.splitlines()) == 6

    def test_experiment_infers_columns(self):
        experiment = Experiment("demo")
        experiment.add_row(a=1, b=2)
        assert "a" in experiment.render().splitlines()[1]
