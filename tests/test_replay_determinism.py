"""Replay determinism: the log reconstructs every tick bit-for-bit.

A commit record is the exact netted difference between two tick
boundaries, so replaying checkpoint + deltas must land on *precisely* the
state the live world held — at every boundary, not just the last one, and
regardless of which engine paths (MQO sharing, incremental maintenance,
batch execution) produced the states.  Seeded out-of-tick churn (spawns,
destroys, set_state between ticks) rides along in the next commit, so the
log captures the whole history, not just the tick loop's writes.
"""

from __future__ import annotations

import random
import tempfile

import pytest

from repro.persistence.replay import replay_tables
from repro.workloads.marketplace import build_marketplace_world
from repro.workloads.rts import build_rts_world
from repro.workloads.traffic import build_traffic_world

TICKS = 10
CHECKPOINT_INTERVAL = 3


def rts_churn(world, rng):
    ids = [row["id"] for row in world.objects("Unit")]
    if rng.random() < 0.5:
        world.spawn(
            "Unit",
            player=rng.randrange(2),
            x=rng.uniform(0, 100),
            y=rng.uniform(0, 100),
            health=100,
            range=rng.choice([6, 8, 10]),
            attack=rng.choice([1, 2]),
            speed=rng.uniform(0.5, 1.5),
        )
    if ids and rng.random() < 0.3:
        world.destroy("Unit", rng.choice(ids))
    if ids and rng.random() < 0.5:
        world.set_state("Unit", rng.choice(ids), health=rng.randrange(1, 100))


def traffic_churn(world, rng):
    ids = [row["id"] for row in world.objects("Vehicle")]
    if rng.random() < 0.4:
        world.spawn(
            "Vehicle",
            lane=rng.randrange(4),
            position=rng.uniform(0, 1000),
            velocity=rng.uniform(0.5, 1.5),
            max_velocity=rng.uniform(1.5, 2.5),
            lookahead=12.0,
        )
    if ids and rng.random() < 0.3:
        world.destroy("Vehicle", rng.choice(ids))


def no_churn(world, rng):
    pass


WORKLOADS = {
    "rts": (lambda **kw: build_rts_world(15, seed=17, with_physics=False, **kw), rts_churn),
    "traffic": (lambda **kw: build_traffic_world(15, seed=23, **kw), traffic_churn),
    "marketplace": (lambda **kw: build_marketplace_world(10, seed=11, **kw), no_churn),
}


def run_with_wal(name: str, churn_seed: int | None = None, **build_kwargs):
    """Run one world with a WAL; returns (log path, per-tick states, records)."""
    build, churn = WORKLOADS[name]
    world = build(**build_kwargs)
    path = tempfile.mkdtemp(prefix=f"replay-{name}-")
    wal = world.attach_wal(path, checkpoint_interval=CHECKPOINT_INTERVAL)
    rng = random.Random(churn_seed) if churn_seed is not None else None

    def state():
        return {n: t.snapshot() for n, t in wal._tables()}

    states = {-1: state()}
    for _ in range(TICKS):
        if rng is not None:
            churn(world, rng)
        world.tick()
        states[world.tick_count - 1] = state()
    records = [r for r in wal.log.records() if r.get("k") in ("c", "cp")]
    world.detach_wal()
    return path, states, records


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_replay_matches_live_at_every_tick(workload):
    """Time travel: any boundary, not just the newest, reconstructs exactly."""
    path, states, _ = run_with_wal(workload, churn_seed=42)
    for tick in sorted(states):
        replayed = replay_tables(path, tick=tick)
        assert replayed.tick == tick
        assert replayed.tables == states[tick], f"divergence at tick {tick}"


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_rerun_is_bit_stable(workload):
    """The same seeded run twice: identical states *and* identical log
    records (modulo the per-log epoch token, which is random by design)."""
    _, states_a, records_a = run_with_wal(workload, churn_seed=7)
    _, states_b, records_b = run_with_wal(workload, churn_seed=7)
    assert states_a == states_b
    assert records_a == records_b  # commit/checkpoint payloads, in order


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_different_churn_seeds_diverge(workload):
    """Sanity check on the harness itself: the churn must actually churn
    (identical histories would make the determinism tests vacuous)."""
    if WORKLOADS[workload][1] is no_churn:
        pytest.skip("workload runs without out-of-tick churn")
    _, states_a, _ = run_with_wal(workload, churn_seed=1)
    _, states_b, _ = run_with_wal(workload, churn_seed=2)
    assert states_a != states_b


@pytest.mark.parametrize(
    "toggles",
    [
        {"use_mqo": False},
        {"use_incremental": False},
        {"use_batch": False},
        {"use_mqo": False, "use_incremental": False, "use_batch": False},
    ],
    ids=lambda t: "+".join(sorted(k for k, v in t.items() if not v)),
)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_replay_matches_live_under_engine_path_toggles(workload, toggles):
    """The regression the issue calls out: MQO sharing, incremental
    maintenance and batch execution are performance paths — none of them
    may change what gets committed to the log or how it replays."""
    path, states, _ = run_with_wal(workload, churn_seed=5, **toggles)
    for tick in sorted(states):
        replayed = replay_tables(path, tick=tick)
        assert replayed.tables == states[tick], (
            f"{workload} with {toggles}: divergence at tick {tick}"
        )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_recovered_world_continues_identically(workload):
    """Recover at an interior tick, then tick forward: the continuation
    matches the original run tick for tick (the state really is complete —
    counters included, or ids would drift)."""
    build, churn = WORKLOADS[workload]
    path, states, _ = run_with_wal(workload, churn_seed=9)
    mid = TICKS // 2
    world = build()
    wal = world.attach_wal(path)  # recovers to the last durable tick
    try:
        assert {n: t.snapshot() for n, t in wal._tables()} == states[TICKS - 1]
        # Now recover a *fresh* world to the midpoint and replay the same
        # churn from there; spawned ids must not collide with live rows.
        from repro.persistence.replay import recover_world

        world2 = build()
        recover_world(world2, path, tick=mid)
        assert {
            n: world2.catalog.table(n).snapshot() for n in states[mid]
        } == states[mid]
        rng = random.Random(1234)
        churn(world2, rng)  # exercises next_ids/next_rowid restoration
        world2.tick()
    finally:
        world.detach_wal()
