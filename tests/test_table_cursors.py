"""Change-log consumer cursors: the edge cases the subscription service
depends on (capacity eviction mid-stream, destroy() deltas, schema
replacement/invalidation survival)."""

from __future__ import annotations

import pytest

from repro.engine import Catalog, Column, DataType, Schema
from repro.engine.table import Table
from repro.workloads.rts import build_rts_world


def make_table(key: str | None = "id") -> Table:
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
        ]
    )
    return Table("unit", schema, key=key)


class TestCursorBasics:
    def test_poll_nets_insert_update_delete(self):
        table = make_table()
        r0 = table.insert({"id": 0, "x": 1, "y": 1})
        cursor = table.open_cursor()
        assert cursor.poll() == ([], [])

        r1 = table.insert({"id": 1, "x": 2, "y": 2})
        table.update(r0, {"x": 5})
        added, removed = cursor.poll()
        assert sorted(r["id"] for r in added) == [0, 1]
        assert [r["id"] for r in removed] == [0]
        assert [r["x"] for r in removed] == [1]  # pre-mutation copy

        table.delete(r1)
        added, removed = cursor.poll()
        assert added == []
        assert [r["id"] for r in removed] == [1]

    def test_insert_then_delete_nets_to_nothing(self):
        table = make_table()
        cursor = table.open_cursor()
        rid = table.insert({"id": 7, "x": 0, "y": 0})
        table.delete(rid)
        assert cursor.poll() == ([], [])

    def test_noop_update_nets_to_nothing(self):
        table = make_table()
        rid = table.insert({"id": 7, "x": 3, "y": 4})
        cursor = table.open_cursor()
        table.update(rid, {"x": 3})
        assert cursor.poll() == ([], [])

    def test_two_cursors_track_independent_positions(self):
        table = make_table()
        slow, fast = table.open_cursor(), table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        added, _ = fast.poll()
        assert len(added) == 1
        table.insert({"id": 2, "x": 2, "y": 2})
        added, _ = fast.poll()
        assert [r["id"] for r in added] == [2]
        # The slow consumer still sees both, netted, in one poll.
        added, removed = slow.poll()
        assert sorted(r["id"] for r in added) == [1, 2]
        assert removed == []


class TestCapacityEviction:
    def test_eviction_mid_stream_forces_resync(self):
        table = make_table()
        cursor = table.open_cursor(capacity=4)
        for i in range(10):  # far beyond capacity: oldest entries dropped
            table.insert({"id": i, "x": i, "y": i})
        assert cursor.poll() is None
        assert cursor.lost_deltas == 1
        # The cursor re-anchored at the current version: streaming resumes.
        table.insert({"id": 99, "x": 0, "y": 0})
        added, removed = cursor.poll()
        assert [r["id"] for r in added] == [99]
        assert removed == []

    def test_open_cursor_respects_preconfigured_capacity(self):
        table = make_table()
        table.enable_change_log(capacity=8)
        cursor = table.open_cursor()  # must not silently grow the bound
        for i in range(9):
            table.insert({"id": i, "x": i, "y": i})
        assert cursor.poll() is None

    def test_open_cursor_can_grow_capacity(self):
        table = make_table()
        table.enable_change_log(capacity=4)
        cursor = table.open_cursor(capacity=64)
        for i in range(10):
            table.insert({"id": i, "x": i, "y": i})
        added, removed = cursor.poll()
        assert len(added) == 10 and removed == []


class TestDestroyDeltas:
    def test_world_destroy_reaches_cursor_consumers(self):
        world = build_rts_world(10, with_physics=False, use_incremental=False)
        table = world.catalog.table(world.schemas["Unit"].primary_table)
        cursor = table.open_cursor()
        world.destroy("Unit", 3)
        added, removed = cursor.poll()
        assert added == []
        assert [r["id"] for r in removed] == [3]

    def test_destroy_during_tick_sequence(self):
        world = build_rts_world(10, with_physics=False, use_incremental=False)
        table = world.catalog.table(world.schemas["Unit"].primary_table)
        cursor = table.open_cursor()
        world.tick()
        cursor.poll()
        world.destroy("Unit", 5)
        world.tick()
        added, removed = cursor.poll()
        assert 5 not in {r["id"] for r in added}
        assert 5 in {r["id"] for r in removed}


class TestSchemaReplacement:
    def test_cursor_survives_schema_replacement(self):
        table = make_table()
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        new_schema = Schema(
            [
                Column("id", DataType.NUMBER, nullable=False),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
                Column("z", DataType.NUMBER, default=0),
            ]
        )
        table.schema = new_schema
        # Deltas across a schema change would mix row shapes: lost delta.
        assert cursor.poll() is None
        # But the cursor itself survives and resumes streaming.
        table.insert({"id": 2, "x": 2, "y": 2, "z": 9})
        added, removed = cursor.poll()
        assert [r["id"] for r in added] == [2]
        assert removed == []

    def test_cursor_invalidated_by_clear_and_restore(self):
        table = make_table()
        table.insert({"id": 1, "x": 1, "y": 1})
        snapshot = table.snapshot()
        cursor = table.open_cursor()
        table.clear()
        assert cursor.poll() is None
        table.restore(snapshot)
        assert cursor.poll() is None
        table.insert({"id": 2, "x": 0, "y": 0})
        added, _ = cursor.poll()
        assert [r["id"] for r in added] == [2]

    def test_frozen_table_still_pollable(self):
        table = make_table()
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        table.freeze()
        try:
            added, removed = cursor.poll()
            assert len(added) == 1 and removed == []
        finally:
            table.thaw()


class TestCursorIntrospection:
    def test_pending_counts_unpolled_mutations(self):
        table = make_table()
        cursor = table.open_cursor()
        assert cursor.pending == 0
        table.insert({"id": 1, "x": 1, "y": 1})
        table.insert({"id": 2, "x": 2, "y": 2})
        assert cursor.pending == 2
        cursor.poll()
        assert cursor.pending == 0

    def test_poll_counters(self):
        table = make_table()
        cursor = table.open_cursor(capacity=2)
        cursor.poll()
        for i in range(5):
            table.insert({"id": i, "x": 0, "y": 0})
        cursor.poll()
        assert cursor.polls == 2
        assert cursor.lost_deltas == 1

    def test_keyless_table_supports_cursors(self):
        table = make_table(key=None)
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        added, removed = cursor.poll()
        assert len(added) == 1 and removed == []


def test_enable_change_log_never_shrinks():
    table = make_table()
    table.enable_change_log(capacity=100)
    table.enable_change_log(capacity=10)
    cursor = table.open_cursor()
    for i in range(50):
        table.insert({"id": i, "x": 0, "y": 0})
    added, removed = cursor.poll()
    assert len(added) == 50 and removed == []


def test_cursor_poll_returns_shared_added_references():
    """`added` rows are shared references (documented contract): consumers
    that retain them must copy — regression guard for the service's copies."""
    table = make_table()
    cursor = table.open_cursor()
    rid = table.insert({"id": 1, "x": 1, "y": 1})
    added, _ = cursor.poll()
    assert added[0] is table.get(rid)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
