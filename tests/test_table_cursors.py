"""Change-log consumer cursors: the edge cases the subscription service
depends on (capacity eviction mid-stream, destroy() deltas, schema
replacement/invalidation survival)."""

from __future__ import annotations

import pytest

from repro.engine import Catalog, Column, DataType, Schema
from repro.engine.table import Table
from repro.workloads.rts import build_rts_world


def make_table(key: str | None = "id") -> Table:
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
        ]
    )
    return Table("unit", schema, key=key)


class TestCursorBasics:
    def test_poll_nets_insert_update_delete(self):
        table = make_table()
        r0 = table.insert({"id": 0, "x": 1, "y": 1})
        cursor = table.open_cursor()
        assert cursor.poll() == ([], [])

        r1 = table.insert({"id": 1, "x": 2, "y": 2})
        table.update(r0, {"x": 5})
        added, removed = cursor.poll()
        assert sorted(r["id"] for r in added) == [0, 1]
        assert [r["id"] for r in removed] == [0]
        assert [r["x"] for r in removed] == [1]  # pre-mutation copy

        table.delete(r1)
        added, removed = cursor.poll()
        assert added == []
        assert [r["id"] for r in removed] == [1]

    def test_insert_then_delete_nets_to_nothing(self):
        table = make_table()
        cursor = table.open_cursor()
        rid = table.insert({"id": 7, "x": 0, "y": 0})
        table.delete(rid)
        assert cursor.poll() == ([], [])

    def test_noop_update_nets_to_nothing(self):
        table = make_table()
        rid = table.insert({"id": 7, "x": 3, "y": 4})
        cursor = table.open_cursor()
        table.update(rid, {"x": 3})
        assert cursor.poll() == ([], [])

    def test_two_cursors_track_independent_positions(self):
        table = make_table()
        slow, fast = table.open_cursor(), table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        added, _ = fast.poll()
        assert len(added) == 1
        table.insert({"id": 2, "x": 2, "y": 2})
        added, _ = fast.poll()
        assert [r["id"] for r in added] == [2]
        # The slow consumer still sees both, netted, in one poll.
        added, removed = slow.poll()
        assert sorted(r["id"] for r in added) == [1, 2]
        assert removed == []


class TestCapacityEviction:
    def test_eviction_mid_stream_forces_resync(self):
        table = make_table()
        cursor = table.open_cursor(capacity=4)
        for i in range(10):  # far beyond capacity: oldest entries dropped
            table.insert({"id": i, "x": i, "y": i})
        assert cursor.poll() is None
        assert cursor.lost_deltas == 1
        # The cursor re-anchored at the current version: streaming resumes.
        table.insert({"id": 99, "x": 0, "y": 0})
        added, removed = cursor.poll()
        assert [r["id"] for r in added] == [99]
        assert removed == []

    def test_open_cursor_respects_preconfigured_capacity(self):
        table = make_table()
        table.enable_change_log(capacity=8)
        cursor = table.open_cursor()  # must not silently grow the bound
        for i in range(9):
            table.insert({"id": i, "x": i, "y": i})
        assert cursor.poll() is None

    def test_open_cursor_can_grow_capacity(self):
        table = make_table()
        table.enable_change_log(capacity=4)
        cursor = table.open_cursor(capacity=64)
        for i in range(10):
            table.insert({"id": i, "x": i, "y": i})
        added, removed = cursor.poll()
        assert len(added) == 10 and removed == []


class TestDestroyDeltas:
    def test_world_destroy_reaches_cursor_consumers(self):
        world = build_rts_world(10, with_physics=False, use_incremental=False)
        table = world.catalog.table(world.schemas["Unit"].primary_table)
        cursor = table.open_cursor()
        world.destroy("Unit", 3)
        added, removed = cursor.poll()
        assert added == []
        assert [r["id"] for r in removed] == [3]

    def test_destroy_during_tick_sequence(self):
        world = build_rts_world(10, with_physics=False, use_incremental=False)
        table = world.catalog.table(world.schemas["Unit"].primary_table)
        cursor = table.open_cursor()
        world.tick()
        cursor.poll()
        world.destroy("Unit", 5)
        world.tick()
        added, removed = cursor.poll()
        assert 5 not in {r["id"] for r in added}
        assert 5 in {r["id"] for r in removed}


class TestSchemaReplacement:
    def test_cursor_survives_schema_replacement(self):
        table = make_table()
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        new_schema = Schema(
            [
                Column("id", DataType.NUMBER, nullable=False),
                Column("x", DataType.NUMBER),
                Column("y", DataType.NUMBER),
                Column("z", DataType.NUMBER, default=0),
            ]
        )
        table.schema = new_schema
        # Deltas across a schema change would mix row shapes: lost delta.
        assert cursor.poll() is None
        # But the cursor itself survives and resumes streaming.
        table.insert({"id": 2, "x": 2, "y": 2, "z": 9})
        added, removed = cursor.poll()
        assert [r["id"] for r in added] == [2]
        assert removed == []

    def test_cursor_invalidated_by_clear_and_restore(self):
        table = make_table()
        table.insert({"id": 1, "x": 1, "y": 1})
        snapshot = table.snapshot()
        cursor = table.open_cursor()
        table.clear()
        assert cursor.poll() is None
        table.restore(snapshot)
        assert cursor.poll() is None
        table.insert({"id": 2, "x": 0, "y": 0})
        added, _ = cursor.poll()
        assert [r["id"] for r in added] == [2]

    def test_frozen_table_still_pollable(self):
        table = make_table()
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        table.freeze()
        try:
            added, removed = cursor.poll()
            assert len(added) == 1 and removed == []
        finally:
            table.thaw()


class TestCursorIntrospection:
    def test_pending_counts_unpolled_mutations(self):
        table = make_table()
        cursor = table.open_cursor()
        assert cursor.pending == 0
        table.insert({"id": 1, "x": 1, "y": 1})
        table.insert({"id": 2, "x": 2, "y": 2})
        assert cursor.pending == 2
        cursor.poll()
        assert cursor.pending == 0

    def test_poll_counters(self):
        table = make_table()
        cursor = table.open_cursor(capacity=2)
        cursor.poll()
        for i in range(5):
            table.insert({"id": i, "x": 0, "y": 0})
        cursor.poll()
        assert cursor.polls == 2
        assert cursor.lost_deltas == 1

    def test_keyless_table_supports_cursors(self):
        table = make_table(key=None)
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        added, removed = cursor.poll()
        assert len(added) == 1 and removed == []


def test_enable_change_log_never_shrinks():
    table = make_table()
    table.enable_change_log(capacity=100)
    table.enable_change_log(capacity=10)
    cursor = table.open_cursor()
    for i in range(50):
        table.insert({"id": i, "x": 0, "y": 0})
    added, removed = cursor.poll()
    assert len(added) == 50 and removed == []


def test_cursor_poll_returns_shared_added_references():
    """`added` rows are shared references (documented contract): consumers
    that retain them must copy — regression guard for the service's copies."""
    table = make_table()
    cursor = table.open_cursor()
    rid = table.insert({"id": 1, "x": 1, "y": 1})
    added, _ = cursor.poll()
    assert added[0] is table.get(rid)


class TestChangeLogEpochs:
    """Explicit change-log epochs: serialized cursor positions must never
    alias across restarts or bulk rewrites (the WAL-replay regression).

    Before epochs, a cursor position was a bare version number; a replayed
    table whose version counter happened to overlap the old table's could
    silently serve deltas from the wrong history.  Now a position is an
    ``(epoch, version)`` pair and a mismatched epoch is a lost delta.
    """

    def test_epoch_changes_on_clear(self):
        table = make_table()
        before = table.log_epoch
        table.insert({"id": 1, "x": 1, "y": 1})
        assert table.log_epoch == before  # row ops keep the epoch
        table.clear()
        assert table.log_epoch != before  # bulk rewrite mints a new one

    def test_epoch_changes_on_restore_and_schema_replacement(self):
        table = make_table()
        snapshot = table.snapshot()
        e0 = table.log_epoch
        table.restore(snapshot)
        e1 = table.log_epoch
        assert e1 != e0
        table.schema = make_table().schema  # equal columns, new object
        assert table.log_epoch != e1

    def test_changes_since_rejects_stale_epoch(self):
        table = make_table()
        table.enable_change_log()
        stale_epoch = table.log_epoch
        version = table.version
        table.insert({"id": 1, "x": 1, "y": 1})
        assert table.changes_since(version, stale_epoch) is not None
        table.clear()  # new epoch: the old position means nothing now
        assert table.changes_since(version, stale_epoch) is None

    def test_seek_across_restart_never_aliases(self):
        """The aliasing scenario itself: same version number, different
        history.  A position serialized before a restart must force a lost
        delta on the rebuilt table, not replay unrelated changes."""
        table = make_table()
        table.insert({"id": 1, "x": 1, "y": 1})
        cursor = table.open_cursor()
        cursor.poll()
        position = cursor.position  # what a node would persist

        # "Restart": a fresh table replays the same history, landing on the
        # same version number by construction.
        rebuilt = make_table()
        rebuilt.insert({"id": 1, "x": 999, "y": 999})  # different content!
        assert rebuilt.version == table.version

        resumed = rebuilt.open_cursor()
        resumed.seek(position)
        rebuilt.insert({"id": 2, "x": 2, "y": 2})
        # Version arithmetic alone would hand over a plausible-looking
        # delta; the epoch check correctly reports the position as lost.
        assert resumed.poll() is None
        assert resumed.lost_deltas == 1
        # After the lost-delta resync the cursor streams the new history.
        rebuilt.insert({"id": 3, "x": 3, "y": 3})
        added, removed = resumed.poll()
        assert [r["id"] for r in added] == [3] and removed == []

    def test_position_round_trips_on_same_table(self):
        table = make_table()
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        cursor.poll()
        position = cursor.position
        table.insert({"id": 2, "x": 2, "y": 2})
        fresh = table.open_cursor()
        fresh.seek(position)  # same epoch: resumes exactly where we left off
        added, removed = fresh.poll()
        assert [r["id"] for r in added] == [2] and removed == []

    def test_pending_is_none_on_stale_epoch(self):
        table = make_table()
        cursor = table.open_cursor()
        table.insert({"id": 1, "x": 1, "y": 1})
        table.clear()
        assert cursor.pending is None


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
