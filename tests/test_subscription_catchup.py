"""Restarted-node catch-up: subscriptions resume from log offsets.

PR 5's subscription service streams deltas to connected clients; this
suite proves the PR 6 extension: after the serving node crashes and
recovers from its delta log, a returning client presents the last tick it
applied and receives one netted catch-up :class:`Delta` — not a full
snapshot — that brings its client-side :class:`ResultSet` to exactly the
state a freshly subscribed client would see.  When the log cannot serve
the offset (trimmed history, drifted tables) the client gets a
:class:`Snapshot` with reason ``"resync:offset-too-old"`` instead: stale,
never wrong.
"""

from __future__ import annotations

import dataclasses
import tempfile

import pytest

from repro.engine.expressions import BinaryOp, ColumnRef, Literal
from repro.service.protocol import Delta, ResultSet, Snapshot
from repro.workloads.rts import build_rts_world

TICKS_BEFORE_CRASH = 6
TICKS_MISSED = 4


def build_world():
    return build_rts_world(20, seed=17, with_physics=False)


def rows_key(rows):
    return sorted(sorted(r.items()) for r in rows)


def fresh_snapshot_rows(manager, table="Unit", predicate=None):
    session = manager.connect("fresh")
    manager.subscribe_table(session, table, predicate)
    snapshot = session.take()[0]
    assert isinstance(snapshot, Snapshot)
    return list(snapshot.rows)


class _Client:
    """A client that survives the server restart: keeps its ResultSet."""

    def __init__(self, manager, table="Unit", predicate=None):
        self.table = table
        self.predicate = predicate
        self.session = manager.connect("client")
        self.sub_id = manager.subscribe_table(self.session, table, predicate)
        self.results = ResultSet()
        self.drain()

    def drain(self):
        for message in self.session.take():
            self.results.apply(message)

    def resume(self, manager):
        """Reconnect against a restarted manager; returns the messages."""
        self.session = manager.connect("client")
        new_id = manager.resume_table_subscription(
            self.session, self.table, self.predicate,
            last_seen_tick=self.results.last_tick,
        )
        messages = self.session.take()
        for message in messages:
            # The restarted node assigns a new subscription id; the client
            # rebinds its existing result set to it.
            self.results.apply(dataclasses.replace(message, subscription_id=self.sub_id))
        self.sub_id = new_id
        return messages


def crash_and_restart(path, **wal_kwargs):
    """Build a fresh world, recover it from *path*, return its manager."""
    world = build_world()
    world.attach_wal(path, **wal_kwargs)
    return world, world.subscriptions


def test_catchup_delta_matches_fresh_snapshot():
    path = tempfile.mkdtemp(prefix="catchup-")
    world = build_world()
    world.attach_wal(path, checkpoint_interval=4)
    client = _Client(world.subscriptions)
    for _ in range(TICKS_BEFORE_CRASH):
        world.tick()
    client.drain()
    assert client.results.last_tick == TICKS_BEFORE_CRASH - 1

    # The node keeps ticking while the client is disconnected, then dies.
    for _ in range(TICKS_MISSED):
        world.tick()
    world.detach_wal()

    world2, manager = crash_and_restart(path)
    assert world2.tick_count == world.tick_count  # recovery caught up
    messages = client.resume(manager)
    assert [type(m) for m in messages] == [Delta]
    assert rows_key(client.results.rows()) == rows_key(fresh_snapshot_rows(manager))
    # And it really was a delta: far fewer rows shipped than a snapshot.
    delta = messages[0]
    assert delta.tick == world.tick_count - 1
    assert client.results.last_tick == delta.tick


def test_catchup_is_cheaper_than_snapshot_when_little_changed():
    """The point of offsets: a nearly-current client gets a tiny delta."""
    path = tempfile.mkdtemp(prefix="cheap-")
    world = build_world()
    world.attach_wal(path, checkpoint_interval=100)
    client = _Client(world.subscriptions)
    for _ in range(8):
        world.tick()
    client.drain()
    world.set_state("Unit", 0, health=1)  # one stray change while offline
    world.tick()
    world.detach_wal()

    _, manager = crash_and_restart(path)
    (delta,) = client.resume(manager)
    assert isinstance(delta, Delta)
    snapshot_size = len(fresh_snapshot_rows(manager))
    assert len(delta) < snapshot_size
    assert rows_key(client.results.rows()) == rows_key(fresh_snapshot_rows(manager))


def test_current_client_gets_empty_delta():
    path = tempfile.mkdtemp(prefix="empty-")
    world = build_world()
    world.attach_wal(path)
    client = _Client(world.subscriptions)
    for _ in range(3):
        world.tick()
    client.drain()
    world.detach_wal()

    _, manager = crash_and_restart(path)
    (message,) = client.resume(manager)
    assert isinstance(message, Delta)
    assert message.added == () and message.removed == ()
    assert rows_key(client.results.rows()) == rows_key(fresh_snapshot_rows(manager))


def test_offset_too_old_falls_back_to_snapshot_resync():
    """Trimmed history: the log cannot reach back to the client's offset,
    so the client is re-anchored with a full snapshot, reason-tagged."""
    path = tempfile.mkdtemp(prefix="tooold-")
    world = build_world()
    # Tiny segments + auto_trim: checkpoints rapidly obsolete old segments.
    world.attach_wal(path, checkpoint_interval=3, segment_max_bytes=1024, auto_trim=True)
    client = _Client(world.subscriptions)
    client.drain()
    early_tick = client.results.last_tick
    for _ in range(12):
        world.tick()
    world.detach_wal()

    _, manager = crash_and_restart(
        path, checkpoint_interval=3, segment_max_bytes=1024, auto_trim=True
    )
    client.results.last_tick = early_tick  # simulate: client never drained
    (message,) = client.resume(manager)
    assert isinstance(message, Snapshot)
    assert message.reason == "resync:offset-too-old"
    assert rows_key(client.results.rows()) == rows_key(fresh_snapshot_rows(manager))


def test_predicate_filtered_catchup():
    """Catch-up deltas respect the subscription's filter, exactly like the
    live stream does."""
    predicate = BinaryOp("==", ColumnRef("player"), Literal(0))
    path = tempfile.mkdtemp(prefix="pred-")
    world = build_world()
    world.attach_wal(path, checkpoint_interval=4)
    client = _Client(world.subscriptions, predicate=predicate)
    for _ in range(TICKS_BEFORE_CRASH):
        world.tick()
    client.drain()
    for _ in range(TICKS_MISSED):
        world.tick()
    world.detach_wal()

    _, manager = crash_and_restart(path)
    messages = client.resume(manager)
    assert [type(m) for m in messages] == [Delta]
    for row in client.results.rows():
        assert row["player"] == 0
    assert rows_key(client.results.rows()) == rows_key(
        fresh_snapshot_rows(manager, predicate=predicate)
    )


def test_catchup_then_live_stream_continues():
    """After the catch-up delta the subscription is a normal live one."""
    path = tempfile.mkdtemp(prefix="cont-")
    world = build_world()
    world.attach_wal(path, checkpoint_interval=4)
    client = _Client(world.subscriptions)
    for _ in range(4):
        world.tick()
    client.drain()
    world.detach_wal()

    world2, manager = crash_and_restart(path)
    client.resume(manager)
    for _ in range(3):
        world2.tick()
    client.drain()
    assert rows_key(client.results.rows()) == rows_key(fresh_snapshot_rows(manager))
    assert client.results.last_tick == world2.tick_count - 1


def test_resume_without_any_wal_serves_plain_snapshot():
    """A manager with no log at all degrades to the PR 5 behavior."""
    world = build_world()
    manager = world.subscriptions
    session = manager.connect("client")
    manager.resume_table_subscription(session, "Unit", last_seen_tick=3)
    (message,) = session.take()
    assert isinstance(message, Snapshot)
    assert message.reason == "subscribe"


def test_drifted_table_forces_snapshot():
    """Mutations after the last commit (e.g. out-of-tick set_state on the
    restarted node) make offset catch-up unsound: delta through the last
    commit plus a drifted live table would desynchronize the client."""
    path = tempfile.mkdtemp(prefix="drift-")
    world = build_world()
    world.attach_wal(path, checkpoint_interval=4)
    client = _Client(world.subscriptions)
    for _ in range(4):
        world.tick()
    client.drain()
    world.detach_wal()

    world2, manager = crash_and_restart(path)
    world2.set_state("Unit", 1, health=7)  # drift: not yet committed
    (message,) = client.resume(manager)
    assert isinstance(message, Snapshot)
    assert message.reason == "resync:offset-too-old"
    assert rows_key(client.results.rows()) == rows_key(fresh_snapshot_rows(manager))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
