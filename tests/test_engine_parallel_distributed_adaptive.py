"""Tests for the parallel executor, adaptive optimizer and cluster simulation."""

from __future__ import annotations

import pytest

from repro.engine import (
    Aggregate,
    AggregateSpec,
    AdaptiveQueryManager,
    Catalog,
    Column,
    DataType,
    Executor,
    ExecutionFeedback,
    Join,
    PartitionedExecutor,
    Schema,
    Select,
    TableScan,
    and_all,
    col,
    lit,
)
from repro.engine.parallel import partition_plan
from repro.workloads import build_rts_world
from repro.workloads.traffic import build_traffic_world
from repro.engine.distributed import (
    Cluster,
    DistributedRangeIndex,
    HashPartitioner,
    NetworkModel,
    SpatialPartitioner,
)
from repro.workloads.state_switching import load_state, make_state_catalog


def fig2_plan():
    join = Join(TableScan("unit", alias="self"), TableScan("unit", alias="u"), None, how="cross")
    predicate = and_all(
        [
            col("u.x").ge(col("self.x") - col("self.range")),
            col("u.x").le(col("self.x") + col("self.range")),
            col("u.y").ge(col("self.y") - col("self.range")),
            col("u.y").le(col("self.y") + col("self.range")),
        ]
    )
    return Aggregate(Select(join, predicate), ["self.id"], [AggregateSpec("cnt", "count")])


class TestPartitionedExecutor:
    def test_partitioned_results_match_serial(self, unit_catalog):
        serial = Executor(unit_catalog).execute(fig2_plan()).rows
        parallel = PartitionedExecutor(unit_catalog, n_workers=4).execute(
            fig2_plan(), "unit", "id", partition_only_scan_alias="self"
        )
        assert {(r["self.id"], r["cnt"]) for r in parallel.rows} == {
            (r["self.id"], r["cnt"]) for r in serial
        }

    def test_partition_counts_cover_all_objects(self, unit_catalog):
        parallel = PartitionedExecutor(unit_catalog, n_workers=3, use_threads=False).execute(
            fig2_plan(), "unit", "id", partition_only_scan_alias="self"
        )
        assert len(parallel.rows) == 100
        assert len(parallel.per_partition_seconds) == 3
        assert parallel.simulated_speedup >= 1.0
        assert parallel.simulated_serial_seconds >= parallel.simulated_parallel_seconds

    def test_invalid_worker_count(self, unit_catalog):
        with pytest.raises(Exception):
            PartitionedExecutor(unit_catalog, n_workers=0)


def _normalized(rows):
    # Sort by repr: row values may mix None with numbers, which plain
    # tuple comparison cannot order.
    return sorted((tuple(sorted(r.items())) for r in rows), key=repr)


class TestPartitionKeyTotality:
    """Regression: partitioning used ``key % n == i``, which silently drops
    rows with NULL keys (``None % n`` is ``None``, falsy in every
    partition) and non-integer keys (``2.5 % 4`` equals no integer) from
    parallel results while serial execution keeps them.  Routing is now a
    total hash function (NULLs to partition 0)."""

    def _catalog(self) -> Catalog:
        catalog = Catalog()
        schema = Schema([Column("k", DataType.NUMBER), Column("v", DataType.NUMBER)])
        table = catalog.create_table("data", schema)
        table.insert_many(
            [
                {"k": None, "v": 1},
                {"k": None, "v": 2},
                {"k": 2.5, "v": 3},
                {"k": 0.5, "v": 4},
                {"k": -3, "v": 5},
            ]
            + [{"k": i, "v": 100 + i} for i in range(20)]
        )
        return catalog

    def test_null_and_float_keys_survive_parallel_execution(self):
        catalog = self._catalog()
        plan = Select(TableScan("data"), col("v").gt(lit(0)))
        serial = Executor(catalog).execute(plan).rows
        for n_workers in (2, 3, 4):
            parallel = PartitionedExecutor(catalog, n_workers=n_workers).execute(
                plan, "data", "k"
            )
            assert _normalized(parallel.rows) == _normalized(serial)
        # The dropped rows were exactly the NULL/float-keyed ones.
        assert {r["v"] for r in serial} >= {1, 2, 3, 4, 5}

    def test_partition_plan_covers_every_row_exactly_once(self):
        catalog = self._catalog()
        total = len(catalog.table("data"))
        partitions = partition_plan(TableScan("data"), "data", "k", 4)
        executor = Executor(catalog)
        rows = []
        for partition in partitions:
            rows.extend(executor.execute(partition, cache=False).rows)
        assert len(rows) == total
        assert _normalized(rows) == _normalized(catalog.table("data").scan())


class TestParallelWorldEquivalence:
    """PartitionedExecutor must agree with serial execution on every
    compiled effect query of the rts and traffic workloads (the batch and
    incremental paths already have whole-world equivalence coverage)."""

    def _assert_queries_equivalent(self, world, outer_table: str) -> None:
        serial = Executor(world.catalog, use_incremental=False)
        parallel = PartitionedExecutor(world.catalog, n_workers=3)
        checked = 0
        for script_name in world.enabled_scripts():
            compiled = world.compiled.script(script_name)
            script = world.program.script_named(script_name)
            for segment in sorted(compiled.queries_by_segment):
                for query in compiled.queries_by_segment[segment]:
                    serial_rows = serial.execute(query.plan, cache=False).rows
                    result = parallel.execute(
                        query.plan,
                        outer_table,
                        "id",
                        partition_only_scan_alias=script.self_name,
                    )
                    assert _normalized(result.rows) == _normalized(serial_rows), (
                        f"{script_name} segment {segment}"
                    )
                    checked += 1
        assert checked > 0

    def test_rts_world_parallel_matches_serial(self):
        world = build_rts_world(80, seed=5)
        world.run(2)  # move units so the state is not the spawn layout
        self._assert_queries_equivalent(world, "Unit")

    def test_traffic_world_parallel_matches_serial(self):
        world = build_traffic_world(90, seed=9)
        world.run(2)
        self._assert_queries_equivalent(world, "Vehicle")


class TestAdaptiveOptimizer:
    def test_compiles_per_state_and_switches_on_hint(self):
        catalog = make_state_catalog()
        load_state(catalog, "exploring", 200)
        manager = AdaptiveQueryManager(catalog, fig2_plan())
        manager.compile_for_state("exploring")
        load_state(catalog, "fighting", 200)
        manager.compile_for_state("fighting")
        assert set(manager.states) == {"exploring", "fighting"}
        manager.switch_to("exploring")
        state = manager.record_execution(ExecutionFeedback(rows=200, runtime=0.01, state_hint="fighting"))
        assert state == "fighting"
        assert manager.switch_count >= 1

    def test_drift_triggers_replan(self):
        catalog = make_state_catalog()
        load_state(catalog, "exploring", 150)
        manager = AdaptiveQueryManager(catalog, fig2_plan(), switch_cooldown=1)
        manager.compile_for_state("exploring")
        replans_before = manager.replan_count
        # Observed cardinality wildly different from the estimate -> replan.
        estimated = manager.current_plan().estimated.cardinality
        manager.record_execution(ExecutionFeedback(rows=int(estimated * 50) + 100, runtime=0.01))
        assert manager.replan_count > replans_before

    def test_report_structure(self):
        catalog = make_state_catalog()
        load_state(catalog, "exploring", 50)
        manager = AdaptiveQueryManager(catalog, fig2_plan())
        manager.compile_for_state("exploring")
        report = manager.report()
        assert report["current_state"] == "exploring"
        assert "exploring" in report["states"]

    def test_unknown_state_switch_raises(self):
        catalog = make_state_catalog()
        load_state(catalog, "exploring", 50)
        manager = AdaptiveQueryManager(catalog, fig2_plan())
        manager.compile_for_state("exploring")
        with pytest.raises(KeyError):
            manager.switch_to("bogus")


class TestNetworkModel:
    def test_latency_and_bandwidth_accounting(self):
        network = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1e6)
        cost = network.send(1000)
        assert cost == pytest.approx(0.002)
        assert network.stats.messages == 1
        network.send_rows([{"a": 1}] * 10)
        assert network.stats.bytes_sent == 1000 + 640
        network.reset()
        assert network.stats.messages == 0

    def test_broadcast_pays_latency_once(self):
        network = NetworkModel(latency_s=0.01, bandwidth_bytes_per_s=None)
        cost = network.broadcast(100, n_receivers=8)
        assert cost == pytest.approx(0.01)
        assert network.stats.messages == 8


class TestPartitioners:
    def test_spatial_partitioner_prunes_range_queries(self):
        partitioner = SpatialPartitioner("x", n_partitions=8, world_min=0, world_max=800)
        assert partitioner.partition_of({"x": 50}) == 0
        assert partitioner.partition_of({"x": 799}) == 7
        assert partitioner.partitions_for_range([(100, 250)]) == [1, 2]
        assert partitioner.partitions_for_range([(None, None)]) == list(range(8))

    def test_hash_partitioner_cannot_prune(self):
        partitioner = HashPartitioner("id", n_partitions=4)
        assert partitioner.partitions_for_range([(0, 10)]) == [0, 1, 2, 3]
        assert 0 <= partitioner.partition_of({"id": 17}) < 4


class TestCluster:
    def unit_rows(self, n=120):
        import random

        rng = random.Random(9)
        return [
            {"id": i, "x": rng.uniform(0, 800), "y": rng.uniform(0, 800), "range": 10.0}
            for i in range(n)
        ]

    def test_spatial_cluster_matches_single_node(self):
        rows = self.unit_rows()
        expected = sum(
            1
            for a in rows
            for b in rows
            if abs(a["x"] - b["x"]) <= a["range"] and abs(a["y"] - b["y"]) <= a["range"]
        )

        def per_pair(a, b):
            return {"id": a["id"]}

        for n_nodes in (1, 4):
            cluster = Cluster(
                n_nodes,
                SpatialPartitioner("x", n_partitions=n_nodes, world_max=800),
                NetworkModel(latency_s=0.0001),
            )
            cluster.load(rows)
            result = cluster.run_range_query_tick(["x", "y"], "range", per_pair)
            assert len(result.results) == expected

    def test_latency_increases_simulated_tick_time(self):
        rows = self.unit_rows(60)

        def per_pair(a, b):
            return {"id": a["id"]}

        times = []
        for latency in (0.0001, 0.05):
            cluster = Cluster(
                4, SpatialPartitioner("x", n_partitions=4, world_max=800), NetworkModel(latency)
            )
            cluster.load(rows)
            result = cluster.run_range_query_tick(["x", "y"], "range", per_pair)
            times.append(result.simulated_tick_seconds)
        assert times[1] > times[0]

    def test_distributed_range_index_partitions_memory(self):
        import random

        rng = random.Random(4)
        points = [((rng.uniform(0, 800), rng.uniform(0, 800)), i) for i in range(400)]
        partitioner = SpatialPartitioner("x", n_partitions=4, world_max=800)
        index = DistributedRangeIndex(["x", "y"], partitioner)
        index.build(points)
        assert sum(index.shard_sizes()) == 400
        assert index.max_shard_bytes() < index.total_bytes()
        # A narrow query along x touches a strict subset of the shards.
        assert len(index.shards_for_query([(100, 150), (0, 800)])) < 4
        got = sorted(index.range_search([(100, 300), (100, 300)]))
        expected = sorted(
            i for (x, y), i in points if 100 <= x <= 300 and 100 <= y <= 300
        )
        assert got == expected
