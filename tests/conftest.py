"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.engine import Catalog, Column, DataType, Schema


@pytest.fixture
def unit_catalog() -> Catalog:
    """A catalog with a populated ``unit`` table of 100 units on a 100x100 map."""
    catalog = Catalog()
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("player", DataType.NUMBER),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
            Column("health", DataType.NUMBER),
            Column("range", DataType.NUMBER),
        ]
    )
    table = catalog.create_table("unit", schema, key="id")
    rng = random.Random(42)
    for i in range(100):
        table.insert(
            {
                "id": i,
                "player": i % 4,
                "x": rng.uniform(0, 100),
                "y": rng.uniform(0, 100),
                "health": rng.randint(1, 100),
                "range": 10,
            }
        )
    return catalog


SIMPLE_GAME = """
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number health = 100;
    number range = 5;
  effects:
    number damage : sum;
    number vx : avg;
    number vy : avg;
}

script brawl(Unit self) {
  accum number hits with sum over Unit u from UNIT {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range && u.player != player) {
      hits <- 1;
    }
  } in {
    if (hits > 0) { damage <- hits; }
  }
}
"""


@pytest.fixture
def simple_game_source() -> str:
    return SIMPLE_GAME
