"""Pins the contracts of the cluster partitioners and the network model.

These utilities now back the real sharded engine (``repro.shard``) as
well as the E7 simulation, so their edge-case behaviour — out-of-bounds
values, degenerate worlds, range pruning with inverted bounds, and the
exact byte/message accounting — is locked down here.
"""

from __future__ import annotations

import pytest

from repro.engine.distributed import HashPartitioner, NetworkModel, SpatialPartitioner
from repro.engine.distributed.network import NetworkStats


class TestSpatialPartitioner:
    def test_values_outside_bounds_clamp_to_edge_strips(self):
        partitioner = SpatialPartitioner("x", n_partitions=4, world_max=100.0)
        assert partitioner.partition_for_value(-25.0) == 0
        assert partitioner.partition_for_value(100.0) == 3  # == world_max
        assert partitioner.partition_for_value(1e12) == 3
        assert partitioner.partition_of({"x": -1}) == 0

    def test_zero_width_world_degrades_to_single_partition(self):
        partitioner = SpatialPartitioner(
            "x", n_partitions=4, world_min=50.0, world_max=50.0
        )
        assert partitioner.strip_width == 0
        assert partitioner.partition_for_value(50.0) == 0
        assert partitioner.partition_for_value(-10.0) == 0
        assert partitioner.partitions_for_range([(0.0, 100.0)]) == [0]

    def test_single_partition_owns_everything(self):
        partitioner = SpatialPartitioner("x", n_partitions=1, world_max=100.0)
        for value in (-5.0, 0.0, 42.0, 100.0, 5000.0):
            assert partitioner.partition_for_value(value) == 0
        assert partitioner.partitions_for_range([(10.0, 90.0)]) == [0]

    def test_partitions_for_range_handles_inverted_and_open_bounds(self):
        partitioner = SpatialPartitioner("x", n_partitions=4, world_max=100.0)
        # Inverted bounds still yield the covering strip set, not an
        # empty range (callers normalise direction, not order).
        assert partitioner.partitions_for_range([(80.0, 20.0)]) == [0, 1, 2, 3]
        assert partitioner.partitions_for_range([(60.0, 60.0)]) == [2]
        # None = unbounded on that side.
        assert partitioner.partitions_for_range([(None, 30.0)]) == [0, 1]
        assert partitioner.partitions_for_range([(70.0, None)]) == [2, 3]
        assert partitioner.partitions_for_range([(None, None)]) == [0, 1, 2, 3]

    def test_only_the_first_axis_prunes(self):
        partitioner = SpatialPartitioner("x", n_partitions=4, world_max=100.0)
        # Extra (y, ...) bound pairs are ignored by strip partitioning.
        assert partitioner.partitions_for_range(
            [(10.0, 20.0), (0.0, 100.0)]
        ) == [0]


class TestHashPartitioner:
    def test_partition_is_stable_and_in_range(self):
        partitioner = HashPartitioner("id", n_partitions=4)
        for key in (0, 1, "abc", 10**12):
            first = partitioner.partition_of({"id": key})
            assert 0 <= first < 4
            assert partitioner.partition_of({"id": key}) == first

    def test_range_queries_cannot_prune(self):
        partitioner = HashPartitioner("id", n_partitions=3)
        assert partitioner.partitions_for_range([(0, 10)]) == [0, 1, 2]
        assert partitioner.partitions_for_range([(10, 0)]) == [0, 1, 2]

    def test_single_partition_cluster(self):
        partitioner = HashPartitioner("id", n_partitions=1)
        assert partitioner.partition_of({"id": 999}) == 0
        assert partitioner.partitions_for_range([(None, None)]) == [0]


class TestNetworkModel:
    def test_send_accounts_one_message_and_its_bytes(self):
        network = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1000.0)
        cost = network.send(500)
        assert cost == pytest.approx(0.001 + 0.5)
        assert network.stats.messages == 1
        assert network.stats.bytes_sent == 500
        assert network.stats.simulated_seconds == pytest.approx(cost)

    def test_send_rows_charges_at_least_one_row(self):
        network = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=None)
        network.send_rows([])
        network.send_rows([{"id": 1}, {"id": 2}])
        assert network.stats.messages == 2
        # Empty batches still cost one row's framing; others are 64 B/row.
        assert network.stats.bytes_sent == 1 * 64 + 2 * 64

    def test_broadcast_counts_per_receiver_bytes_but_pays_latency_once(self):
        network = NetworkModel(latency_s=0.002, bandwidth_bytes_per_s=None)
        cost = network.broadcast(100, n_receivers=5)
        # Fan-out is n messages and n copies of the payload on the wire...
        assert network.stats.messages == 5
        assert network.stats.bytes_sent == 500
        # ...but delivery is parallel: simulated time is one message's cost.
        assert cost == pytest.approx(0.002)
        assert network.stats.simulated_seconds == pytest.approx(0.002)
        # Equivalent per-send traffic costs the same bytes, 5x the time.
        serial = NetworkModel(latency_s=0.002, bandwidth_bytes_per_s=None)
        for _ in range(5):
            serial.send(100)
        assert serial.stats.bytes_sent == network.stats.bytes_sent
        assert serial.stats.simulated_seconds == pytest.approx(5 * 0.002)

    def test_unmetered_bandwidth_skips_transfer_time(self):
        network = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=None)
        assert network.message_cost(10**9) == pytest.approx(0.001)

    def test_reset_zeroes_every_counter(self):
        network = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1e6)
        network.send(100)
        network.broadcast(50, n_receivers=3)
        network.reset()
        assert network.stats == NetworkStats()
        assert network.stats.messages == 0
        assert network.stats.bytes_sent == 0
        assert network.stats.simulated_seconds == 0.0
