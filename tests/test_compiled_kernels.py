"""Plan-to-kernel compilation: equivalence, caching, and invalidation.

The compiler's contract (see :mod:`repro.engine.compile.kernels`) is that
a fused kernel produces *exactly* the rows, in exactly the order, of the
interpreted operators it replaces — so every test here compares compiled
against interpreted execution with plain ``==`` on the row lists, never
with sorted/normalized views.  Whole-world runs additionally pin the
stronger property the ``fastest`` preset relies on: kernel compilation is
a pure performance path and may not change any post-tick state, any
combined effect, or anything the WAL commits.
"""

from __future__ import annotations

import random

import pytest
from test_replay_determinism import WORKLOADS as REPLAY_WORKLOADS
from test_replay_determinism import run_with_wal

from repro.engine import EngineConfig
from repro.engine.algebra import Aggregate, AggregateSpec, Join, Project, Select, TableScan
from repro.engine.executor import Executor, TickQuerySpec
from repro.engine.expressions import and_all, col, lit
from repro.engine.indexes import GridIndex
from repro.engine.compile import KernelOp
from repro.persistence.replay import replay_tables

INTERP = EngineConfig(use_incremental=False)
COMPILED = INTERP.replace(use_compiled=True)


# ------------------------------------------------------------------------------------
# plan shapes over the shared unit catalog
# ------------------------------------------------------------------------------------


def filter_aggregate_plan() -> Aggregate:
    return Aggregate(
        Select(
            TableScan("unit"),
            col("x").gt(lit(40.0)).and_(col("health").gt(lit(10.0))),
        ),
        ["player"],
        [
            AggregateSpec("n", "count"),
            AggregateSpec("total_hp", "sum", col("health")),
        ],
    )


def multi_fragment_aggregate_plan() -> Aggregate:
    """Aggregates over *different* arguments: exercises the state-slot
    fallback instead of the single-gather fast path."""
    return Aggregate(
        Select(TableScan("unit"), col("health").gt(lit(5.0))),
        ["player"],
        [
            AggregateSpec("hp", "sum", col("health")),
            AggregateSpec("west", "min", col("x")),
            AggregateSpec("north", "max", col("y")),
            AggregateSpec("mean_hp", "avg", col("health")),
        ],
    )


def project_plan() -> Project:
    return Project(
        Select(TableScan("unit", "u"), col("u.health").gt(lit(50.0))),
        {"id": col("u.id"), "scaled": col("u.x") * lit(2.0)},
    )


def equi_join_plan() -> Select:
    join = Join(
        TableScan("unit", alias="a"),
        TableScan("unit", alias="b"),
        col("a.player").eq(col("b.player")),
    )
    return Select(join, col("a.health").gt(col("b.health")))


def band_join_plan() -> Select:
    join = Join(
        TableScan("unit", alias="self"),
        TableScan("unit", alias="u"),
        None,
        how="cross",
    )
    return Select(
        join,
        and_all(
            [
                col("u.x").ge(col("self.x") - col("self.range")),
                col("u.x").le(col("self.x") + col("self.range")),
                col("u.y").ge(col("self.y") - col("self.range")),
                col("u.y").le(col("self.y") + col("self.range")),
            ]
        ),
    )


ALL_PLANS = {
    "filter_aggregate": filter_aggregate_plan,
    "multi_fragment_aggregate": multi_fragment_aggregate_plan,
    "project": project_plan,
    "equi_join": equi_join_plan,
    "band_join": band_join_plan,
}


# ------------------------------------------------------------------------------------
# executor-level exact equivalence
# ------------------------------------------------------------------------------------


class TestExactEquivalence:
    @pytest.mark.parametrize("shape", sorted(ALL_PLANS))
    def test_rows_and_order_match_interpreted(self, unit_catalog, shape):
        plan = ALL_PLANS[shape]()
        interp = Executor(unit_catalog, INTERP)
        compiled = Executor(unit_catalog, COMPILED)
        expected = interp.execute(plan)
        got = compiled.execute(plan)
        assert got.rows == expected.rows  # identical rows, identical order
        report = compiled.kernel_report()
        assert report["compiled"] >= 1, f"{shape} was not compiled: {report}"
        assert report["declined"] == 0, report

    @pytest.mark.parametrize("shape", sorted(ALL_PLANS))
    def test_equivalence_survives_churn(self, unit_catalog, shape):
        plan = ALL_PLANS[shape]()
        interp = Executor(unit_catalog, INTERP)
        compiled = Executor(unit_catalog, COMPILED)
        table = unit_catalog.table("unit")
        rng = random.Random(9)
        for tick in range(6):
            rowids = list(table.row_ids())
            for rowid in rng.sample(rowids, 10):
                table.update(
                    rowid,
                    {"x": rng.uniform(0, 100), "health": rng.uniform(0, 100)},
                )
            if tick % 2 == 0:
                table.insert(
                    {
                        "id": 1000 + tick,
                        "player": tick % 4,
                        "x": rng.uniform(0, 100),
                        "y": rng.uniform(0, 100),
                        "health": rng.randint(1, 100),
                        "range": 10,
                    }
                )
                table.delete(rng.choice(rowids))
            assert compiled.execute(plan).rows == interp.execute(plan).rows, (
                f"{shape} diverged at tick {tick}"
            )


# ------------------------------------------------------------------------------------
# plan shape and choice equivalence
# ------------------------------------------------------------------------------------


def _batch_ops(physical):
    """All batch operators reachable through the plan's bridge boundaries."""
    from repro.engine.operators import BatchBridgeOp

    def walk_batch(op):
        yield op
        for child in op.children:
            yield from walk_batch(child)

    for op in physical.walk():
        if isinstance(op, BatchBridgeOp):
            yield from walk_batch(op.batch_root)


class TestPlanChoice:
    def test_band_join_lowers_to_kernel(self, unit_catalog):
        executor = Executor(unit_catalog, COMPILED)
        physical = executor.prepare(band_join_plan(), cache=False).physical
        assert any(isinstance(op, KernelOp) for op in _batch_ops(physical))

    def test_kernel_declines_when_planner_would_index(self, unit_catalog):
        """Plan *choice* equivalence: with a band-covering index present the
        interpreted planner probes it, so the compiler must stand aside."""
        unit_catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        executor = Executor(unit_catalog, COMPILED)
        physical = executor.prepare(band_join_plan(), cache=False).physical
        assert not any(isinstance(op, KernelOp) for op in _batch_ops(physical))
        interp = Executor(unit_catalog, INTERP)
        plan = band_join_plan()
        assert executor.execute(plan).rows == interp.execute(plan).rows


# ------------------------------------------------------------------------------------
# cache lifecycle: fingerprint hits and shape-change invalidation
# ------------------------------------------------------------------------------------


class TestKernelCache:
    def test_fingerprint_cache_hit_across_replans(self, unit_catalog):
        executor = Executor(unit_catalog, COMPILED)
        plan = filter_aggregate_plan()
        executor.execute(plan)
        assert executor.kernel_report()["compiled"] == 1
        executor.prepare(filter_aggregate_plan(), cache=False)  # same fingerprint
        report = executor.kernel_report()
        assert report["compiled"] == 1
        assert report["hits"] >= 1

    def test_invalidate_plans_drops_kernels(self, unit_catalog):
        executor = Executor(unit_catalog, COMPILED)
        plan = filter_aggregate_plan()
        executor.execute(plan)
        executor.invalidate_plans()
        assert executor.kernel_report()["cached"] == 0
        executor.execute(plan)
        assert executor.kernel_report()["compiled"] == 2  # recompiled, not served stale

    def test_full_invalidate_drops_kernels(self, unit_catalog):
        executor = Executor(unit_catalog, COMPILED)
        executor.execute(filter_aggregate_plan())
        executor.invalidate()
        assert executor.kernel_report()["cached"] == 0

    def test_catalog_shape_change_mid_run_stays_correct(self, unit_catalog):
        """Regression (satellite 3): after the catalog shape changes
        mid-run, ``invalidate_plans`` must drop the compiled kernels along
        with the plans — a stale band kernel would keep grid-rebuilding
        while the interpreted planner switched to the new index."""
        plan = band_join_plan()
        compiled = Executor(unit_catalog, COMPILED)
        interp = Executor(unit_catalog, INTERP)
        assert compiled.execute(plan).rows == interp.execute(plan).rows
        assert compiled.kernel_report()["compiled"] == 1

        unit_catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        compiled.invalidate_plans()
        interp.invalidate_plans()
        assert compiled.kernel_report()["cached"] == 0
        assert compiled.execute(plan).rows == interp.execute(plan).rows
        physical = compiled.prepare(plan).physical
        assert not any(isinstance(op, KernelOp) for op in _batch_ops(physical))

        unit_catalog.drop_index("unit", "xy")
        compiled.invalidate_plans()
        interp.invalidate_plans()
        assert compiled.execute(plan).rows == interp.execute(plan).rows
        assert compiled.kernel_report()["compiled"] == 2  # re-fused after the drop


# ------------------------------------------------------------------------------------
# MQO interaction: shared subplans and alias-renamed subscribers
# ------------------------------------------------------------------------------------


class TestSharedPlans:
    def _subscriber(self, alias: str) -> Project:
        return Project(
            Select(TableScan("unit", alias), col(f"{alias}.x").gt(lit(40.0))),
            {"__target__": col(f"{alias}.id"), "__value__": col(f"{alias}.health")},
        )

    def test_alias_renamed_subscribers_match_interpreted(self, unit_catalog):
        plans = [self._subscriber("a"), self._subscriber("b")]
        specs = [TickQuerySpec(key=f"q{i}", plan=p) for i, p in enumerate(plans)]
        compiled = Executor(unit_catalog, COMPILED)
        plain = Executor(unit_catalog, INTERP)
        results = compiled.execute_tick(specs)
        assert compiled.last_tick_stats["shared_subplans"] == 1
        for plan, result in zip(plans, results):
            assert result.rows == plain.execute(plan).rows

    def test_shared_tick_results_stay_fresh_after_mutation(self, unit_catalog):
        plans = [self._subscriber("a"), self._subscriber("b")]
        specs = [TickQuerySpec(key=f"q{i}", plan=p) for i, p in enumerate(plans)]
        compiled = Executor(unit_catalog, COMPILED)
        plain = Executor(unit_catalog, INTERP)
        compiled.execute_tick(specs)
        table = unit_catalog.table("unit")
        table.update(next(iter(table.row_ids())), {"x": 99.0, "health": 1.0})
        results = compiled.execute_tick(specs)
        for plan, result in zip(plans, results):
            assert result.rows == plain.execute(plan).rows


# ------------------------------------------------------------------------------------
# whole-world equivalence and replay determinism under the fastest preset
# ------------------------------------------------------------------------------------


def _world_snapshot(world) -> dict:
    return {
        table.name: sorted(tuple(sorted(r.items())) for r in table.rows())
        for table in world.catalog.tables()
    }


class TestWholeWorld:
    @pytest.mark.parametrize("workload", sorted(REPLAY_WORKLOADS))
    def test_compiled_world_matches_default(self, workload):
        """Tick two copies of the same seeded world — default config vs the
        ``fastest`` preset — with identical churn: every post-tick state of
        every table must match exactly."""
        build, churn = REPLAY_WORKLOADS[workload]
        w_default = build()
        w_compiled = build(config=EngineConfig.fastest())
        rng_a, rng_b = random.Random(31), random.Random(31)
        for tick in range(8):
            churn(w_default, rng_a)
            churn(w_compiled, rng_b)
            w_default.tick()
            w_compiled.tick()
            assert _world_snapshot(w_default) == _world_snapshot(w_compiled), (
                f"{workload} diverged at tick {tick}"
            )

    @pytest.mark.parametrize("workload", sorted(REPLAY_WORKLOADS))
    def test_replay_determinism_holds_compiled(self, workload):
        """The PR-6 replay guarantee re-run under kernel compilation: the
        compiled run's WAL produces the same commits as the interpreted
        run's, and replay reconstructs every boundary exactly."""
        path, states, records = run_with_wal(
            workload, churn_seed=42, config=EngineConfig.fastest()
        )
        _, interp_states, interp_records = run_with_wal(workload, churn_seed=42)
        assert states == interp_states
        assert records == interp_records
        for tick in sorted(states):
            replayed = replay_tables(path, tick=tick)
            assert replayed.tables == states[tick], f"divergence at tick {tick}"
