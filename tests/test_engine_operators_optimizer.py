"""Tests for physical operators, rewrites, join ordering and the planner."""

from __future__ import annotations

import pytest

from repro.engine import (
    Aggregate,
    AggregateSpec,
    Catalog,
    Column,
    DataType,
    Distinct,
    Executor,
    Join,
    Limit,
    Planner,
    Project,
    Schema,
    Select,
    Sort,
    SortKey,
    TableScan,
    Union,
    Values,
    and_all,
    col,
    lit,
)
from repro.engine.aggregates import combine_values, make_accumulator
from repro.engine.algebra import explain
from repro.engine.indexes import SortedIndex
from repro.engine.operators import (
    BandJoinOp,
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    RangeProbeJoinOp,
    TableScanOp,
    ValuesOp,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.join_order import extract_join_graph, reorder_joins
from repro.engine.optimizer.rules import apply_standard_rewrites, split_conjunctions


class TestAggregates:
    @pytest.mark.parametrize(
        "func,values,expected",
        [
            ("sum", [1, 2, 3], 6),
            ("count", [1, None, 3], 2),
            ("min", [4, 2, 9], 2),
            ("max", [4, 2, 9], 9),
            ("avg", [2, 4], 3),
            ("median", [5, 1, 3], 3),
            ("any", [False, True], True),
            ("all", [True, False], False),
            ("choose", [7, 3, 5], 3),
            ("first", [7, 3], 7),
            ("last", [7, 3], 3),
        ],
    )
    def test_combinators(self, func, values, expected):
        assert combine_values(func, values) == expected

    def test_identities_on_empty_input(self):
        assert combine_values("sum", []) == 0
        assert combine_values("count", []) == 0
        assert combine_values("any", []) is False
        assert combine_values("all", []) is True
        assert combine_values("union", []) == frozenset()
        assert combine_values("avg", []) is None

    def test_union_flattens_sets(self):
        assert combine_values("union", [{1, 2}, 3, frozenset({4})]) == frozenset({1, 2, 3, 4})

    def test_merge_partial_accumulators(self):
        a = make_accumulator("sum")
        b = make_accumulator("sum")
        for v in (1, 2):
            a.add(v)
        for v in (3, 4):
            b.add(v)
        a.merge(b)
        assert a.result() == 10
        avg_a, avg_b = make_accumulator("avg"), make_accumulator("avg")
        avg_a.add(2)
        avg_b.add(4)
        avg_a.merge(avg_b)
        assert avg_a.result() == 3


class TestOperators:
    def test_executor_end_to_end(self, unit_catalog):
        executor = Executor(unit_catalog)
        plan = Project(
            Select(TableScan("unit"), col("player").eq(lit(0))),
            {"id": col("id"), "hp": col("health")},
        )
        result = executor.execute(plan)
        assert len(result) == 25
        assert set(result.rows[0]) == {"id", "hp"}

    def test_aggregate_group_by(self, unit_catalog):
        executor = Executor(unit_catalog)
        plan = Aggregate(
            TableScan("unit"),
            ["player"],
            [AggregateSpec("n", "count"), AggregateSpec("hp", "sum", col("health"))],
        )
        rows = executor.execute(plan).rows
        assert len(rows) == 4
        assert sum(r["n"] for r in rows) == 100

    def test_global_aggregate_on_empty_input(self, unit_catalog):
        executor = Executor(unit_catalog)
        plan = Aggregate(
            Select(TableScan("unit"), lit(False)), [], [AggregateSpec("n", "count")]
        )
        assert executor.execute(plan).scalar() == 0

    def test_sort_limit_distinct_union(self, unit_catalog):
        executor = Executor(unit_catalog)
        sorted_plan = Sort(TableScan("unit"), [SortKey(col("health"), ascending=False)])
        rows = executor.execute(Limit(sorted_plan, 5)).rows
        assert len(rows) == 5
        assert rows[0]["health"] >= rows[-1]["health"]
        distinct = Distinct(Project(TableScan("unit"), {"player": col("player")}))
        assert len(executor.execute(distinct)) == 4
        union = Union(Project(TableScan("unit"), {"p": col("player")}),
                      Project(TableScan("unit"), {"p": col("player")}))
        assert len(executor.execute(union)) == 200

    def test_values_and_cross_join(self, unit_catalog):
        executor = Executor(unit_catalog)
        schema = Schema([Column("k", DataType.NUMBER)])
        values = Values(schema, [{"k": 1}, {"k": 2}])
        plan = Join(values, Values(Schema([Column("j", DataType.NUMBER)]), [{"j": 7}]), None, how="cross")
        rows = executor.execute(plan).rows
        assert len(rows) == 2
        assert rows[0]["j"] == 7

    def test_left_join_produces_nulls(self, unit_catalog):
        executor = Executor(unit_catalog)
        empty = Select(TableScan("unit", alias="b"), lit(False))
        plan = Join(TableScan("unit", alias="a"), empty, col("a.id").eq(col("b.id")), how="left")
        rows = executor.execute(plan).rows
        assert len(rows) == 100
        assert all(r["b.id"] is None for r in rows)

    def test_hash_join_matches_nested_loop(self, unit_catalog):
        table = unit_catalog.table("unit")
        schema_a = table.schema.qualify("a")
        schema_b = table.schema.qualify("b")
        scan_a = TableScanOp(table, schema_a, "a")
        scan_b = TableScanOp(table, schema_b, "b")
        condition = col("a.player").eq(col("b.player"))
        hash_rows = HashJoinOp(
            TableScanOp(table, schema_a, "a"),
            TableScanOp(table, schema_b, "b"),
            [col("a.player")],
            [col("b.player")],
            schema_a.concat(schema_b),
        ).rows()
        nl_rows = NestedLoopJoinOp(scan_a, scan_b, condition, schema_a.concat(schema_b)).rows()
        assert len(hash_rows) == len(nl_rows) == 2500

    def test_band_join_counts_match_brute_force(self, unit_catalog):
        table = unit_catalog.table("unit")
        rows = list(table.rows())
        radius = 10.0
        expected = sum(
            1
            for a in rows
            for b in rows
            if abs(a["x"] - b["x"]) <= radius and abs(a["y"] - b["y"]) <= radius
        )
        schema_a = table.schema.qualify("a")
        schema_b = table.schema.qualify("b")
        band = BandJoinOp(
            TableScanOp(table, schema_a, "a"),
            TableScanOp(table, schema_b, "b"),
            ["a.x", "a.y"],
            ["b.x", "b.y"],
            radius,
            schema_a.concat(schema_b),
        )
        assert len(band.rows()) == expected

    def test_filter_and_values_op_counts(self):
        schema = Schema([Column("v", DataType.NUMBER)])
        values = ValuesOp(schema, [{"v": i} for i in range(10)])
        filtered = FilterOp(values, col("v").ge(lit(5)))
        assert len(filtered.rows()) == 5
        assert filtered.rows_produced == 5
        assert "Filter" in filtered.explain()


class TestOptimizer:
    def fig2_plan(self):
        join = Join(
            TableScan("unit", alias="self"),
            TableScan("unit", alias="u"),
            None,
            how="cross",
        )
        predicate = and_all(
            [
                col("u.x").ge(col("self.x") - col("self.range")),
                col("u.x").le(col("self.x") + col("self.range")),
                col("u.y").ge(col("self.y") - col("self.range")),
                col("u.y").le(col("self.y") + col("self.range")),
            ]
        )
        return Aggregate(
            Select(join, predicate), ["self.id"], [AggregateSpec("cnt", "count")]
        )

    def test_split_and_pushdown(self, unit_catalog):
        plan = Select(
            Join(
                TableScan("unit", alias="a"),
                TableScan("unit", alias="b"),
                col("a.player").eq(col("b.player")),
            ),
            and_all([col("a.health").gt(lit(50)), col("b.health").gt(lit(50))]),
        )
        rewritten = apply_standard_rewrites(plan, unit_catalog)
        text = explain(rewritten)
        # Both single-table filters must sit below the join after pushdown.
        join_line = next(i for i, line in enumerate(text.splitlines()) if "Join" in line)
        select_lines = [i for i, line in enumerate(text.splitlines()) if "Select" in line]
        assert all(i > join_line for i in select_lines)

    def test_pushdown_does_not_cross_wrong_side(self, unit_catalog):
        executor = Executor(unit_catalog)
        plan = Select(
            Join(
                TableScan("unit", alias="a"),
                TableScan("unit", alias="b"),
                col("a.player").eq(col("b.player")),
            ),
            col("a.id").lt(col("b.id")),
        )
        rows = executor.execute(plan).rows
        table_rows = list(unit_catalog.table("unit").rows())
        expected = sum(
            1
            for a in table_rows
            for b in table_rows
            if a["player"] == b["player"] and a["id"] < b["id"]
        )
        assert len(rows) == expected

    def test_figure2_lowered_to_range_probe_join(self, unit_catalog):
        planner = Planner(unit_catalog)
        planned = planner.plan(self.fig2_plan())
        labels = planned.physical.explain()
        assert "RangeProbeJoin" in labels

    def test_figure2_results_correct(self, unit_catalog):
        executor = Executor(unit_catalog)
        rows = executor.execute(self.fig2_plan()).rows
        table_rows = list(unit_catalog.table("unit").rows())
        expected = {
            a["id"]: sum(
                1
                for b in table_rows
                if abs(a["x"] - b["x"]) <= a["range"] and abs(a["y"] - b["y"]) <= a["range"]
            )
            for a in table_rows
        }
        assert {r["self.id"]: r["cnt"] for r in rows} == expected

    def test_unoptimized_planner_still_correct(self, unit_catalog):
        fast = Executor(unit_catalog, optimize=True)
        slow = Executor(unit_catalog, optimize=False)
        plan = self.fig2_plan()
        fast_rows = {(r["self.id"], r["cnt"]) for r in fast.execute(plan).rows}
        slow_rows = {(r["self.id"], r["cnt"]) for r in slow.execute(plan, cache=False).rows}
        assert fast_rows == slow_rows

    def test_join_graph_extraction(self, unit_catalog):
        plan = Join(
            Join(
                TableScan("unit", alias="a"),
                TableScan("unit", alias="b"),
                col("a.player").eq(col("b.player")),
            ),
            TableScan("unit", alias="c"),
            col("b.player").eq(col("c.player")),
        )
        graph = extract_join_graph(plan)
        assert graph is not None
        assert len(graph.relations) == 3
        assert len(graph.predicates) == 2

    def test_reorder_preserves_results(self, unit_catalog):
        cost_model = CostModel(unit_catalog)
        plan = Select(
            Join(
                Join(
                    TableScan("unit", alias="a"),
                    TableScan("unit", alias="b"),
                    col("a.player").eq(col("b.player")),
                ),
                TableScan("unit", alias="c"),
                col("b.id").eq(col("c.id")),
            ),
            col("a.health").gt(lit(90)),
        )
        reordered = reorder_joins(split_conjunctions(plan), unit_catalog, cost_model)
        executor = Executor(unit_catalog, optimize=False)
        original = executor.execute(plan, cache=False).rows
        new = executor.execute(reordered, cache=False).rows
        assert len(original) == len(new)

    def test_index_scan_selected_for_constant_range(self, unit_catalog):
        table = unit_catalog.table("unit")
        table.attach_index("by_x", SortedIndex("x"))
        planner = Planner(unit_catalog)
        plan = Select(TableScan("unit"), and_all([col("x").ge(lit(10)), col("x").le(lit(20))]))
        planned = planner.plan(plan)
        assert "IndexRangeScan" in planned.physical.explain()
        rows = planned.physical.rows()
        expected = [r for r in table.rows() if 10 <= r["x"] <= 20]
        assert len(rows) == len(expected)

    def test_cost_model_prefers_selective_first(self, unit_catalog):
        cost_model = CostModel(unit_catalog)
        scan = TableScan("unit")
        selective = Select(scan, col("id").eq(lit(3)))
        broad = Select(scan, col("x").ge(lit(0)))
        assert cost_model.cardinality(selective) < cost_model.cardinality(broad)

    def test_explain_includes_all_layers(self, unit_catalog):
        planner = Planner(unit_catalog)
        planned = planner.plan(Select(TableScan("unit"), col("health").gt(lit(50))))
        text = planned.explain()
        assert "logical" in text and "physical" in text and "estimated cost" in text
