"""Recursive fixpoint plans: semi-naive iteration, caching, and ``reach``.

Covers the engine layer (Fixpoint lowering, semi-naive vs naive
equivalence, the version-vector result cache, warm restarts under
insert-only churn, the Distinct-over-Fixpoint rewrite), the runtime layer
(grid reachability/influence as fixpoint plans, parity with the A*/BFS
oracles, tick counters), and the SGL frontend (``reach`` compiled vs
interpreted on the contagion workload, MQO sharing of identical closures
across scripts).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import ExecutionMode, GameWorld
from repro.engine import EngineConfig
from repro.engine.algebra import (
    Distinct,
    Fixpoint,
    Join,
    Project,
    RecursiveRef,
    TableScan,
    Values,
)
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.expressions import BinaryOp, ColumnRef
from repro.engine.operators.fixpoint import FixpointOp
from repro.engine.optimizer.rules import drop_distinct_over_fixpoint
from repro.engine.schema import Column, Schema
from repro.runtime.debug.inspector import TickInspector
from repro.runtime.pathfinding import (
    GridMap,
    GridReachability,
    astar,
    grid_edges_table,
    reachability_plan,
)
from repro.workloads import build_contagion_world, churn_links, infected_ids


# -- helpers ----------------------------------------------------------------------------


def edges_catalog(rows) -> tuple[Catalog, "Table"]:  # noqa: F821
    catalog = Catalog()
    edges = catalog.create_table("edges", Schema([Column("src"), Column("dst")]))
    edges.insert_many(rows)
    return catalog, edges


def closure_plan(start: int = 0, max_rounds: int | None = None) -> Fixpoint:
    schema = Schema([Column("node")])
    return Fixpoint(
        Values(schema, [{"node": start}]),
        Project(
            Join(
                RecursiveRef(schema),
                TableScan("edges"),
                BinaryOp("==", ColumnRef("node"), ColumnRef("src")),
                how="inner",
            ),
            {"node": ColumnRef("dst")},
        ),
        max_rounds=max_rounds,
    )


def bfs_closure(rows, start: int = 0, max_hops: int | None = None) -> set:
    adjacency: dict = {}
    for row in rows:
        adjacency.setdefault(row["src"], []).append(row["dst"])
    seen = {start}
    frontier = [start]
    hops = 0
    while frontier and (max_hops is None or hops < max_hops):
        hops += 1
        frontier = [
            dst
            for src in frontier
            for dst in adjacency.get(src, ())
            if dst not in seen and not seen.add(dst)
        ]
    return seen


def random_edge_rows(rng: random.Random, n_nodes: int, n_edges: int) -> list[dict]:
    return [
        {"src": rng.randrange(n_nodes), "dst": rng.randrange(n_nodes)}
        for _ in range(n_edges)
    ]


def nodes(result) -> set:
    return {row["node"] for row in result.rows}


def fixpoint_ops(executor: Executor) -> list[FixpointOp]:
    ops: dict[int, FixpointOp] = {}
    for entry in executor._cache.values():
        for op in entry.planned.physical.walk():
            if isinstance(op, FixpointOp):
                ops.setdefault(id(op), op)
    return list(ops.values())


# -- engine layer -----------------------------------------------------------------------


class TestSemiNaiveEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_semi_naive_matches_naive_on_random_graphs(self, seed):
        """Same closure either way; only the iteration strategy differs."""
        rng = random.Random(seed)
        rows = random_edge_rows(rng, n_nodes=40, n_edges=90)
        catalog, _ = edges_catalog(rows)
        plan = closure_plan()
        semi = Executor(catalog, EngineConfig(use_incremental=False))
        naive = Executor(
            catalog, EngineConfig(use_incremental=False, use_fixpoint=False)
        )
        expected = bfs_closure(rows)
        assert nodes(semi.execute(plan)) == expected
        assert nodes(naive.execute(plan)) == expected

    def test_iterate_cap_bounds_the_radius(self):
        rows = [{"src": i, "dst": i + 1} for i in range(10)]
        catalog, _ = edges_catalog(rows)
        executor = Executor(catalog, EngineConfig(use_incremental=False))
        assert nodes(executor.execute(closure_plan(max_rounds=3))) == {0, 1, 2, 3}
        assert nodes(executor.execute(closure_plan())) == set(range(11))

    def test_round_and_delta_counters(self):
        """A 6-node chain closes in 6 rounds of one-row deltas (+1 to detect
        convergence), so the counters expose the per-round frontier size."""
        rows = [{"src": i, "dst": i + 1} for i in range(5)]
        catalog, _ = edges_catalog(rows)
        executor = Executor(catalog, EngineConfig(use_incremental=False))
        executor.execute(closure_plan())
        report = executor.fixpoint_report()
        assert report["operators"] == 1
        assert report["total_rounds"] == 6
        assert report["total_delta_rows"] == 6  # the seed row + one node per round

    def test_distinct_over_fixpoint_is_dropped(self):
        plan = closure_plan()
        assert drop_distinct_over_fixpoint(Distinct(plan)) is plan
        # The rewrite also reaches Fixpoints nested under other operators.
        wrapped = Project(Distinct(plan), {"node": ColumnRef("node")})
        rewritten = drop_distinct_over_fixpoint(wrapped)
        assert isinstance(rewritten, Project)
        assert rewritten.child is plan


class TestCachingAndWarmRestart:
    def test_unchanged_tables_hit_the_version_cache(self):
        catalog, _ = edges_catalog([{"src": i, "dst": i + 1} for i in range(20)])
        executor = Executor(catalog, EngineConfig(use_incremental=False))
        plan = closure_plan()
        first = nodes(executor.execute(plan))
        rounds = executor.fixpoint_report()["total_rounds"]
        assert nodes(executor.execute(plan)) == first
        report = executor.fixpoint_report()
        assert report["cache_hits"] == 1
        assert report["total_rounds"] == rounds  # no re-iteration

    def test_insert_only_churn_warm_restarts(self):
        rows = [{"src": i, "dst": i + 1} for i in range(30)]
        catalog, edges = edges_catalog(rows)
        executor = Executor(catalog, EngineConfig())
        plan = closure_plan()
        executor.execute(plan)
        edges.insert_many([{"src": 4, "dst": 100}, {"src": 100, "dst": 101}])
        result = nodes(executor.execute(plan))
        assert result == bfs_closure(edges.rows())
        report = executor.fixpoint_report()
        assert report["warm_restarts"] == 1

    def test_warm_restart_refreshes_join_hash_incrementally(self):
        rows = [{"src": i, "dst": i + 1} for i in range(30)]
        catalog, edges = edges_catalog(rows)
        executor = Executor(catalog, EngineConfig())
        plan = closure_plan()
        executor.execute(plan)
        (op,) = fixpoint_ops(executor)
        assert op.linear_step is not None
        assert op.linear_step.incremental_refreshes == 0
        edges.insert_many([{"src": 7, "dst": 200}])
        executor.execute(plan)
        assert op.linear_step.incremental_refreshes == 1  # appended, not rebuilt

    def test_deletion_falls_back_to_full_recompute(self):
        rows = [{"src": i, "dst": i + 1} for i in range(10)]
        catalog, edges = edges_catalog(rows)
        executor = Executor(catalog, EngineConfig())
        plan = closure_plan()
        assert nodes(executor.execute(plan)) == set(range(11))
        edges.delete_where(lambda row: row["src"] == 5)
        warm_before = executor.fixpoint_report()["warm_restarts"]
        assert nodes(executor.execute(plan)) == set(range(6))
        assert executor.fixpoint_report()["warm_restarts"] == warm_before


# -- runtime layer: grid reachability ---------------------------------------------------


def grid_bfs(grid: GridMap, start: tuple[int, int]) -> set:
    if not grid.passable(start):
        return set()
    seen = {start}
    frontier = [start]
    while frontier:
        cell = frontier.pop()
        for neighbour in grid.neighbours(cell):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


class TestGridReachability:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_fixpoint_reachability_matches_astar_and_bfs(self, data):
        """On random layouts the plan's reachable set equals imperative BFS,
        and A* finds a path exactly for the reachable goals."""
        width = data.draw(st.integers(3, 7), label="width")
        height = data.draw(st.integers(3, 7), label="height")
        cells = [(x, y) for x in range(width) for y in range(height)]
        obstacles = data.draw(
            st.sets(st.sampled_from(cells), max_size=len(cells) - 1),
            label="obstacles",
        )
        grid = GridMap(width, height, set(obstacles))
        passable = [cell for cell in cells if grid.passable(cell)]
        if not passable:
            return
        start = data.draw(st.sampled_from(passable), label="start")
        goal = data.draw(st.sampled_from(passable), label="goal")
        expected = grid_bfs(grid, start)
        reach = GridReachability(grid)
        assert reach.reachable_set(start) == expected
        assert (astar(grid, start, goal) is not None) == (goal in expected)

    def test_distance_map_is_bfs_depth(self):
        grid = GridMap(5, 5)
        grid.add_obstacle_rect(2, 0, 2, 3)  # wall with a gap at the bottom
        distances = GridReachability(grid).distance_map((0, 0))
        assert distances[(0, 0)] == 0
        assert distances[(1, 0)] == 1
        # Around the wall: down to (1,4), across, back up.
        assert distances[(3, 0)] == abs(4 - 0) * 2 + 3
        assert (2, 1) not in distances

    def test_influence_map_decays_and_takes_nearest_source(self):
        grid = GridMap(7, 1)
        influence = GridReachability(grid).influence_map(
            {(0, 0): 3.0, (6, 0): 2.0}, radius=6
        )
        assert influence[(0, 0)] == 3.0
        assert influence[(1, 0)] == 2.0
        assert influence[(6, 0)] == 2.0
        assert (3, 0) not in influence  # both sources decayed to zero there

    def test_clearing_obstacles_is_insert_only_churn(self):
        grid = GridMap(6, 1, obstacles={(3, 0)})
        reach = GridReachability(grid)
        assert reach.reachable_set((0, 0)) == {(0, 0), (1, 0), (2, 0)}
        assert reach.clear_obstacles([(3, 0)]) > 0
        assert reach.reachable_set((0, 0)) == {(x, 0) for x in range(6)}
        assert reach.fixpoint_counters()["warm_restarts"] == 1

    def test_repeat_queries_hit_the_result_cache(self):
        grid = GridMap(4, 4)
        reach = GridReachability(grid)
        first = reach.reachable_set((0, 0))
        assert reach.reachable_set((0, 0)) == first
        assert reach.fixpoint_counters()["cache_hits"] == 1

    def test_reachability_plan_cap_matches_bounded_bfs(self):
        grid = GridMap(5, 5)
        table = grid_edges_table(grid)
        catalog = Catalog()
        catalog.register_table(table)
        executor = Executor(catalog, EngineConfig(use_incremental=False))
        plan = reachability_plan(grid.cell_id((0, 0)), max_rounds=2)
        reached = {grid.cell_at(row["node"]) for row in executor.execute(plan).rows}
        assert reached == {
            cell
            for cell in grid_bfs(grid, (0, 0))
            if abs(cell[0]) + abs(cell[1]) <= 2
        }


# -- SGL frontend: reach ----------------------------------------------------------------

TWO_SCRIPTS_SOURCE = """
class Node {
  state:
    number idx = 0;
    number next = 0;
    number origin = 0;
    number marked = 0;
    number tagged = 0;
  effects:
    number seen : max;
    number touched : max;
}

script mark(Node self) {
  if (origin > 0) {
    reach Node n from self via Node cur on n.idx == cur.next {
      n.seen <- 1;
    }
  }
}

script tag(Node self) {
  if (origin > 0) {
    reach Node n from self via Node cur on n.idx == cur.next {
      n.touched <- 1;
    }
  }
}
"""


def _add_flag_rules(world: GameWorld) -> None:
    world.add_update_rule(
        "Node", "marked", lambda state, effects: 1 if effects.get("seen") else state["marked"]
    )
    world.add_update_rule(
        "Node", "tagged", lambda state, effects: 1 if effects.get("touched") else state["tagged"]
    )


def build_chain_world(n: int, mode: ExecutionMode, **kwargs) -> GameWorld:
    world = GameWorld(TWO_SCRIPTS_SOURCE, mode=mode, **kwargs)
    _add_flag_rules(world)
    world.spawn_many(
        "Node",
        [
            {"idx": i, "next": i + 1 if i < n - 1 else i, "origin": 1 if i == 0 else 0}
            for i in range(n)
        ],
    )
    return world


class TestReachFrontend:
    def test_contagion_compiled_matches_interpreted(self):
        """The reach construct, both ways, under link churn across ticks."""
        worlds = {
            mode: build_contagion_world(40, mode=mode, seed=5, n_chords=1)
            for mode in (ExecutionMode.COMPILED, ExecutionMode.INTERPRETED)
        }
        rngs = {mode: random.Random(99) for mode in worlds}
        history = {mode: [] for mode in worlds}
        for _ in range(4):
            for mode, world in worlds.items():
                churn_links(world, 0.05, rngs[mode])
                world.tick()
                history[mode].append(infected_ids(world))
        assert history[ExecutionMode.COMPILED] == history[ExecutionMode.INTERPRETED]
        # The outbreak actually spread (monotone front).
        compiled = history[ExecutionMode.COMPILED]
        assert len(compiled[-1]) > 1
        assert all(a <= b for a, b in zip(compiled, compiled[1:]))

    def test_semi_naive_matches_naive_on_workload(self):
        configs = {
            "semi": EngineConfig(),
            "naive": EngineConfig(use_fixpoint=False),
        }
        outcomes = {}
        for name, config in configs.items():
            world = build_contagion_world(30, seed=3, n_chords=1, config=config)
            rng = random.Random(17)
            trace = []
            for _ in range(3):
                churn_links(world, 0.05, rng)
                world.tick()
                trace.append(infected_ids(world))
            outcomes[name] = trace
        assert outcomes["semi"] == outcomes["naive"]

    def test_tick_counters_expose_fixpoint_work(self):
        world = build_contagion_world(30, seed=3)
        world.tick()
        counters = TickInspector(world).tick_counters()
        assert counters["fixpoint_rounds"] >= 1
        assert counters["fixpoint_delta_rows"] >= 1
        assert counters["engine_config"]["use_fixpoint"] is True

    def test_identical_reach_closures_share_one_fixpoint(self):
        """Two scripts with the same closure: MQO evaluates one Fixpoint."""
        world = build_chain_world(8, ExecutionMode.COMPILED)
        world.tick()
        marked = {row["idx"] for row in world.objects("Node") if row["marked"]}
        touched = {row["idx"] for row in world.objects("Node") if row["tagged"]}
        assert marked == touched == set(range(8))
        shared = world.executor.tick_sharing_report()["shared_subplans"]
        fixpoint_shares = [s for s in shared if s["fingerprint"].startswith("μ")]
        assert len(fixpoint_shares) == 1
        assert fixpoint_shares[0]["consumers"] == 2
        # Only the shared operator iterated; the per-query plans stayed idle.
        pipeline = world.executor._tick_pipeline
        shared_ops = [
            op
            for entry in pipeline.shared
            for op in entry.physical.walk()
            if isinstance(op, FixpointOp)
        ]
        assert [op.total_rounds > 0 for op in shared_ops] == [True]
        assert all(op.total_rounds == 0 for op in fixpoint_ops(world.executor))

    def test_reach_iterate_cap_in_both_modes(self):
        source = TWO_SCRIPTS_SOURCE.replace(
            "on n.idx == cur.next {", "on n.idx == cur.next iterate 2 {"
        )
        for mode in (ExecutionMode.COMPILED, ExecutionMode.INTERPRETED):
            world = GameWorld(source, mode=mode)
            _add_flag_rules(world)
            world.spawn_many(
                "Node",
                [
                    {"idx": i, "next": i + 1, "origin": 1 if i == 0 else 0}
                    for i in range(6)
                ],
            )
            world.tick()
            marked = {row["idx"] for row in world.objects("Node") if row["marked"]}
            assert marked == {0, 1, 2}, mode
