"""Tests for sharded multi-process execution (``repro.shard``).

The core property is *equivalence*: ticking a world split across N worker
processes — handoffs, halo ghosts, subscription fan-out and all — must
produce exactly the state a single-process world produces from the same
rows, tick for tick.  Around that sit unit tests for the pieces: the
shard spec's ownership arithmetic, the zlib+crc32 wire frames, the new
``ShardedScan``/``Exchange`` algebra nodes through the optimizer and
executor, the effect-ownership filter, and the world adopt/release hooks
the workers are built on.
"""

from __future__ import annotations

import pytest

from repro.engine.algebra import Exchange, Select, ShardedScan, TableScan
from repro.engine.executor import Executor
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.rules import apply_standard_rewrites, expand_sharded_scans
from repro.runtime import EffectStore
from repro.runtime.debug import TickInspector
from repro.sgl import parse_program
from repro.sgl.ir import EffectAssignment
from repro.shard import (
    ShardSpec,
    ShardedWorld,
    decode_frame,
    encode_frame,
    frame_rows,
    unframe_rows,
)
from repro.workloads.rts import build_rts_world, unit_rows

WORLD_SIZE = 300.0
N_UNITS = 240


def world_factory():
    """Module-level (picklable) factory building the empty scenario world."""
    return build_rts_world(0, world_size=WORLD_SIZE)


def scenario_spec(**overrides) -> ShardSpec:
    settings = dict(
        axis_column="x",
        world_min=0.0,
        world_max=WORLD_SIZE,
        halo_width=12.0,
        partitioned_classes=("Unit",),
    )
    settings.update(overrides)
    return ShardSpec(**settings)


def scenario_rows() -> list[dict]:
    return list(unit_rows(N_UNITS, world_size=WORLD_SIZE, seed=29))


# -- ShardSpec ownership arithmetic ------------------------------------------------------


class TestShardSpec:
    def test_cuts_and_ranges(self):
        spec = scenario_spec()
        assert spec.cuts(3) == (100.0, 200.0)
        assert spec.shard_range(0, 3) == (None, 100.0)
        assert spec.shard_range(1, 3) == (100.0, 200.0)
        assert spec.shard_range(2, 3) == (200.0, None)
        assert spec.cuts(1) == ()
        assert spec.shard_range(0, 1) == (None, None)

    def test_ownership_is_half_open(self):
        spec = scenario_spec()
        # low <= v < high: a value exactly on a cut belongs to the right side.
        assert spec.shard_of(99.999, 3) == 0
        assert spec.shard_of(100.0, 3) == 1
        assert spec.shard_of(200.0, 3) == 2
        # Out-of-world values clamp to the edge shards instead of erroring.
        assert spec.shard_of(-50.0, 3) == 0
        assert spec.shard_of(1e9, 3) == 2

    def test_shards_for_span(self):
        spec = scenario_spec()
        assert list(spec.shards_for_span(10.0, 20.0, 3)) == [0]
        assert list(spec.shards_for_span(90.0, 110.0, 3)) == [0, 1]
        assert list(spec.shards_for_span(0.0, 300.0, 3)) == [0, 1, 2]

    def test_effective_halo(self):
        fixed = scenario_spec()
        assert fixed.effective_halo(1000.0) == fixed.halo_width
        adaptive = scenario_spec(adaptive_halo=True, halo_margin=0.25)
        # Never shrinks below the configured floor...
        assert adaptive.effective_halo(2.0) == adaptive.halo_width
        assert adaptive.effective_halo(None) == adaptive.halo_width
        # ...and grows to cover a wider observed probe, with margin.
        assert adaptive.effective_halo(40.0) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            scenario_spec(world_min=300.0, world_max=0.0)
        with pytest.raises(ValueError):
            scenario_spec(halo_width=-1.0)


# -- wire frames -------------------------------------------------------------------------


class TestWireFrames:
    def test_roundtrip_preserves_rows_exactly(self):
        rows = {"Unit": [{"id": 7, "x": 0.1 + 0.2, "name": "a"}], "Base": []}
        tick, decoded = unframe_rows(frame_rows(42, rows))
        assert tick == 42
        assert decoded == rows  # repr-faithful floats survive the frame

    def test_corruption_is_detected(self):
        frame = bytearray(encode_frame({"k": "v"}))
        frame[-1] ^= 0xFF
        with pytest.raises(ValueError):
            decode_frame(bytes(frame))

    def test_trailing_bytes_are_rejected(self):
        frame = encode_frame({"k": "v"})
        with pytest.raises(ValueError):
            decode_frame(frame + b"junk")


# -- algebra: ShardedScan and Exchange ---------------------------------------------------


class TestShardAlgebra:
    def test_sharded_scan_expands_to_range_select(self, unit_catalog):
        scan = ShardedScan("unit", "x", 25.0, 75.0)
        select = scan.to_select()
        assert isinstance(select, Select)
        assert isinstance(select.child, TableScan)
        assert scan.output_schema(unit_catalog) == TableScan("unit").output_schema(
            unit_catalog
        )
        # Executing it returns exactly the half-open slice.
        rows = Executor(unit_catalog).execute(scan).rows
        expected = [
            row
            for row in unit_catalog.table("unit").rows()
            if 25.0 <= row["x"] < 75.0
        ]
        assert len(rows) == len(expected)
        # Unbounded edges drop the comparison instead of emitting +-inf.
        assert len(Executor(unit_catalog).execute(ShardedScan("unit", "x", None, None)).rows) == 100

    def test_rewrite_pass_removes_sharded_scans(self, unit_catalog):
        def has_sharded(node):
            return isinstance(node, ShardedScan) or any(
                has_sharded(child) for child in node.children()
            )

        scan = ShardedScan("unit", "x", None, 50.0)
        rewritten = expand_sharded_scans(scan)
        assert not has_sharded(rewritten)
        assert isinstance(rewritten, Select)
        full = apply_standard_rewrites(scan, unit_catalog)
        assert not has_sharded(full)

    def test_exchange_labels_and_excludes(self, unit_catalog):
        exchange = Exchange(TableScan("unit"), "x", (50.0,))
        executor = Executor(unit_catalog)
        rows = executor.execute(exchange).rows
        assert len(rows) == 100
        for row in rows:
            assert row[Exchange.SHARD_COLUMN] == (0 if row["x"] < 50.0 else 1)
        schema = exchange.output_schema(unit_catalog)
        assert Exchange.SHARD_COLUMN in [column.name for column in schema]
        # exclude_shard keeps only the rows that LEFT the given shard.
        leavers = executor.execute(
            Exchange(TableScan("unit"), "x", (50.0,), exclude_shard=0)
        ).rows
        assert leavers and all(row["x"] >= 50.0 for row in leavers)

    def test_exchange_validates_cuts(self):
        from repro.engine.errors import PlanError

        with pytest.raises(PlanError):
            Exchange(TableScan("unit"), "x", (50.0, 25.0))

    def test_cost_model_covers_shard_nodes(self, unit_catalog):
        model = CostModel(unit_catalog)
        scan = ShardedScan("unit", "x", 0.0, 50.0)
        assert 0 < model.cardinality(scan) <= 100
        assert model.cost(scan).cost > 0
        exchange = Exchange(TableScan("unit"), "x", (50.0,), exclude_shard=0)
        # Handoff-style exchanges are estimated as a small fraction moving.
        assert model.cardinality(exchange) < model.cardinality(TableScan("unit"))
        assert model.cost(exchange).cost > model.cost(TableScan("unit")).cost


# -- effect ownership --------------------------------------------------------------------


def test_effect_store_retain_drops_unowned_targets():
    program = parse_program(
        "class Unit { state: number x = 0; effects: number damage : sum; }"
    )
    store = EffectStore({decl.name: decl for decl in program.classes})
    store.add(EffectAssignment("Unit", 1, "damage", 3))
    store.add(EffectAssignment("Unit", 2, "damage", 5))
    dropped = store.retain(lambda class_name, target_id: target_id == 1)
    assert dropped == 1
    combined = store.combine()
    assert combined.value("Unit", 1, "damage") == 3
    assert combined.value("Unit", 2, "damage") is None


# -- world adopt / release ---------------------------------------------------------------


def test_world_adopt_and_release_roundtrip():
    world = build_rts_world(3, world_size=100.0)
    released = world.release("Unit", 1)
    assert released is not None and released["id"] == 1
    assert world.get_object("Unit", 1) is None
    assert world.release("Unit", 1) is None  # already gone

    world.adopt("Unit", released)
    restored = world.get_object("Unit", 1)
    assert restored is not None
    assert {k: restored[k] for k in released} == released
    # Adoption bumps the id allocator past foreign ids: no collisions later.
    world.adopt("Unit", {**released, "id": 500})
    new_id = world.spawn("Unit", x=1.0, y=1.0)
    assert new_id > 500


def test_tick_report_exposes_exchange_counters():
    world = build_rts_world(5, world_size=100.0)
    world.tick()
    report = world.reports[-1]
    assert (report.exchange_bytes, report.halo_rows, report.handoff_rows) == (0, 0, 0)
    counters = TickInspector(world).tick_counters()
    for key in ("exchange_bytes", "exchange_rows", "halo_rows", "handoff_rows"):
        assert key in counters


# -- the sharded world itself ------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [2, 3])
def test_sharded_tick_matches_single_process_exactly(n_shards):
    """Per-tick state equivalence, including tick 1 (bootstrap halo) and
    ticks where ownership handoffs occur."""
    single = world_factory()
    single.spawn_many("Unit", scenario_rows())
    handoffs = 0
    with ShardedWorld(world_factory, scenario_spec(), n_shards=n_shards) as sharded:
        loaded = sharded.load({"Unit": scenario_rows()})
        assert loaded == N_UNITS
        for _ in range(6):
            single.tick()
            report = sharded.tick()
            handoffs += report.handoff_rows
            expected = {row["id"]: row for row in single.objects("Unit")}
            assert sharded.gather_state()["Unit"] == expected
            assert report.exchange_bytes > 0  # halo traffic flows every tick
            assert len(report.worker_cpu_seconds) == n_shards
            assert report.critical_path_seconds > 0
    # The scenario must actually exercise ownership transfer.
    assert handoffs > 0


def test_sharded_subscriptions_serve_boundary_clients():
    with ShardedWorld(world_factory, scenario_spec(), n_shards=2) as sharded:
        sharded.load({"Unit": scenario_rows()})
        # A client box straddling the cut registers on both shards; an
        # interior one registers on exactly its owner.
        straddling = sharded.subscribe_aoi("edge", "Unit", radius=10.0, center=(150.0, 150.0))
        interior = sharded.subscribe_aoi("inner", "Unit", radius=10.0, center=(40.0, 150.0))
        assert len(straddling) == 2
        assert len(interior) == 1
        report = sharded.tick()
        assert report.subscription_messages > 0


def test_worker_errors_surface_as_shard_errors():
    from repro.shard import ShardError

    with ShardedWorld(world_factory, scenario_spec(), n_shards=2) as sharded:
        with pytest.raises(ShardError):
            sharded.load({"NoSuchClass": [{"id": 0, "x": 1.0}]})
