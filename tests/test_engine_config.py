"""EngineConfig: the one public switchboard for engine feature paths.

Covers the consolidation contract: presets, the ``REPRO_ENGINE_PRESET``
environment hook, the deprecation shim that maps the old scattered
``use_*`` booleans onto a config object (round-tripping their values
exactly), and the plumbing — one config object threaded through
``GameWorld`` → ``Executor`` → ``Planner`` and surfaced by the inspector.
"""

from __future__ import annotations

import warnings

import pytest

from repro.engine import EngineConfig, Executor, resolve_engine_config
from repro.engine.optimizer.planner import Planner
from repro.runtime.debug.inspector import TickInspector
from repro.workloads import build_rts_world


class TestPresets:
    def test_defaults(self):
        config = EngineConfig()
        assert config.optimize and config.use_batch and config.use_incremental
        assert config.use_mqo and config.use_indexes and config.auto_index
        assert not config.use_compiled  # opt-in until the preset asks

    def test_fastest_enables_compilation(self):
        config = EngineConfig.fastest()
        assert config.use_compiled
        assert config.replace(use_compiled=False) == EngineConfig()

    def test_reference_is_row_path_only(self):
        config = EngineConfig.reference()
        assert not config.use_batch
        assert not config.use_incremental
        assert not config.use_mqo
        assert not config.use_indexes
        assert not config.use_compiled
        assert not config.use_fixpoint  # naive reference iteration

    def test_fixpoint_on_by_default(self):
        assert EngineConfig().use_fixpoint
        assert EngineConfig.fastest().use_fixpoint
        assert EngineConfig.debug().use_fixpoint

    def test_debug_keeps_per_query_plans(self):
        config = EngineConfig.debug()
        assert not config.use_mqo
        assert not config.auto_index
        assert not config.use_compiled
        assert config.use_batch  # still the production data layout

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().use_batch = False

    def test_replace_and_as_dict_round_trip(self):
        config = EngineConfig().replace(use_compiled=True, index_create_after=7)
        assert config.use_compiled
        assert config.index_create_after == 7
        assert EngineConfig(**config.as_dict()) == config


class TestFromEnv:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            ("", EngineConfig()),
            ("default", EngineConfig()),
            ("fastest", EngineConfig.fastest()),
            ("reference", EngineConfig.reference()),
            ("debug", EngineConfig.debug()),
            ("  FASTEST  ", EngineConfig.fastest()),  # trimmed, case-folded
        ],
    )
    def test_named_presets(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_ENGINE_PRESET", value)
        assert EngineConfig.from_env() == expected

    def test_unset_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_PRESET", raising=False)
        assert EngineConfig.from_env() == EngineConfig()

    def test_unknown_preset_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PRESET", "warp-speed")
        with pytest.raises(ValueError, match="warp-speed"):
            EngineConfig.from_env()

    def test_env_preset_reaches_default_constructed_world(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PRESET", "fastest")
        world = build_rts_world(5, with_physics=False)
        assert world.config.use_compiled

    @pytest.mark.parametrize("preset", ["default", "fastest", "reference", "debug"])
    def test_env_presets_round_trip_every_flag(self, monkeypatch, preset):
        """Each preset survives env resolution and as_dict round-tripping
        with all fields intact — including ``use_fixpoint`` (regression:
        new flags must join the presets, the env hook, and the dict view)."""
        monkeypatch.setenv("REPRO_ENGINE_PRESET", preset)
        config = EngineConfig.from_env()
        assert "use_fixpoint" in config.as_dict()
        assert EngineConfig(**config.as_dict()) == config
        world = build_rts_world(5, with_physics=False)
        assert world.config == config
        assert world.executor.planner.config.use_fixpoint == config.use_fixpoint


class TestDeprecationShim:
    def test_legacy_flags_round_trip(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_PRESET", raising=False)
        with pytest.warns(DeprecationWarning, match="use_batch"):
            config = resolve_engine_config(None, {"use_batch": False, "optimize": None})
        assert not config.use_batch
        assert config == EngineConfig(use_batch=False)

    def test_single_warning_names_all_flags(self):
        with pytest.warns(DeprecationWarning) as record:
            resolve_engine_config(None, {"use_batch": False, "use_mqo": False})
        assert len(record) == 1
        message = str(record[0].message)
        assert "use_batch" in message and "use_mqo" in message

    def test_config_passthrough_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = resolve_engine_config(EngineConfig.debug(), {"use_batch": None})
        assert config == EngineConfig.debug()

    def test_unknown_flag_raises(self):
        with pytest.raises(TypeError, match="use_warp"):
            resolve_engine_config(None, {"use_warp": True})

    def test_legacy_flag_overrides_explicit_config(self):
        with pytest.warns(DeprecationWarning):
            config = resolve_engine_config(EngineConfig.fastest(), {"use_compiled": False})
        assert not config.use_compiled

    def test_executor_legacy_kwarg_warns_and_applies(self, unit_catalog):
        with pytest.warns(DeprecationWarning, match="use_batch"):
            executor = Executor(unit_catalog, use_batch=False)
        assert not executor.config.use_batch

    def test_planner_legacy_kwarg_warns_and_applies(self, unit_catalog):
        with pytest.warns(DeprecationWarning, match="use_indexes"):
            planner = Planner(unit_catalog, use_indexes=False)
        assert not planner.config.use_indexes

    def test_world_legacy_kwarg_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="use_mqo"):
            world = build_rts_world(5, with_physics=False, use_mqo=False)
        assert not world.config.use_mqo
        assert not world.use_mqo


class TestThreading:
    """One object, threaded through every layer unchanged."""

    def test_world_propagates_config_to_executor_and_planner(self):
        config = EngineConfig(use_mqo=False, auto_index=False)
        world = build_rts_world(5, with_physics=False, config=config)
        assert world.config is config
        assert world.executor.config is config
        assert world.executor.planner.config is config
        assert world.index_advisor is None  # auto_index off

    def test_advisor_tuning_comes_from_config(self):
        config = EngineConfig(index_create_after=2, index_evict_after=9)
        world = build_rts_world(5, with_physics=False, config=config)
        assert world.index_advisor is not None
        assert world.index_advisor.create_after == 2
        assert world.index_advisor.evict_after == 9

    def test_tick_counters_surface_active_config(self):
        config = EngineConfig.fastest()
        world = build_rts_world(5, with_physics=False, config=config)
        world.tick()
        counters = TickInspector(world).tick_counters()
        assert counters["engine_config"] == config.as_dict()
        assert counters["engine_config"]["use_compiled"] is True

    def test_kernel_lowering_requires_batch_path(self, unit_catalog):
        with_batch = Executor(unit_catalog, EngineConfig(use_compiled=True))
        without_batch = Executor(
            unit_catalog, EngineConfig(use_compiled=True, use_batch=False)
        )
        assert with_batch._kernel_lowering is not None
        assert without_batch._kernel_lowering is None
