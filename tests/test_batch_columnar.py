"""Batch (columnar) execution path: unit tests and row-path equivalence.

The batch path must be indistinguishable from the row path in results —
only faster.  These tests cover the :class:`ColumnBatch` container, the
compiled batch expressions, operator-level equivalence on synthetic plans,
and end-to-end equivalence on the rts / traffic / marketplace workloads.
"""

from __future__ import annotations

import random

import pytest

from repro import ExecutionMode
from repro.engine.algebra import (
    Aggregate,
    AggregateSpec,
    Join,
    Limit,
    Project,
    Select,
    Sort,
    SortKey,
    TableScan,
)
from repro.engine.batch import ColumnBatch, IndirectColumn
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.expressions import (
    BinaryOp,
    Conditional,
    FunctionCall,
    batch_supported,
    col,
    compile_batch,
    lit,
    resolve_batch_column,
)
from repro.engine.operators import BatchBridgeOp
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.workloads import build_rts_world, build_traffic_world
from repro.workloads.marketplace import build_marketplace_world


# -- ColumnBatch container ---------------------------------------------------------


def test_column_batch_roundtrip_and_selection():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 3, "b": "z"}]
    batch = ColumnBatch.from_rows(("a", "b"), rows)
    assert len(batch) == 3
    assert batch.to_rows() == rows
    picked = batch.with_selection([2, 0])
    assert len(picked) == 2
    assert picked.to_rows() == [{"a": 3, "b": "z"}, {"a": 1, "b": "x"}]
    # Compaction produces dense lists but identical rows.
    assert picked.compact().to_rows() == picked.to_rows()


def test_column_batch_qualify_shares_lists():
    batch = ColumnBatch.from_rows(("a",), [{"a": 1}, {"a": 2}])
    qualified = batch.qualify("u")
    assert qualified.names == ("u.a",)
    assert qualified.column("u.a") is batch.column("a")
    assert qualified.to_rows() == [{"u.a": 1}, {"u.a": 2}]


def test_indirect_column():
    indirect = IndirectColumn([10, 20, 30], [2, 0, 2])
    assert [indirect[k] for k in range(3)] == [30, 10, 30]


# -- compiled batch expressions -----------------------------------------------------


def _random_rows(n=200, seed=7):
    rng = random.Random(seed)
    return [
        {
            "x": rng.uniform(-10, 10),
            "y": rng.uniform(-10, 10),
            "n": rng.randint(0, 5),
            "maybe": None if rng.random() < 0.3 else rng.uniform(0, 1),
        }
        for _ in range(n)
    ]


@pytest.mark.parametrize(
    "expr",
    [
        col("x").gt(lit(0)).and_(col("y").le(lit(5))),
        col("x") + col("y") * lit(2),
        col("maybe").gt(lit(0.5)),
        (col("maybe") + lit(1)).eq(col("maybe") + lit(1)),
        Conditional(col("n").ge(lit(3)), col("x"), col("y")),
        FunctionCall("distance", [col("x"), col("y"), lit(0.0), lit(0.0)]),
        FunctionCall("size", [lit(None)]),
        BinaryOp("%", col("n"), lit(2)).eq(lit(0)).or_(col("x").lt(lit(-5))),
    ],
)
def test_compile_batch_matches_row_evaluation(expr):
    rows = _random_rows()
    names = ("x", "y", "n", "maybe")
    batch = ColumnBatch.from_rows(names, rows)
    assert batch_supported(expr, names)
    fn = compile_batch(expr, batch.columns)
    for i, row in enumerate(rows):
        assert fn(i) == expr.evaluate(row)


def test_resolve_batch_column_mirrors_row_fallback():
    names = ("u.x", "u.y", "v.x")
    assert resolve_batch_column("u.x", names) == "u.x"
    assert resolve_batch_column("y", names) == "u.y"
    assert resolve_batch_column("x", names) is None  # ambiguous: u.x vs v.x
    assert resolve_batch_column("z", names) is None


def test_batch_supported_rejects_unknown_columns():
    assert not batch_supported(col("missing").gt(lit(0)), ("a", "b"))
    assert batch_supported(col("missing").gt(lit(0)), ("a",), context={"missing": 1})


# -- operator-level equivalence on synthetic plans -----------------------------------


def _make_catalog(n=500, seed=11):
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "units",
        Schema(
            [
                Column("id", DataType.NUMBER),
                Column("player", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("hp", DataType.NUMBER, nullable=True),
            ]
        ),
    )
    for i in range(n):
        units.insert(
            {
                "id": i,
                "player": i % 3,
                "x": rng.uniform(0, 100),
                "hp": None if rng.random() < 0.1 else rng.uniform(0, 100),
            }
        )
    teams = catalog.create_table(
        "teams",
        Schema([Column("team", DataType.NUMBER), Column("bonus", DataType.NUMBER)]),
    )
    for p in range(2):  # deliberately missing team 2: exercises outer padding
        teams.insert({"team": p, "bonus": 10 * (p + 1)})
    return catalog


def _norm(rows):
    return sorted((tuple(sorted(r.items())) for r in rows), key=repr)


PLANS = {
    "filter-project": lambda: Project(
        Select(TableScan("units"), col("x").gt(lit(30)).and_(col("hp").gt(lit(20)))),
        [("id", col("id")), ("scaled", col("x") * lit(2))],
    ),
    "global-aggregate": lambda: Aggregate(
        Select(TableScan("units"), col("player").eq(lit(1))),
        [],
        [
            AggregateSpec("n", "count"),
            AggregateSpec("total", "sum", col("hp")),
            AggregateSpec("lo", "min", col("x")),
            AggregateSpec("hi", "max", col("x")),
            AggregateSpec("mean", "avg", col("hp")),
        ],
    ),
    "grouped-aggregate": lambda: Aggregate(
        TableScan("units"),
        ["player"],
        [
            AggregateSpec("n", "count"),
            AggregateSpec("hp", "sum", col("hp")),
            AggregateSpec("ids", "collect", col("id")),
            AggregateSpec("chosen", "choose", col("id")),
        ],
    ),
    "hash-join": lambda: Join(
        TableScan("units", alias="u"),
        TableScan("teams", alias="t"),
        col("u.player").eq(col("t.team")),
    ),
    "left-join-with-residual": lambda: Join(
        TableScan("units", alias="u"),
        TableScan("teams", alias="t"),
        col("u.player").eq(col("t.team")).and_(col("u.x").gt(lit(50))),
        how="left",
    ),
    "nested-loop-join": lambda: Join(
        Select(TableScan("units", alias="u"), col("u.id").lt(lit(40))),
        Select(TableScan("teams", alias="t"), lit(True)),
        BinaryOp("!=", col("u.player"), col("t.team")),
    ),
    "cross-join": lambda: Join(
        Select(TableScan("units", alias="u"), col("u.id").lt(lit(10))),
        TableScan("teams", alias="t"),
        None,
        how="cross",
    ),
    "join-then-aggregate": lambda: Aggregate(
        Join(
            TableScan("units", alias="u"),
            TableScan("teams", alias="t"),
            col("u.player").eq(col("t.team")),
        ),
        ["t.team"],
        [AggregateSpec("n", "count"), AggregateSpec("power", "sum", col("u.hp") + col("t.bonus"))],
    ),
    # Sort/Limit stay on the row path but their subtree should still batch.
    "sort-limit-above-batch": lambda: Limit(
        Sort(
            Select(TableScan("units"), col("x").gt(lit(60))),
            [SortKey(col("x")), SortKey(col("id"))],
        ),
        25,
    ),
}


@pytest.mark.parametrize("name", sorted(PLANS))
def test_batch_row_equivalence(name):
    catalog = _make_catalog()
    plan = PLANS[name]()
    row_rows = Executor(catalog, use_batch=False).execute(plan).rows
    batch_rows = Executor(catalog, use_batch=True).execute(plan).rows
    assert _norm(batch_rows) == _norm(row_rows)


def test_order_sensitive_equivalence():
    """first/last/collect aggregates observe input order: must match exactly."""
    catalog = _make_catalog()
    plan = Aggregate(
        Select(TableScan("units"), col("x").gt(lit(20))),
        ["player"],
        [
            AggregateSpec("first_id", "first", col("id")),
            AggregateSpec("last_id", "last", col("id")),
            AggregateSpec("ids", "collect", col("id")),
        ],
    )
    row_rows = Executor(catalog, use_batch=False).execute(plan).rows
    batch_rows = Executor(catalog, use_batch=True).execute(plan).rows
    assert _norm(batch_rows) == _norm(row_rows)


def test_batch_path_is_chosen_and_flagged():
    catalog = _make_catalog()
    plan = PLANS["filter-project"]()
    executor = Executor(catalog, use_batch=True)
    planned = executor.prepare(plan)
    assert planned.uses_batch
    assert isinstance(planned.physical, BatchBridgeOp)
    assert "Batch" in planned.physical.explain()
    row_planned = Executor(catalog, use_batch=False).prepare(plan)
    assert not row_planned.uses_batch


def test_batch_cache_invalidated_on_mutation():
    catalog = _make_catalog(n=10)
    table = catalog.table("units")
    first = table.to_batch()
    assert first is table.to_batch()  # cached while the version is stable
    table.insert({"id": 1000, "player": 0, "x": 1.0, "hp": 1.0})
    second = table.to_batch()
    assert second is not first
    assert len(second) == 11


def test_empty_table_aggregate_identity():
    catalog = Catalog()
    catalog.create_table("empty", Schema([Column("v", DataType.NUMBER)]))
    plan = Aggregate(
        TableScan("empty"),
        [],
        [AggregateSpec("n", "count"), AggregateSpec("s", "sum", col("v"))],
    )
    for use_batch in (False, True):
        rows = Executor(catalog, use_batch=use_batch).execute(plan).rows
        assert rows == [{"n": 0, "s": 0}]


# -- end-to-end workload equivalence -------------------------------------------------


def _state_snapshot(world):
    out = {}
    for name in sorted(world.catalog.table_names()):
        table = world.catalog.table(name)
        out[name] = sorted(tuple(sorted(r.items())) for r in table.rows())
    return out


def _assert_world_equivalence(make_world, ticks=3):
    batch_world = make_world(use_batch=True)
    row_world = make_world(use_batch=False)
    for _ in range(ticks):
        batch_world.tick()
        row_world.tick()
    assert _state_snapshot(batch_world) == _state_snapshot(row_world)
    return batch_world


def test_rts_workload_equivalence():
    world = _assert_world_equivalence(
        lambda use_batch: build_rts_world(
            60, mode=ExecutionMode.COMPILED, use_batch=use_batch
        )
    )
    # The tick queries should actually exercise the batch path somewhere.
    assert any(entry["batch"] for entry in world.executor.cache_report())


def test_traffic_workload_equivalence():
    _assert_world_equivalence(
        lambda use_batch: build_traffic_world(80, use_batch=use_batch)
    )


def test_marketplace_workload_equivalence():
    _assert_world_equivalence(
        lambda use_batch: build_marketplace_world(30, use_batch=use_batch)
    )
