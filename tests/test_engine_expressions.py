"""Unit tests for scalar expressions."""

from __future__ import annotations

import pytest

from repro.engine import (
    BinaryOp,
    Conditional,
    FunctionCall,
    Literal,
    SetLiteral,
    UnaryOp,
    Variable,
    and_all,
    col,
    lit,
    var,
)
from repro.engine.errors import ExpressionError
from repro.engine.types import DataType

ROW = {"x": 4.0, "y": 3.0, "name": "bob", "flag": True, "missing": None}


class TestEvaluation:
    def test_arithmetic(self):
        assert (col("x") + col("y")).evaluate(ROW) == 7.0
        assert (col("x") - lit(1)).evaluate(ROW) == 3.0
        assert (col("x") * lit(2)).evaluate(ROW) == 8.0
        assert (col("x") / lit(2)).evaluate(ROW) == 2.0

    def test_division_by_zero_is_null(self):
        assert (col("x") / lit(0)).evaluate(ROW) is None

    def test_comparisons(self):
        assert col("x").gt(col("y")).evaluate(ROW) is True
        assert col("x").le(lit(4)).evaluate(ROW) is True
        assert col("x").eq(lit(5)).evaluate(ROW) is False
        assert col("name").ne(lit("alice")).evaluate(ROW) is True

    def test_null_propagation_in_arithmetic(self):
        assert (col("missing") + lit(1)).evaluate(ROW) is None
        assert UnaryOp("-", col("missing")).evaluate(ROW) is None

    def test_boolean_connectives_short_circuit(self):
        expr = BinaryOp("&&", col("flag"), col("x").gt(lit(0)))
        assert expr.evaluate(ROW) is True
        expr = BinaryOp("||", col("flag"), col("does_not_exist").gt(lit(0)))
        assert expr.evaluate(ROW) is True  # right side never evaluated

    def test_unary_not(self):
        assert UnaryOp("!", col("flag")).evaluate(ROW) is False

    def test_conditional(self):
        expr = Conditional(col("x").gt(lit(0)), lit("pos"), lit("neg"))
        assert expr.evaluate(ROW) == "pos"

    def test_functions(self):
        assert FunctionCall("sqrt", [lit(16)]).evaluate({}) == 4
        assert FunctionCall("min", [lit(3), lit(5)]).evaluate({}) == 3
        assert FunctionCall("distance", [lit(0), lit(0), lit(3), lit(4)]).evaluate({}) == 5
        assert FunctionCall("clamp", [lit(10), lit(0), lit(5)]).evaluate({}) == 5
        assert FunctionCall("size", [lit(frozenset({1, 2}))]).evaluate({}) == 2
        assert FunctionCall("contains", [lit(frozenset({1})), lit(1)]).evaluate({}) is True

    def test_function_null_argument_returns_null(self):
        assert FunctionCall("sqrt", [col("missing")]).evaluate(ROW) is None

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            FunctionCall("frobnicate", [])

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("**", lit(1), lit(2))
        with pytest.raises(ExpressionError):
            UnaryOp("~", lit(1))

    def test_set_literal(self):
        assert SetLiteral([lit(1), col("x")]).evaluate(ROW) == frozenset({1, 4.0})

    def test_variable_resolution(self):
        assert var("v").evaluate({}, {"v": 9}) == 9
        assert var("x").evaluate(ROW) == 4.0
        with pytest.raises(ExpressionError):
            var("unbound").evaluate({})

    def test_unknown_column_raises(self):
        with pytest.raises(ExpressionError):
            col("nope").evaluate(ROW)

    def test_qualified_column_fallback(self):
        assert col("x").evaluate({"u.x": 7}) == 7
        assert col("u.x").evaluate({"u.x": 7}) == 7


class TestStructure:
    def test_columns_and_variables(self):
        expr = (col("a") + col("b")).gt(var("t"))
        assert expr.columns() == {"a", "b"}
        assert expr.variables() == {"t"}

    def test_substitute(self):
        expr = col("a").gt(lit(3))
        replaced = expr.substitute({"a": col("u.a")})
        assert replaced.columns() == {"u.a"}
        assert expr.columns() == {"a"}  # original untouched

    def test_rename_columns(self):
        expr = col("a").eq(col("b"))
        renamed = expr.rename_columns({"a": "x"})
        assert renamed.columns() == {"x", "b"}

    def test_conjuncts_flattening(self):
        expr = BinaryOp("&&", BinaryOp("&&", lit(True), col("a").gt(lit(0))), col("b").lt(lit(1)))
        conjuncts = expr.conjuncts()
        assert len(conjuncts) == 3

    def test_and_all(self):
        assert and_all([]).evaluate({}) is True
        combined = and_all([col("x").gt(lit(0)), col("y").gt(lit(0))])
        assert combined.evaluate(ROW) is True

    def test_result_types(self):
        assert col("x").gt(lit(1)).result_type() is DataType.BOOL
        assert (col("x") + lit(1)).result_type() is DataType.NUMBER
        assert SetLiteral([]).result_type() is DataType.SET
        assert lit("s").result_type() is DataType.STRING

    def test_equality_and_hash(self):
        assert col("x").eq(lit(1)) == col("x").eq(lit(1))
        assert hash(col("x")) == hash(col("x"))
        assert col("x") != col("y")
        assert lit(1) != lit(2)

    def test_repr_is_readable(self):
        assert "x" in repr(col("x").gt(lit(3)))
