"""Equivalence of compiled vs. interpreted execution, plus workload sanity.

The central correctness claim of the paper's architecture is that compiling
imperative scripts to relational plans preserves their per-object
semantics.  These tests run the same programs both ways — including a
hypothesis-generated sweep over world sizes and random seeds — and require
identical post-tick state.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import ExecutionMode, GameWorld
from repro.workloads import (
    build_marketplace_world,
    build_particle_world,
    build_rts_world,
    build_traffic_world,
    unit_positions,
)


def state_fingerprint(world: GameWorld, class_name: str, attributes: list[str]):
    rows = world.objects(class_name)
    return sorted(
        (row["id"], tuple(round(float(row[a]), 9) for a in attributes)) for row in rows
    )


class TestCompiledInterpretedEquivalence:
    def test_rts_combat_equivalence(self):
        worlds = [
            build_rts_world(80, mode=mode, seed=3, with_physics=True)
            for mode in (ExecutionMode.COMPILED, ExecutionMode.INTERPRETED)
        ]
        for _ in range(3):
            for world in worlds:
                world.tick()
        fingerprints = [
            state_fingerprint(w, "Unit", ["health", "x", "y"]) for w in worlds
        ]
        assert fingerprints[0] == fingerprints[1]

    def test_traffic_equivalence(self):
        worlds = [
            build_traffic_world(50, mode=mode)
            for mode in (ExecutionMode.COMPILED, ExecutionMode.INTERPRETED)
        ]
        for _ in range(4):
            for world in worlds:
                world.tick()
        assert state_fingerprint(worlds[0], "Vehicle", ["position", "velocity"]) == state_fingerprint(
            worlds[1], "Vehicle", ["position", "velocity"]
        )

    def test_particles_equivalence(self):
        worlds = [
            build_particle_world(60, mode=mode)
            for mode in (ExecutionMode.COMPILED, ExecutionMode.INTERPRETED)
        ]
        for world in worlds:
            world.tick()
        assert state_fingerprint(worlds[0], "Particle", ["x", "y"]) == state_fingerprint(
            worlds[1], "Particle", ["x", "y"]
        )

    def test_marketplace_equivalence(self):
        worlds = [
            build_marketplace_world(12, buyers_per_item=3, seller_stock=2, mode=mode)
            for mode in (ExecutionMode.COMPILED, ExecutionMode.INTERPRETED)
        ]
        for _ in range(2):
            for world in worlds:
                world.tick()
        assert state_fingerprint(worlds[0], "Trader", ["gold", "stock"]) == state_fingerprint(
            worlds[1], "Trader", ["gold", "stock"]
        )

    @settings(max_examples=8, deadline=None)
    @given(
        n_units=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_equivalence_property_over_random_worlds(self, n_units, seed):
        source = """
        class Unit {
          state:
            number player = 0;
            number x = 0;
            number y = 0;
            number health = 100;
            number range = 6;
          effects:
            number damage : sum;
        }
        script brawl(Unit self) {
          accum number hits with sum over Unit u from Unit {
            if (u.x >= x - range && u.x <= x + range &&
                u.y >= y - range && u.y <= y + range && u.player != player) {
              hits <- 1;
            }
          } in {
            if (hits > 0) { damage <- hits; }
          }
        }
        """
        rng = random.Random(seed)
        rows = [
            {"player": i % 2, "x": rng.uniform(0, 25), "y": rng.uniform(0, 25)}
            for i in range(n_units)
        ]

        def run(mode):
            world = GameWorld(source, mode=mode)
            world.add_update_rule("Unit", "health", lambda s, e: s["health"] - e.get("damage", 0))
            world.spawn_many("Unit", rows)
            world.tick()
            return state_fingerprint(world, "Unit", ["health"])

        assert run(ExecutionMode.COMPILED) == run(ExecutionMode.INTERPRETED)


class TestWorkloads:
    def test_rts_world_damage_flows(self):
        world = build_rts_world(60, seed=1)
        before = sum(u["health"] for u in world.objects("Unit"))
        world.run(2)
        after = sum(u["health"] for u in world.objects("Unit"))
        assert after < before

    def test_traffic_vehicles_keep_moving_and_wrap(self):
        world = build_traffic_world(40, road_length=200.0)
        world.run(5)
        positions = [v["position"] for v in world.objects("Vehicle")]
        assert all(0 <= p <= 200.0 for p in positions)
        assert any(v["velocity"] > 0 for v in world.objects("Vehicle"))

    def test_traffic_braking_behaviour(self):
        # A vehicle right behind another one must brake to velocity 0.
        world = build_traffic_world(2, n_lanes=1, road_length=100.0)
        world.set_state("Vehicle", 0, position=10.0, velocity=2.0)
        world.set_state("Vehicle", 1, position=12.0, velocity=0.5)
        world.tick()
        assert world.get_object("Vehicle", 0)["velocity"] == 0

    def test_particles_fall_without_attractors(self):
        world = build_particle_world(10, seed=2)
        # Remove attractor status so gravity default (-1 on vy) applies.
        for particle in world.objects("Particle"):
            world.set_state("Particle", particle["id"], attractor=0)
        before = [p["y"] for p in world.objects("Particle")]
        world.tick()
        after = [p["y"] for p in world.objects("Particle")]
        assert all(a <= b for a, b in zip(after, before))

    def test_state_switching_distributions_differ(self):
        exploring = unit_positions(200, "exploring", seed=1)
        fighting = unit_positions(200, "fighting", seed=1)
        spread_e = max(u["x"] for u in exploring) - min(u["x"] for u in exploring)
        spread_f = max(u["x"] for u in fighting) - min(u["x"] for u in fighting)
        assert spread_f < spread_e / 3
        with pytest.raises(ValueError):
            unit_positions(10, "bogus")

    def test_marketplace_buyers_stop_when_broke(self):
        world = build_marketplace_world(4, buyers_per_item=1, seller_stock=100, buyer_gold=25.0, price=10.0)
        world.run(5)
        buyers = [t for t in world.objects("Trader") if t["is_seller"] == 0]
        # 25 gold at price 10 allows exactly 2 purchases per buyer.
        assert all(b["stock"] == 2 for b in buyers)
        assert all(b["gold"] >= 0 for b in buyers)
