"""Tests for the runtime: effects, update components, physics, pathfinding,
transactions, the world tick loop, multi-tick scheduling, reactive handlers
and the debugging tools."""

from __future__ import annotations

import pytest

from repro import ExecutionMode, GameWorld
from repro.engine.errors import ConstraintViolation
from repro.runtime import (
    EffectStore,
    ExpressionUpdater,
    GridMap,
    Handler,
    OwnershipRegistry,
    PathfindingComponent,
    PathfindingConfig,
    PhysicsComponent,
    PhysicsConfig,
    StateUpdate,
    TransactionEngine,
    UpdateRule,
    astar,
)
from repro.runtime.debug import TickInspector, TickLogger, explain_script_plans
from repro.sgl import parse_program
from repro.sgl.ir import EffectAssignment
from repro.workloads import build_marketplace_world

CLASSES_SOURCE = """
class Unit {
  state:
    number x = 0;
    number y = 0;
    number health = 100;
  effects:
    number damage : sum;
    number vx : avg;
    number vy : avg;
    set loot : union;
}
"""


def unit_classes():
    program = parse_program(CLASSES_SOURCE)
    return {decl.name: decl for decl in program.classes}


class TestEffectStore:
    def test_combines_with_declared_combinators(self):
        store = EffectStore(unit_classes())
        store.add(EffectAssignment("Unit", 1, "damage", 3))
        store.add(EffectAssignment("Unit", 1, "damage", 4))
        store.add(EffectAssignment("Unit", 1, "vx", 2))
        store.add(EffectAssignment("Unit", 1, "vx", 4))
        combined = store.combine()
        assert combined.value("Unit", 1, "damage") == 7
        assert combined.value("Unit", 1, "vx") == 3
        assert combined.assignment_counts[("Unit", 1)]["damage"] == 2

    def test_set_insert_uses_union(self):
        store = EffectStore(unit_classes())
        store.add(EffectAssignment("Unit", 1, "loot", "sword", set_insert=True))
        store.add(EffectAssignment("Unit", 1, "loot", "shield", set_insert=True))
        assert store.combine().value("Unit", 1, "loot") == frozenset({"sword", "shield"})

    def test_unknown_effect_defaults_to_choose(self):
        store = EffectStore(unit_classes())
        store.add(EffectAssignment("Unit", 1, "synthetic", 9))
        store.add(EffectAssignment("Unit", 1, "synthetic", 2))
        assert store.combine().value("Unit", 1, "synthetic") == 2


class TestUpdateComponents:
    def make_view(self, rows):
        class View:
            def objects(self, class_name):
                return rows

            def get_object(self, class_name, object_id):
                for row in rows:
                    if row["id"] == object_id:
                        return row
                return None

            def class_names(self):
                return ["Unit"]

        return View()

    def test_expression_updater_rule(self):
        updater = ExpressionUpdater().rule(
            "Unit", "health", lambda state, effects: state["health"] - effects.get("damage", 0)
        )
        store = EffectStore(unit_classes())
        store.add(EffectAssignment("Unit", 1, "damage", 30))
        updates = updater.compute_updates(
            self.make_view([{"id": 1, "health": 100}]), store.combine()
        )
        assert updates == [StateUpdate("Unit", 1, "health", 70)]

    def test_ownership_partitioning_enforced(self):
        registry = OwnershipRegistry()
        registry.register(ExpressionUpdater([UpdateRule("Unit", "health", lambda s, e: 1)]))
        with pytest.raises(ConstraintViolation):
            registry.register(ExpressionUpdater([UpdateRule("Unit", "health", lambda s, e: 2)]))

    def test_component_cannot_write_unowned_attribute(self):
        registry = OwnershipRegistry()

        class Rogue(ExpressionUpdater):
            def compute_updates(self, state, effects):
                return [StateUpdate("Unit", 1, "not_owned", 1)]

        rogue = Rogue([UpdateRule("Unit", "health", lambda s, e: 1)])
        registry.register(rogue)
        with pytest.raises(ConstraintViolation):
            registry.compute_all(self.make_view([{"id": 1, "health": 1}]), EffectStore(unit_classes()).combine())


class TestPhysics:
    def test_velocity_integration_and_bounds(self):
        physics = PhysicsComponent(PhysicsConfig(world_max_x=10, world_max_y=10))
        store = EffectStore(unit_classes())
        store.add(EffectAssignment("Unit", 1, "vx", 4))
        store.add(EffectAssignment("Unit", 1, "vy", 50))
        view = TestUpdateComponents().make_view([{"id": 1, "x": 5.0, "y": 5.0}])
        updates = {(u.object_id, u.attribute): u.value for u in physics.compute_updates(view, store.combine())}
        assert updates[(1, "x")] == 9.0
        assert updates[(1, "y")] == 10.0  # clamped to world bounds

    def test_collision_resolution_separates_stacked_objects(self):
        physics = PhysicsComponent(PhysicsConfig(collision_radius=1.0, world_max_x=100, world_max_y=100))
        view = TestUpdateComponents().make_view(
            [{"id": 1, "x": 10.0, "y": 10.0}, {"id": 2, "x": 10.5, "y": 10.0}]
        )
        updates = physics.compute_updates(view, EffectStore(unit_classes()).combine())
        positions = {}
        for update in updates:
            positions.setdefault(update.object_id, {})[update.attribute] = update.value
        dx = abs(positions[1]["x"] - positions[2]["x"])
        dy = abs(positions[1]["y"] - positions[2]["y"])
        assert max(dx, dy) >= 1.9  # pushed roughly two radii apart
        assert physics.last_collisions

    def test_max_speed_clamp(self):
        physics = PhysicsComponent(PhysicsConfig(max_speed=1.0))
        store = EffectStore(unit_classes())
        store.add(EffectAssignment("Unit", 1, "vx", 10))
        view = TestUpdateComponents().make_view([{"id": 1, "x": 0.0, "y": 0.0}])
        updates = {u.attribute: u.value for u in physics.compute_updates(view, store.combine())}
        assert updates["x"] == pytest.approx(1.0)


class TestPathfinding:
    def test_astar_routes_around_obstacles(self):
        grid = GridMap(10, 10)
        grid.add_obstacle_rect(4, 0, 4, 8)
        path = astar(grid, (0, 0), (9, 0))
        assert path is not None
        assert path[0] == (0, 0) and path[-1] == (9, 0)
        assert all(cell not in grid.obstacles for cell in path)
        assert len(path) > 11  # forced detour around the wall

    def test_astar_unreachable_returns_none(self):
        grid = GridMap(5, 5)
        grid.add_obstacle_rect(2, 0, 2, 4)
        assert astar(grid, (0, 0), (4, 0)) is None

    def test_component_moves_toward_goal(self):
        grid = GridMap(20, 20)
        component = PathfindingComponent(grid, PathfindingConfig(speed=2))
        view = TestUpdateComponents().make_view(
            [{"id": 1, "x": 0.0, "y": 0.0, "goal_x": 5.0, "goal_y": 0.0}]
        )
        updates = {u.attribute: u.value for u in component.compute_updates(view, EffectStore(unit_classes()).combine())}
        assert updates["x"] == 2.0
        assert component.plans_computed == 1


class TestWorldTick:
    def test_compiled_and_interpreted_agree(self, simple_game_source):
        import random

        def build(mode):
            world = GameWorld(simple_game_source, mode=mode)
            world.add_update_rule(
                "Unit", "health", lambda s, e: s["health"] - e.get("damage", 0)
            )
            rng = random.Random(5)
            for i in range(60):
                world.spawn("Unit", player=i % 2, x=rng.uniform(0, 30), y=rng.uniform(0, 30))
            return world

        compiled = build(ExecutionMode.COMPILED)
        interpreted = build(ExecutionMode.INTERPRETED)
        for _ in range(3):
            compiled.tick()
            interpreted.tick()
        healths_c = sorted((o["id"], o["health"]) for o in compiled.objects("Unit"))
        healths_i = sorted((o["id"], o["health"]) for o in interpreted.objects("Unit"))
        assert healths_c == healths_i

    def test_state_frozen_during_effect_step(self, simple_game_source):
        world = GameWorld(simple_game_source)
        world.spawn("Unit", x=1, y=1)
        world.tick()
        # After the tick the tables must be thawed again.
        world.set_state("Unit", 0, x=5)
        assert world.get_object("Unit", 0)["x"] == 5

    def test_spawn_destroy_and_unknown_field(self, simple_game_source):
        world = GameWorld(simple_game_source)
        oid = world.spawn("Unit", x=3)
        assert world.count("Unit") == 1
        with pytest.raises(Exception):
            world.spawn("Unit", bogus=1)
        world.destroy("Unit", oid)
        assert world.count("Unit") == 0

    def test_multi_tick_script_advances_pc(self):
        source = """
        class Walker {
          state: number x = 0; number y = 0;
          effects: number vx : sum; number vy : sum;
        }
        script patrol(Walker self) {
          vx <- 1;
          waitNextTick;
          vy <- 1;
        }
        """
        world = GameWorld(source, mode=ExecutionMode.COMPILED)
        world.add_update_rule("Walker", "x", lambda s, e: s["x"] + e.get("vx", 0))
        world.add_update_rule("Walker", "y", lambda s, e: s["y"] + e.get("vy", 0))
        world.spawn("Walker")
        world.run(4)
        obj = world.get_object("Walker", 0)
        # Segments alternate: ticks 0,2 move x; ticks 1,3 move y.
        assert obj["x"] == 2 and obj["y"] == 2

    def test_reactive_handler_effects_and_interrupt(self):
        source = """
        class Guard {
          state: number x = 0; number alarm = 0; number hp = 10;
          effects: number vx : sum; number dmg : sum;
        }
        script wander(Guard self) {
          vx <- 1;
          waitNextTick;
          vx <- 1;
          waitNextTick;
          vx <- 1;
        }
        """
        world = GameWorld(source, mode=ExecutionMode.INTERPRETED)
        world.add_update_rule("Guard", "x", lambda s, e: s["x"] + e.get("vx", 0))
        world.add_update_rule("Guard", "hp", lambda s, e: s["hp"] - e.get("dmg", 0))
        world.add_handler(
            Handler(
                name="hurt",
                class_name="Guard",
                condition=lambda row: row["hp"] < 10,
                action=lambda row: [EffectAssignment("Guard", row["id"], "vx", -5)],
                interrupts=("wander",),
            )
        )
        world.spawn("Guard")
        world.tick()
        assert world.reports[-1].handlers_fired == 0
        world.set_state("Guard", 0, hp=5)
        report = world.tick()
        assert report.handlers_fired == 1
        # The queued effect applies next tick, and the pc was reset to 0.
        before_x = world.get_object("Guard", 0)["x"]
        world.tick()
        assert world.get_object("Guard", 0)["x"] == before_x - 5 + 1
        assert world.get_object("Guard", 0)["__pc_wander"] in (0, 1)

    def test_vertical_layout_world_matches_single(self, simple_game_source):
        from repro.sgl import SchemaLayout
        import random

        def build(layout):
            world = GameWorld(simple_game_source, mode=ExecutionMode.COMPILED, layout=layout)
            world.add_update_rule("Unit", "health", lambda s, e: s["health"] - e.get("damage", 0))
            rng = random.Random(2)
            for i in range(40):
                world.spawn("Unit", player=i % 2, x=rng.uniform(0, 20), y=rng.uniform(0, 20))
            return world

        single = build(SchemaLayout.SINGLE)
        vertical = build(SchemaLayout.VERTICAL)
        single.tick()
        vertical.tick()
        assert sorted((o["id"], o["health"]) for o in single.objects("Unit")) == sorted(
            (o["id"], o["health"]) for o in vertical.objects("Unit")
        )


class TestTransactionsEndToEnd:
    @pytest.mark.parametrize("mode", [ExecutionMode.INTERPRETED, ExecutionMode.COMPILED])
    def test_no_duping_or_negative_balances(self, mode):
        world = build_marketplace_world(16, buyers_per_item=4, seller_stock=2, mode=mode)
        total_stock_before = sum(o["stock"] for o in world.objects("Trader"))
        total_gold_before = sum(o["gold"] for o in world.objects("Trader"))
        for _ in range(3):
            report = world.tick()
        traders = world.objects("Trader")
        assert all(t["stock"] >= 0 for t in traders)
        assert all(t["gold"] >= -1e-9 for t in traders)
        # Items and gold are conserved: exchanges only move them around.
        assert sum(t["stock"] for t in traders) == total_stock_before
        assert sum(t["gold"] for t in traders) == pytest.approx(total_gold_before)
        assert world.last_transaction_report.abort_count + world.last_transaction_report.commit_count == report.transactions_submitted

    def test_contention_increases_abort_rate(self):
        low = build_marketplace_world(8, buyers_per_item=1, seller_stock=2)
        high = build_marketplace_world(8, buyers_per_item=8, seller_stock=2)
        low.tick()
        high.tick()
        assert high.last_transaction_report.abort_rate > low.last_transaction_report.abort_rate


class TestDebugTools:
    def test_inspector_state_diff_and_effect_trace(self, simple_game_source):
        world = GameWorld(simple_game_source)
        world.add_update_rule("Unit", "health", lambda s, e: s["health"] - e.get("damage", 0))
        world.spawn("Unit", player=0, x=0, y=0)
        world.spawn("Unit", player=1, x=1, y=1)
        inspector = TickInspector(world)
        baseline = inspector.capture_baseline()
        world.tick()
        diff = inspector.diff_since(baseline)
        assert diff["Unit"][0]["health"] == (100, 99)
        trace = inspector.effects_of("Unit", 0)
        assert trace.values["damage"] == 1
        assert "damage" in str(trace)
        assert inspector.table_summary()["Unit"] == 2

    def test_explain_script_plans_mentions_effect(self, simple_game_source):
        world = GameWorld(simple_game_source)
        world.spawn("Unit")
        text = explain_script_plans(world, "brawl")
        assert "Unit.damage" in text
        assert "TableScan" in text

    def test_logger_checkpoints_and_rewind(self, simple_game_source):
        world = GameWorld(simple_game_source, mode=ExecutionMode.INTERPRETED)
        world.add_update_rule("Unit", "health", lambda s, e: s["health"] - e.get("damage", 0))
        world.spawn("Unit", player=0, x=0, y=0)
        world.spawn("Unit", player=1, x=1, y=1)
        logger = TickLogger(world, checkpoint_every=2)
        logger.run(5)
        health_at_5 = world.get_object("Unit", 0)["health"]
        logger.rewind_to(3)
        assert world.tick_count == 3
        assert world.get_object("Unit", 0)["health"] == 100 - 3
        # Re-running forward reproduces the same trajectory.
        world.run(2)
        assert world.get_object("Unit", 0)["health"] == health_at_5
