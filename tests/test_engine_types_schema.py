"""Unit tests for column types, coercion and schemas."""

from __future__ import annotations

import pytest

from repro.engine import Column, DataType, Ref, Schema
from repro.engine.errors import SchemaError, TypeMismatchError
from repro.engine.types import coerce_value, default_value, is_valid, type_of_value


class TestDataTypes:
    def test_default_values(self):
        assert default_value(DataType.NUMBER) == 0
        assert default_value(DataType.BOOL) is False
        assert default_value(DataType.STRING) == ""
        assert default_value(DataType.REF) is None
        assert default_value(DataType.SET) == frozenset()

    def test_is_valid_accepts_null_everywhere(self):
        for dtype in DataType:
            assert is_valid(dtype, None)

    def test_is_valid_number(self):
        assert is_valid(DataType.NUMBER, 3)
        assert is_valid(DataType.NUMBER, 3.5)
        assert not is_valid(DataType.NUMBER, True)
        assert not is_valid(DataType.NUMBER, "3")

    def test_is_valid_set_and_ref(self):
        assert is_valid(DataType.SET, {1, 2})
        assert is_valid(DataType.REF, Ref("Unit", 3))
        assert is_valid(DataType.REF, 7)
        assert not is_valid(DataType.REF, "Unit#3")

    def test_coerce_number_rejects_bool_and_nan(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(DataType.NUMBER, True)
        with pytest.raises(TypeMismatchError):
            coerce_value(DataType.NUMBER, float("nan"))

    def test_coerce_set_freezes(self):
        out = coerce_value(DataType.SET, [1, 2, 2])
        assert out == frozenset({1, 2})
        assert isinstance(out, frozenset)

    def test_coerce_string_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(DataType.STRING, 3)

    def test_type_of_value(self):
        assert type_of_value(1) is DataType.NUMBER
        assert type_of_value(True) is DataType.BOOL
        assert type_of_value("x") is DataType.STRING
        assert type_of_value(Ref("Unit", 1)) is DataType.REF
        assert type_of_value(frozenset()) is DataType.SET

    def test_ref_equality_and_hash(self):
        assert Ref("Unit", 1) == Ref("Unit", 1)
        assert Ref("Unit", 1) != Ref("Unit", 2)
        assert Ref("Unit", 1) != Ref("Item", 1)
        assert len({Ref("Unit", 1), Ref("Unit", 1)}) == 1


class TestSchema:
    def make(self) -> Schema:
        return Schema(
            [
                Column("id", DataType.NUMBER, nullable=False),
                Column("x", DataType.NUMBER),
                Column("name", DataType.STRING),
            ]
        )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a"), Column("a")])

    def test_lookup_and_contains(self):
        schema = self.make()
        assert "x" in schema
        assert "missing" not in schema
        assert schema.index_of("name") == 2
        assert schema.column("id").nullable is False

    def test_qualify_and_resolve_unqualified(self):
        schema = self.make().qualify("u")
        assert schema.names == ("u.id", "u.x", "u.name")
        assert schema.resolve("x") == "u.x"
        assert schema.column("x").name == "u.x"

    def test_resolve_ambiguous_raises(self):
        schema = self.make().qualify("a").concat(self.make().qualify("b"))
        with pytest.raises(SchemaError):
            schema.resolve("x")
        assert schema.resolve("a.x") == "a.x"

    def test_concat_collision_raises(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.concat(schema)

    def test_project_rename_drop_add(self):
        schema = self.make()
        assert schema.project(["x"]).names == ("x",)
        assert schema.rename({"x": "pos_x"}).names == ("id", "pos_x", "name")
        assert schema.drop(["name"]).names == ("id", "x")
        assert schema.add(Column("extra")).names[-1] == "extra"

    def test_new_row_defaults_and_validation(self):
        schema = self.make()
        row = schema.new_row({"id": 1})
        assert row == {"id": 1, "x": 0, "name": ""}
        with pytest.raises(SchemaError):
            schema.new_row({"id": 1, "bogus": 2})
        with pytest.raises(TypeMismatchError):
            schema.new_row({"id": 1, "x": "not a number"})

    def test_new_row_missing_non_nullable(self):
        schema = Schema([Column("id", DataType.REF, nullable=False)])
        with pytest.raises(SchemaError):
            schema.new_row({})

    def test_validate_row(self):
        schema = self.make()
        schema.validate_row({"id": 1, "x": 2.0, "name": "a"})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "x": 2.0})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": None, "x": 2.0, "name": "a"})
        with pytest.raises(TypeMismatchError):
            schema.validate_row({"id": 1, "x": "bad", "name": "a"})

    def test_equality_and_iteration(self):
        assert self.make() == self.make()
        assert [c.name for c in self.make()] == ["id", "x", "name"]
        assert len(self.make()) == 3

    def test_unqualified_name_property(self):
        column = Column("u.x")
        assert column.unqualified_name == "x"
        assert column.qualified("v").name == "v.x"
