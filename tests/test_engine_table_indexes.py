"""Tests for tables, index maintenance, statistics and the catalog."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Catalog, Column, DataType, Schema, Table
from repro.engine.errors import CatalogError, ExecutionError
from repro.engine.indexes import GridIndex, HashIndex, KdTreeIndex, RangeTreeIndex, SortedIndex
from repro.engine.statistics import estimate_selectivity
from repro.engine.expressions import col, lit


def make_table() -> Table:
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
            Column("team", DataType.NUMBER),
        ]
    )
    return Table("unit", schema, key="id")


class TestTable:
    def test_insert_get_update_delete(self):
        table = make_table()
        rowid = table.insert({"id": 1, "x": 2, "y": 3, "team": 0})
        assert table.get(rowid)["x"] == 2
        table.update(rowid, {"x": 9})
        assert table.get_by_key(1)["x"] == 9
        table.delete(rowid)
        assert len(table) == 0
        assert table.get_by_key(1) is None

    def test_duplicate_key_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        with pytest.raises(ExecutionError):
            table.insert({"id": 1})

    def test_update_key_maintains_key_map(self):
        table = make_table()
        rowid = table.insert({"id": 1, "x": 5})
        table.update(rowid, {"id": 2})
        assert table.get_by_key(2)["x"] == 5
        assert table.get_by_key(1) is None

    def test_freeze_blocks_writes(self):
        table = make_table()
        table.insert({"id": 1})
        table.freeze()
        with pytest.raises(ExecutionError):
            table.insert({"id": 2})
        with pytest.raises(ExecutionError):
            table.update(0, {"x": 1})
        table.thaw()
        table.insert({"id": 2})

    def test_snapshot_restore(self):
        table = make_table()
        table.insert({"id": 1, "x": 1})
        snapshot = table.snapshot()
        table.update_by_key(1, {"x": 99})
        table.insert({"id": 2})
        table.restore(snapshot)
        assert len(table) == 1
        assert table.get_by_key(1)["x"] == 1

    def test_delete_where_and_clear(self):
        table = make_table()
        for i in range(10):
            table.insert({"id": i, "team": i % 2})
        removed = table.delete_where(lambda row: row["team"] == 1)
        assert removed == 5
        table.clear()
        assert len(table) == 0

    def test_version_increments(self):
        table = make_table()
        v0 = table.version
        table.insert({"id": 1})
        assert table.version > v0

    def test_scan_returns_copies(self):
        table = make_table()
        table.insert({"id": 1, "x": 1})
        row = next(table.scan())
        row["x"] = 42
        assert table.get_by_key(1)["x"] == 1

    def test_to_batch_invalidated_on_schema_change(self):
        """Regression: replacing the schema must drop the columnar snapshot
        (previously the cache was keyed on version only and the version did
        not move, so a stale column list could be served)."""
        table = make_table()
        table.insert({"id": 1, "x": 2, "y": 3, "team": 0})
        before = table.to_batch()
        assert "hp" not in before.names
        version_before = table.version
        table.schema = table.schema.add(Column("hp", DataType.NUMBER))
        assert table.version > version_before
        after = table.to_batch()
        assert "hp" in after.names
        assert after.column("hp") == [None]
        # Same-object assignment stays a no-op.
        version = table.version
        table.schema = table.schema
        assert table.version == version
        # Schema replacement is a mutation: frozen tables refuse it.
        table.freeze()
        with pytest.raises(ExecutionError):
            table.schema = table.schema.add(Column("mp", DataType.NUMBER))
        table.thaw()


class TestChangeLog:
    def test_disabled_by_default(self):
        table = make_table()
        v0 = table.version
        table.insert({"id": 1})
        assert table.changes_since(v0) is None
        assert table.changes_since(table.version) == ([], [])

    def test_insert_update_delete_consolidation(self):
        table = make_table()
        table.enable_change_log()
        v0 = table.version
        rid = table.insert({"id": 1, "x": 5})
        table.update(rid, {"x": 7})
        # Insert + update consolidates to one added row with final values.
        added, removed = table.changes_since(v0)
        assert [r["x"] for r in added] == [7] and removed == []
        # From a later base version, an update shows old and new values.
        v1 = table.version
        table.update(rid, {"x": 9})
        added, removed = table.changes_since(v1)
        assert [r["x"] for r in added] == [9]
        assert [r["x"] for r in removed] == [7]
        # Insert followed by delete nets to nothing.
        v2 = table.version
        rid2 = table.insert({"id": 2})
        table.delete(rid2)
        assert table.changes_since(v2) == ([], [])

    def test_noop_update_nets_out(self):
        table = make_table()
        table.enable_change_log()
        rid = table.insert({"id": 1, "x": 5})
        v = table.version
        table.update(rid, {"x": 5})
        assert table.version > v  # version still moves...
        assert table.changes_since(v) == ([], [])  # ...but the delta is empty

    def test_truncation_and_bulk_resets(self):
        table = make_table()
        table.enable_change_log(capacity=4)
        v0 = table.version
        rids = [table.insert({"id": i}) for i in range(6)]
        assert table.changes_since(v0) is None  # log overflowed
        v1 = table.version
        table.delete(rids[0])
        assert table.changes_since(v1) is not None
        table.clear()
        assert table.changes_since(v1) is None  # bulk rewrite resets the log
        v2 = table.version
        table.insert({"id": 9})
        snapshot = table.snapshot()
        table.restore(snapshot)
        assert table.changes_since(v2) is None  # restore resets the log too

    def test_changes_pending(self):
        table = make_table()
        table.enable_change_log()
        v0 = table.version
        assert table.changes_pending(v0) == 0
        table.insert({"id": 1})
        table.insert({"id": 2})
        assert table.changes_pending(v0) == 2


class TestIndexMaintenance:
    def test_hash_index_lookup_and_maintenance(self):
        table = make_table()
        table.attach_index("team", HashIndex(["team"]))
        ids = [table.insert({"id": i, "team": i % 3}) for i in range(9)]
        index = table.index("team")
        assert len(list(index.lookup(0))) == 3
        table.update(ids[0], {"team": 1})
        assert len(list(index.lookup(0))) == 2
        assert len(list(index.lookup(1))) == 4
        table.delete(ids[1])
        assert len(list(index.lookup(1))) == 3

    def test_sorted_index_range(self):
        table = make_table()
        table.attach_index("x", SortedIndex("x"))
        for i in range(20):
            table.insert({"id": i, "x": i * 2})
        got = sorted(table.get(r)["id"] for r in table.index("x").range_search([(10, 20)]))
        assert got == [5, 6, 7, 8, 9, 10]
        assert table.index("x").min_value() == 0
        assert table.index("x").max_value() == 38

    def test_grid_index_moves_between_cells(self):
        table = make_table()
        table.attach_index("pos", GridIndex(["x", "y"], cell_size=10))
        rowid = table.insert({"id": 1, "x": 5, "y": 5})
        index = table.index("pos")
        assert list(index.range_search([(0, 9), (0, 9)])) == [rowid]
        table.update(rowid, {"x": 55, "y": 55})
        assert list(index.range_search([(0, 9), (0, 9)])) == []
        assert list(index.range_search([(50, 60), (50, 60)])) == [rowid]

    def test_catalog_index_api(self):
        catalog = Catalog()
        schema = make_table().schema
        catalog.create_table("unit", schema, key="id")
        catalog.create_index("unit", "by_team", HashIndex(["team"]))
        with pytest.raises(CatalogError):
            catalog.create_index("unit", "by_team", HashIndex(["team"]))
        catalog.drop_index("unit", "by_team")
        with pytest.raises(CatalogError):
            catalog.table("unit").index("by_team")


def brute_range(rows, bounds):
    out = []
    for rowid, (x, y) in rows.items():
        (lo_x, hi_x), (lo_y, hi_y) = bounds
        if lo_x <= x <= hi_x and lo_y <= y <= hi_y:
            out.append(rowid)
    return sorted(out)


class TestSpatialIndexCorrectness:
    @pytest.mark.parametrize("index_cls", [GridIndex, KdTreeIndex, RangeTreeIndex])
    def test_matches_brute_force(self, index_cls):
        table = make_table()
        rng = random.Random(3)
        points = {}
        for i in range(200):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            rowid = table.insert({"id": i, "x": x, "y": y})
            points[rowid] = (x, y)
        if index_cls is GridIndex:
            index = index_cls(["x", "y"], cell_size=7.0)
        else:
            index = index_cls(["x", "y"])
        table.attach_index("spatial", index)
        for _ in range(20):
            lo_x = rng.uniform(0, 90)
            lo_y = rng.uniform(0, 90)
            bounds = [(lo_x, lo_x + 15), (lo_y, lo_y + 15)]
            got = sorted(index.range_search(bounds))
            expected = brute_range(points, bounds)
            if index_cls is GridIndex:
                # The grid is a candidate generator; it may over-report.
                assert set(expected) <= set(got)
            else:
                assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        box=st.tuples(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.floats(min_value=0, max_value=25, allow_nan=False),
        ),
    )
    def test_range_tree_property(self, points, box):
        index = RangeTreeIndex(["x", "y"])
        index.build_from_points([((x, y), i) for i, (x, y) in enumerate(points)])
        x0, y0, width = box
        bounds = [(x0, x0 + width), (y0, y0 + width)]
        got = sorted(index.range_search(bounds))
        expected = sorted(
            i
            for i, (x, y) in enumerate(points)
            if x0 <= x <= x0 + width and y0 <= y <= y0 + width
        )
        assert got == expected

    def test_range_tree_space_blowup(self):
        """The layered tree uses asymptotically more entries than the kd-tree."""
        rng = random.Random(1)
        points = [((rng.random() * 100, rng.random() * 100), i) for i in range(512)]
        tree = RangeTreeIndex(["x", "y"])
        tree.build_from_points(points)
        kd = KdTreeIndex(["x", "y"])
        kd.build_from_points(points)
        assert tree.node_count() > 4 * kd.node_count()
        assert tree.estimated_bytes(16) == tree.node_count() * 16

    def test_kdtree_nearest(self):
        kd = KdTreeIndex(["x", "y"])
        kd.build_from_points([((0, 0), "a"), ((10, 10), "b"), ((2, 1), "c")])
        assert kd.nearest((1, 1)) == "c"
        assert kd.nearest((9, 9)) == "b"


class TestStatistics:
    def test_collect_and_selectivity(self, unit_catalog):
        stats = unit_catalog.statistics("unit")
        assert stats.row_count == 100
        assert stats.column("player").distinct_count == 4
        sel = estimate_selectivity(col("player").eq(lit(1)), stats)
        assert 0.1 < sel < 0.5
        range_sel = estimate_selectivity(col("x").lt(lit(50)), stats)
        assert 0.2 < range_sel < 0.8

    def test_statistics_cache_invalidation(self, unit_catalog):
        stats1 = unit_catalog.statistics("unit")
        stats2 = unit_catalog.statistics("unit")
        assert stats1 is stats2
        unit_catalog.table("unit").insert({"id": 1000, "player": 0, "x": 1, "y": 1, "health": 5, "range": 5})
        stats3 = unit_catalog.statistics("unit")
        assert stats3 is not stats1
        assert stats3.row_count == 101

    def test_empty_table_statistics(self):
        catalog = Catalog()
        catalog.create_table("empty", make_table().schema)
        stats = catalog.statistics("empty")
        assert stats.row_count == 0
        assert estimate_selectivity(col("x").gt(lit(0)), stats) == 0.0

    def test_histogram_range_fraction(self, unit_catalog):
        stats = unit_catalog.statistics("unit")
        cs = stats.column("x")
        assert cs.range_selectivity(None, None) >= 0.99
        assert cs.range_selectivity(200, 300) == 0.0
