"""Persistent index-backed spatial joins: planner, operators, advisor, deltas.

Covers the index-probing band join (`IndexProbeJoinOp`), its plan-time
selection against registered `GridIndex` / `RangeTreeIndex` / `SortedIndex`
structures, the index advisor's create/evict policy, the incremental
delta-join's index probing for the unchanged side, and the regression for
`RangeProbeJoinOp`'s degenerate cell-size estimate.
"""

from __future__ import annotations

import random
import time

from repro.engine import (
    Catalog,
    Column,
    DataType,
    EngineConfig,
    Executor,
    IndexAdvisor,
    Join,
    Schema,
    Select,
    TableScan,
    and_all,
    col,
    lit,
)
from repro.engine.indexes import GridIndex, HashIndex, RangeTreeIndex, SortedIndex
from repro.engine.operators import (
    DeltaJoinOp,
    IndexProbeJoinOp,
    RangeProbeJoinOp,
    ValuesOp,
)
from repro.workloads import build_rts_world


def _normalized(rows):
    return sorted((tuple(sorted(r.items())) for r in rows), key=repr)


def _unit_schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("player", DataType.NUMBER),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
            Column("range", DataType.NUMBER),
            Column("health", DataType.NUMBER),
        ]
    )


def _make_catalog(n: int = 400, seed: int = 3, with_nulls: bool = False) -> Catalog:
    catalog = Catalog()
    table = catalog.create_table("unit", _unit_schema(), key="id")
    rng = random.Random(seed)
    for i in range(n):
        has_null = with_nulls and i % 17 == 0
        table.insert(
            {
                "id": i,
                "player": i % 2,
                "x": None if has_null else rng.uniform(0, 100),
                "y": rng.uniform(0, 100),
                "range": rng.choice([3, 5, 8]),
                "health": rng.randint(0, 100),
            }
        )
    return catalog


def band_plan(inner_filter=None):
    inner = TableScan("unit", alias="u")
    if inner_filter is not None:
        inner = Select(inner, inner_filter)
    join = Join(TableScan("unit", alias="self"), inner, None, how="cross")
    predicate = and_all(
        [
            col("u.x").ge(col("self.x") - col("self.range")),
            col("u.x").le(col("self.x") + col("self.range")),
            col("u.y").ge(col("self.y") - col("self.range")),
            col("u.y").le(col("self.y") + col("self.range")),
        ]
    )
    return Select(join, predicate)


def _join_ops(executor: Executor, plan) -> list:
    return [op for op in executor.prepare(plan, cache=False).physical.walk()]


class TestIndexProbePlanning:
    def test_grid_index_is_probed(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        ops = _join_ops(Executor(catalog), band_plan())
        probes = [op for op in ops if isinstance(op, IndexProbeJoinOp)]
        assert len(probes) == 1
        assert probes[0].index_name == "xy"

    def test_range_tree_index_is_probed(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "tree", RangeTreeIndex(["x", "y"]))
        ops = _join_ops(Executor(catalog), band_plan())
        assert any(isinstance(op, IndexProbeJoinOp) for op in ops)

    def test_sorted_index_covers_one_dimension(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "by_x", SortedIndex("x"))
        ops = _join_ops(Executor(catalog), band_plan())
        probes = [op for op in ops if isinstance(op, IndexProbeJoinOp)]
        assert len(probes) == 1
        assert probes[0].index_name == "by_x"

    def test_widest_coverage_wins(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "by_x", SortedIndex("x"))
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        ops = _join_ops(Executor(catalog), band_plan())
        probes = [op for op in ops if isinstance(op, IndexProbeJoinOp)]
        assert probes and probes[0].index_name == "xy"

    def test_hash_index_is_not_probed(self):
        # Pin the interpreted plan shape: under use_compiled the grid
        # rebuild is exactly the core the kernel compiler fuses away.
        catalog = _make_catalog()
        catalog.create_index("unit", "h", HashIndex(["x", "y"]))
        ops = _join_ops(Executor(catalog, EngineConfig()), band_plan())
        assert not any(isinstance(op, IndexProbeJoinOp) for op in ops)
        assert any(isinstance(op, RangeProbeJoinOp) for op in ops)

    def test_no_index_falls_back_to_grid_rebuild(self):
        catalog = _make_catalog()
        ops = _join_ops(Executor(catalog, EngineConfig()), band_plan())
        assert any(isinstance(op, RangeProbeJoinOp) for op in ops)

    def test_use_indexes_false_forces_rebuild_path(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        ops = _join_ops(Executor(catalog, use_indexes=False), band_plan())
        assert not any(isinstance(op, IndexProbeJoinOp) for op in ops)


class TestIndexProbeEquivalence:
    def _assert_equivalent(self, catalog, plan):
        indexed = Executor(catalog, use_incremental=False)
        batch = Executor(catalog, use_indexes=False, use_incremental=False)
        row = Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
        assert any(isinstance(op, IndexProbeJoinOp) for op in _join_ops(indexed, plan))
        rows_indexed = indexed.execute(plan, cache=False).rows
        rows_batch = batch.execute(plan, cache=False).rows
        rows_row = row.execute(plan, cache=False).rows
        assert _normalized(rows_indexed) == _normalized(rows_batch) == _normalized(rows_row)
        assert rows_indexed, "scenario produced no matches; test would be vacuous"

    def test_grid_index_equivalence_with_null_coordinates(self):
        catalog = _make_catalog(with_nulls=True)
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        self._assert_equivalent(catalog, band_plan())

    def test_sorted_index_equivalence(self):
        catalog = _make_catalog(with_nulls=True)
        catalog.create_index("unit", "by_x", SortedIndex("x"))
        self._assert_equivalent(catalog, band_plan())

    def test_inner_select_is_folded_into_residual(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        plan = band_plan(inner_filter=col("u.health").gt(lit(40)))
        self._assert_equivalent(catalog, plan)

    def test_equivalence_under_churn(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        table = catalog.table("unit")
        plan = band_plan()
        indexed = Executor(catalog, use_incremental=False)
        row = Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
        rng = random.Random(11)
        for tick in range(6):
            rowids = list(table.row_ids())
            for rowid in rng.sample(rowids, 8):
                table.update(rowid, {"x": rng.uniform(0, 100), "y": rng.uniform(0, 100)})
            if tick % 2 == 0:
                table.insert(
                    {
                        "id": 10_000 + tick,
                        "player": 0,
                        "x": rng.uniform(0, 100),
                        "y": rng.uniform(0, 100),
                        "range": 5,
                        "health": 50,
                    }
                )
                table.delete(rng.choice(rowids))
            assert _normalized(indexed.execute(plan).rows) == _normalized(
                row.execute(plan).rows
            ), f"tick {tick}"


class TestEvictedIndexResilience:
    """Regression: plans can outlive the index they were built against —
    an incremental view's frozen full plan, or a cached plan raced by the
    advisor's eviction — and a full rebuild then resolved the dropped
    index by name and crashed the tick with CatalogError.  The operator
    now degrades (another covering index, else a per-probe row scan)."""

    def test_cached_plan_survives_index_drop(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        plan = band_plan()
        executor = Executor(catalog, use_incremental=False)
        expected = _normalized(
            Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
            .execute(plan)
            .rows
        )
        assert _normalized(executor.execute(plan).rows) == expected
        catalog.drop_index("unit", "xy")  # cached plan still names "xy"
        assert _normalized(executor.execute(plan).rows) == expected

    def test_incremental_full_rebuild_survives_index_drop(self):
        catalog = _make_catalog()
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        table = catalog.table("unit")
        plan = band_plan()
        inc = Executor(catalog)
        assert inc.register_incremental(plan)
        inc.execute(plan)  # seeds the view; its full plan probes "xy"
        catalog.drop_index("unit", "xy")
        # A bulk rewrite resets the change log, forcing the next refresh
        # through a full rebuild of the frozen full plan.
        table.restore(table.snapshot())
        ref = Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
        assert _normalized(inc.execute(plan).rows) == _normalized(ref.execute(plan).rows)


class TestStrictBandBounds:
    """Regression: strict (< / >) band conjuncts were consumed into the
    probe bounds and checked inclusively, so boundary rows the predicate
    excludes leaked into the result on every band-join path.  Strict
    conjuncts now stay in the residual."""

    def _catalog(self):
        catalog = Catalog()
        probers = catalog.create_table(
            "prober", Schema([Column("px", DataType.NUMBER)])
        )
        probers.insert({"px": 5.0})
        points = catalog.create_table("point", Schema([Column("x", DataType.NUMBER)]))
        points.insert_many({"x": float(i)} for i in range(10))
        catalog.create_index("point", "by_x", SortedIndex("x"))
        return catalog

    def _strict_plan(self):
        join = Join(TableScan("prober"), TableScan("point"), None, how="cross")
        predicate = and_all(
            [
                col("x").gt(col("px") - lit(2.0)),
                col("x").lt(col("px") + lit(2.0)),
            ]
        )
        return Select(join, predicate)

    def test_strict_bounds_exclude_boundary_rows_on_every_path(self):
        catalog = self._catalog()
        plan = self._strict_plan()
        expected = {4.0, 5.0, 6.0}  # strictly inside (3, 7)
        indexed = Executor(catalog, use_incremental=False)
        assert any(isinstance(op, IndexProbeJoinOp) for op in _join_ops(indexed, plan))
        for executor in (
            indexed,
            Executor(catalog, use_indexes=False, use_incremental=False),
            Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False),
        ):
            assert {r["x"] for r in executor.execute(plan, cache=False).rows} == expected
        inc = Executor(catalog)
        assert inc.register_incremental(plan)
        assert {r["x"] for r in inc.execute(plan).rows} == expected
        # Maintain through a delta that crosses the strict boundary.
        probers = catalog.table("prober")
        probers.update(next(probers.row_ids()), {"px": 6.0})
        assert {r["x"] for r in inc.execute(plan).rows} == {5.0, 6.0, 7.0}

    def test_mixed_strict_and_inclusive_bounds(self):
        catalog = self._catalog()
        join = Join(TableScan("prober"), TableScan("point"), None, how="cross")
        predicate = and_all(
            [
                col("x").ge(col("px") - lit(2.0)),  # inclusive low
                col("x").lt(col("px") + lit(2.0)),  # strict high
            ]
        )
        plan = Select(join, predicate)
        for executor in (
            Executor(catalog, use_incremental=False),
            Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False),
        ):
            assert {r["x"] for r in executor.execute(plan, cache=False).rows} == {
                3.0,
                4.0,
                5.0,
                6.0,
            }


class TestIndexAdvisor:
    def _run_band_query(self, executor, plan):
        executor.execute(plan, cache=False)

    def test_hot_band_join_creates_and_evicts_index(self):
        catalog = _make_catalog()
        advisor = IndexAdvisor(catalog, create_after=3, evict_after=5, min_table_rows=10)
        executor = Executor(catalog, index_advisor=advisor, use_incremental=False)
        plan = band_plan()
        table = catalog.table("unit")
        assert not table.indexes
        for _ in range(3):
            self._run_band_query(executor, plan)
            changed = advisor.end_tick()
        assert changed, "third consecutive hot tick should create the index"
        assert advisor.created_count == 1
        created = list(table.indexes)
        assert len(created) == 1 and created[0].startswith(IndexAdvisor.AUTO_INDEX_PREFIX)
        assert isinstance(table.indexes[created[0]], GridIndex)
        # The new plan probes the advisor-created index.
        assert any(isinstance(op, IndexProbeJoinOp) for op in _join_ops(executor, plan))
        # Keep it hot: no eviction while the query runs.
        for _ in range(6):
            self._run_band_query(executor, plan)
            assert not advisor.end_tick()
        assert created[0] in table.indexes
        # Stop running the query: the index is evicted after evict_after idle ticks.
        changed = False
        for _ in range(7):
            changed = advisor.end_tick() or changed
        assert changed and advisor.evicted_count == 1
        assert not table.indexes

    def test_cell_size_follows_observed_probe_width(self):
        catalog = _make_catalog()
        advisor = IndexAdvisor(catalog, create_after=2, min_table_rows=10)
        executor = Executor(catalog, index_advisor=advisor, use_incremental=False)
        plan = band_plan()
        for _ in range(2):
            self._run_band_query(executor, plan)
            advisor.end_tick()
        (index,) = catalog.table("unit").indexes.values()
        # Ranges are 3/5/8, so probe widths (2r) average ~10-ish.
        assert 5.0 <= index.cell_size <= 20.0

    def test_small_tables_are_not_indexed(self):
        catalog = _make_catalog(n=32)
        advisor = IndexAdvisor(catalog, create_after=2, min_table_rows=128)
        executor = Executor(catalog, index_advisor=advisor, use_incremental=False)
        plan = band_plan()
        for _ in range(5):
            self._run_band_query(executor, plan)
            advisor.end_tick()
        assert not catalog.table("unit").indexes

    def test_rts_world_auto_indexes_hot_band_join(self):
        world = build_rts_world(
            150, with_physics=False, scripts=["count_neighbours"], use_incremental=False
        )
        assert world.index_advisor is not None
        world.run(world.index_advisor.create_after + 1)
        unit_indexes = world.catalog.table("Unit").indexes
        assert any(
            name.startswith(IndexAdvisor.AUTO_INDEX_PREFIX) for name in unit_indexes
        ), unit_indexes
        # Ticks keep working (and replan onto the index) after creation.
        world.run(2)


class TestDeltaJoinIndexProbe:
    def _band_catalog(self, n=400, seed=4):
        catalog = _make_catalog(n=n, seed=seed)
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        return catalog

    def test_delta_refresh_probes_index_and_matches_full_paths(self):
        catalog = self._band_catalog()
        table = catalog.table("unit")
        plan = band_plan()
        inc = Executor(catalog)
        assert inc.register_incremental(plan)
        view = inc.incremental_view(plan)
        probes = [
            op.band_probe
            for op in view.root.walk()
            if isinstance(op, DeltaJoinOp) and op.band_probe is not None
        ]
        assert probes, "band join should carry a BandIndexProbe"
        ref = Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
        rng = random.Random(21)
        for tick in range(5):
            assert _normalized(inc.execute(plan).rows) == _normalized(
                ref.execute(plan).rows
            ), f"tick {tick}"
            for rowid in rng.sample(list(table.row_ids()), 6):
                table.update(rowid, {"x": rng.uniform(0, 100), "y": rng.uniform(0, 100)})
        assert view.delta_refreshes >= 4
        assert sum(p.index_probes for p in probes) > 0

    def test_advisor_created_index_is_picked_up_without_reregistration(self):
        catalog = _make_catalog()
        table = catalog.table("unit")
        plan = band_plan()
        inc = Executor(catalog)
        assert inc.register_incremental(plan)
        view = inc.incremental_view(plan)
        probes = [
            op.band_probe
            for op in view.root.walk()
            if isinstance(op, DeltaJoinOp) and op.band_probe is not None
        ]
        rng = random.Random(22)

        def churn():
            for rowid in rng.sample(list(table.row_ids()), 6):
                table.update(rowid, {"x": rng.uniform(0, 100), "y": rng.uniform(0, 100)})

        inc.execute(plan)
        churn()
        inc.execute(plan)
        assert sum(p.index_probes for p in probes) == 0  # no index yet: hash fallback
        catalog.create_index("unit", "xy", GridIndex(["x", "y"], cell_size=5.0))
        churn()
        ref = Executor(catalog, use_indexes=False, use_batch=False, use_incremental=False)
        assert _normalized(inc.execute(plan).rows) == _normalized(ref.execute(plan).rows)
        assert sum(p.index_probes for p in probes) > 0  # re-resolved lazily


class TestRangeProbeDegenerateWidths:
    """Regression: 32+ zero-width probes drove the sampled cell size to the
    1e-9 clamp, and a single later wide probe then iterated ~width/1e-9
    cells (a >60s hang).  Zero widths are now excluded from the sample and
    per-probe cell iteration is bounded by the occupied cells."""

    def _schemas(self):
        left = Schema([Column("lo", DataType.NUMBER), Column("hi", DataType.NUMBER)])
        right = Schema([Column("x", DataType.NUMBER)])
        out = Schema(list(left) + list(right))
        return left, right, out

    def test_zero_width_sample_plus_wide_probe_completes_fast(self):
        left_schema, right_schema, out_schema = self._schemas()
        left_rows = [{"lo": float(i % 7), "hi": float(i % 7)} for i in range(40)]
        left_rows.append({"lo": -25_000.0, "hi": 25_000.0})
        right_rows = [{"x": float(i)} for i in range(100)]
        op = RangeProbeJoinOp(
            ValuesOp(left_schema, left_rows),
            ValuesOp(right_schema, right_rows),
            [("x", col("lo"), col("hi"))],
            out_schema,
        )
        start = time.perf_counter()
        rows = op.rows()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"degenerate probe widths took {elapsed:.1f}s"
        # Correctness: each zero-width probe matches its exact x; the wide
        # probe matches all 100 rows.
        expected = sum(1 for r in left_rows[:40] if r["lo"] <= 99) + 100
        assert len(rows) == expected

    def test_all_zero_width_probes_still_match_exact_points(self):
        left_schema, right_schema, out_schema = self._schemas()
        left_rows = [{"lo": float(i), "hi": float(i)} for i in range(50)]
        right_rows = [{"x": float(i)} for i in range(50)]
        op = RangeProbeJoinOp(
            ValuesOp(left_schema, left_rows),
            ValuesOp(right_schema, right_rows),
            [("x", col("lo"), col("hi"))],
            out_schema,
        )
        assert len(op.rows()) == 50
