"""Crash injection: the delta log must never recover a torn tick.

The durability contract (ISSUE 6): whatever prefix of log bytes survives a
crash — a truncated tail, a bit flipped anywhere in a segment — recovery
restores exactly the **last fully committed tick** reachable from that
prefix.  Never a torn tick (a state between two tick boundaries), never
bytes from after the corruption.

Strategy: per workload, run one live world with an attached WAL once at
module scope, recording after every tick (a) the exact state of every
state table and (b) the exact byte layout of the log (per-segment sizes).
Each hypothesis example then corrupts a *copy* of the log bytes at a
random point and replays it read-only (:func:`replay_tables` never
repairs), so hundreds of corruption cases cost only a replay each.  The
byte layouts make the oracle exact: a tick is durable under a given
corruption iff every byte the tick's commit needed lies before the
corruption point.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.persistence.log import DeltaLog
from repro.persistence.replay import ReplayError, replay_tables
from repro.persistence.segment import RECORD_HEADER, decode_payload, iter_records
from repro.workloads.marketplace import build_marketplace_world
from repro.workloads.rts import build_rts_world
from repro.workloads.traffic import build_traffic_world

TICKS = 12
CHECKPOINT_INTERVAL = 4

BUILDERS = {
    "rts": lambda: build_rts_world(20, seed=17, with_physics=False),
    "traffic": lambda: build_traffic_world(20, seed=23),
    "marketplace": lambda: build_marketplace_world(12, seed=11),
}
#: Per-workload segment size: small segments on traffic force mid-run
#: rolls so corruption also lands on segment headers and boundaries.
SEGMENT_BYTES = {"rts": 1 << 20, "traffic": 2048, "marketplace": 1 << 20}


class _Recorded:
    """One live run: per-tick states, per-tick log byte layouts, raw bytes."""

    def __init__(self, name: str):
        self.name = name
        self.path = tempfile.mkdtemp(prefix=f"wal-{name}-")
        world = BUILDERS[name]()
        self.wal = world.attach_wal(
            self.path,
            checkpoint_interval=CHECKPOINT_INTERVAL,
            segment_max_bytes=SEGMENT_BYTES[name],
        )
        self.states: dict[int, dict[str, dict[int, dict]]] = {}
        self.states[-1] = self._state_of(world)  # baseline checkpoint state
        for _ in range(TICKS):
            world.tick()
            self.states[world.tick_count - 1] = self._state_of(world)
        self.wal.log.close()
        #: segment name → full final content.
        self.segments = {
            name: open(os.path.join(self.path, name), "rb").read()
            for name in sorted(os.listdir(self.path))
        }
        self.total_bytes = sum(len(data) for data in self.segments.values())
        #: every tick-boundary record: (segment, end offset, boundary tick).
        #: A tick is durable under a corruption iff some boundary record for
        #: it lies entirely before the first dead byte.
        self.boundaries: list[tuple[str, int, int]] = []
        for name, content in self.segments.items():
            for offset, payload in iter_records(content):
                record = decode_payload(payload)
                if record.get("k") in ("c", "cp"):
                    end = offset + RECORD_HEADER.size + len(payload)
                    self.boundaries.append((name, end, record["t"]))

    def _state_of(self, world):
        return {
            name: table.snapshot() for name, table in self.wal._tables()
        }

    # -- the corruption oracle -----------------------------------------------------

    def locate(self, offset: int) -> tuple[str, int]:
        """Map a global byte offset to ``(segment name, local offset)``."""
        for name in sorted(self.segments):
            data = self.segments[name]
            if offset < len(data):
                return name, offset
            offset -= len(data)
        raise AssertionError("offset out of range")

    def dead_from(self, segment: str, local: int) -> tuple[str, int]:
        """First byte the corruption kills: the start of the record
        containing it (validation stops at that record, everything after —
        including later segments — is unreachable)."""
        starts = [off for off, _ in iter_records(self.segments[segment])]
        start = max((s for s in starts if s <= local), default=0)
        return segment, start

    def expected_tick(self, segment: str, valid_upto: int) -> int | None:
        """Last tick fully durable when *segment* is valid only up to
        *valid_upto* (and later segments are gone).  ``None``: not even the
        baseline checkpoint survives."""
        durable = [
            tick
            for name, end, tick in self.boundaries
            if name < segment or (name == segment and end <= valid_upto)
        ]
        return max(durable) if durable else None

    def corrupted_dir(self, tmpdir: str, segment: str, truncate_at: int | None,
                      flip_at: int | None) -> str:
        for name, data in self.segments.items():
            if name > segment:
                continue  # crash: later segments never hit the disk
            if name == segment:
                if truncate_at is not None:
                    data = data[:truncate_at]
                if flip_at is not None:
                    mutated = bytearray(data)
                    mutated[flip_at] ^= 0xFF
                    data = bytes(mutated)
            with open(os.path.join(tmpdir, name), "wb") as handle:
                handle.write(data)
        return tmpdir


_RUNS: dict[str, _Recorded] = {}


def recorded(name: str) -> _Recorded:
    if name not in _RUNS:
        _RUNS[name] = _Recorded(name)
    return _RUNS[name]


def check_recovery(run: _Recorded, directory: str, expected: int | None) -> None:
    """Replay *directory* read-only and hold it to the oracle's answer."""
    if expected is None:
        with pytest.raises(ReplayError):
            replay_tables(directory)
        return
    state = replay_tables(directory)
    assert state.tick == expected, (
        f"recovered tick {state.tick}, oracle says {expected}"
    )
    assert state.tables == run.states[expected], (
        f"recovered state at tick {state.tick} does not match the live run"
    )


# -- hypothesis: 70 examples x 3 workloads x 2 corruption modes > 200 cases ---------


@settings(max_examples=70, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
@pytest.mark.parametrize("workload", sorted(BUILDERS))
def test_truncation_recovers_last_committed_tick(workload, data):
    run = recorded(workload)
    cut = data.draw(st.integers(min_value=0, max_value=run.total_bytes - 1))
    segment, local = run.locate(cut)
    tmpdir = tempfile.mkdtemp(prefix="cut-")
    try:
        run.corrupted_dir(tmpdir, segment, truncate_at=local, flip_at=None)
        check_recovery(run, tmpdir, run.expected_tick(segment, local))
    finally:
        shutil.rmtree(tmpdir)


@settings(max_examples=70, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
@pytest.mark.parametrize("workload", sorted(BUILDERS))
def test_bit_flip_recovers_last_committed_tick(workload, data):
    run = recorded(workload)
    at = data.draw(st.integers(min_value=0, max_value=run.total_bytes - 1))
    segment, local = run.locate(at)
    dead_segment, dead_at = run.dead_from(segment, local)
    tmpdir = tempfile.mkdtemp(prefix="flip-")
    try:
        run.corrupted_dir(tmpdir, segment, truncate_at=None, flip_at=local)
        check_recovery(run, tmpdir, run.expected_tick(dead_segment, dead_at))
    finally:
        shutil.rmtree(tmpdir)


# -- deterministic corner cases -----------------------------------------------------


@pytest.mark.parametrize("workload", sorted(BUILDERS))
def test_untouched_log_recovers_final_tick(workload):
    run = recorded(workload)
    state = replay_tables(run.path)
    assert state.tick == TICKS - 1
    assert state.tables == run.states[TICKS - 1]


@pytest.mark.parametrize("workload", sorted(BUILDERS))
def test_truncation_inside_record_header(workload):
    """A crash can leave just a few header bytes of the next record."""
    run = recorded(workload)
    last = sorted(run.segments)[-1]
    starts = [off for off, _ in iter_records(run.segments[last])]
    cut = starts[-1] + RECORD_HEADER.size - 1  # mid-header of the last record
    tmpdir = tempfile.mkdtemp(prefix="hdr-")
    try:
        run.corrupted_dir(tmpdir, last, truncate_at=cut, flip_at=None)
        check_recovery(run, tmpdir, run.expected_tick(last, cut))
    finally:
        shutil.rmtree(tmpdir)


def test_missing_middle_segment_stops_the_prefix():
    """A gap in the segment chain must end the valid prefix — splicing two
    disjoint histories would be silent corruption."""
    run = recorded("traffic")  # small segments: several files
    names = sorted(run.segments)
    assert len(names) >= 3, "traffic run should have rolled segments"
    tmpdir = tempfile.mkdtemp(prefix="gap-")
    try:
        for name in names:
            if name == names[len(names) // 2]:
                continue  # drop a middle segment
            with open(os.path.join(tmpdir, name), "wb") as handle:
                handle.write(run.segments[name])
        state = replay_tables(tmpdir)
        # Only ticks durable before the dropped segment may be served.
        dropped = names[len(names) // 2]
        expected = run.expected_tick(dropped, 0)
        assert expected is not None and state.tick == expected
        assert state.tables == run.states[expected]
    finally:
        shutil.rmtree(tmpdir)


def test_reattach_repairs_and_resumes():
    """The full crash-restart loop: corrupt, re-attach (repairing), tick on."""
    run = recorded("rts")
    tmpdir = tempfile.mkdtemp(prefix="resume-")
    try:
        cut = run.total_bytes * 2 // 3
        segment, local = run.locate(cut)
        run.corrupted_dir(tmpdir, segment, truncate_at=local, flip_at=None)
        expected = run.expected_tick(segment, local)
        assert expected is not None

        world = BUILDERS["rts"]()
        wal = world.attach_wal(tmpdir, checkpoint_interval=CHECKPOINT_INTERVAL)
        assert world.tick_count == expected + 1
        assert {n: t.snapshot() for n, t in wal._tables()} == run.states[expected]

        world.tick()  # the log accepts appends again after repair
        reloaded = replay_tables(tmpdir)
        assert reloaded.tick == expected + 1
        world.detach_wal()
    finally:
        shutil.rmtree(tmpdir)


def test_double_corruption_only_first_counts():
    run = recorded("rts")
    tmpdir = tempfile.mkdtemp(prefix="double-")
    try:
        a, b = run.total_bytes // 3, run.total_bytes * 2 // 3
        seg_a, local_a = run.locate(a)
        seg_b, local_b = run.locate(b)
        run.corrupted_dir(tmpdir, seg_a, truncate_at=None, flip_at=local_a)
        if seg_b == seg_a and os.path.exists(os.path.join(tmpdir, seg_b)):
            with open(os.path.join(tmpdir, seg_b), "r+b") as handle:
                handle.seek(local_b)
                byte = handle.read(1)
                handle.seek(local_b)
                handle.write(bytes([byte[0] ^ 0xFF]))
        dead_segment, dead_at = run.dead_from(seg_a, local_a)
        check_recovery(run, tmpdir, run.expected_tick(dead_segment, dead_at))
    finally:
        shutil.rmtree(tmpdir)


def test_repair_truncates_in_place():
    """DeltaLog(repair=True) physically truncates the torn tail so the next
    writer appends to a clean file."""
    run = recorded("rts")
    tmpdir = tempfile.mkdtemp(prefix="repair-")
    try:
        cut = run.total_bytes - 5  # tear the final record
        segment, local = run.locate(cut)
        run.corrupted_dir(tmpdir, segment, truncate_at=local, flip_at=None)
        log = DeltaLog(tmpdir, repair=True)
        log.close()
        # Every byte on disk now parses: the valid prefix IS the file.
        for name in sorted(os.listdir(tmpdir)):
            content = open(os.path.join(tmpdir, name), "rb").read()
            parsed = sum(
                len(p) + RECORD_HEADER.size for _, p in iter_records(content)
            )
            assert parsed == len(content)
    finally:
        shutil.rmtree(tmpdir)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
