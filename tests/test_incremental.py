"""Tests for the delta-driven incremental execution subsystem.

Covers the delta algebra (:mod:`repro.engine.operators.incremental`), the
plan-time fallback rules (:mod:`repro.engine.optimizer.incremental`), the
executor/world wiring, and — most importantly — equivalence: under
randomized multi-tick churn, a registered incremental view must produce the
same result multiset as full re-execution on the row and batch paths, and a
world ticked with ``use_incremental=True`` must end in the same state as one
ticked without it.

Floats are compared with ``math.isclose``: incremental sums are maintained
by running addition/subtraction, which is exact for ints but can differ
from a fresh fold by rounding error.
"""

from __future__ import annotations

import math
import random

from repro import ExecutionMode
from repro.engine.algebra import (
    Aggregate,
    AggregateSpec,
    Join,
    Limit,
    Project,
    Select,
    Sort,
    SortKey,
    TableScan,
)
from repro.engine.batch import DeltaBatch
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.expressions import col, lit
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.workloads import build_rts_world
from repro.workloads.marketplace import build_marketplace_world
from repro.workloads.traffic import build_traffic_world


# -- helpers ---------------------------------------------------------------------------


def _units_catalog(n_rows: int = 400, seed: int = 5) -> tuple[Catalog, object]:
    rng = random.Random(seed)
    catalog = Catalog()
    units = catalog.create_table(
        "units",
        Schema(
            [
                Column("id", DataType.NUMBER),
                Column("zone", DataType.NUMBER),
                Column("x", DataType.NUMBER),
                Column("health", DataType.NUMBER),
            ]
        ),
    )
    for i in range(n_rows):
        units.insert(
            {
                "id": i,
                "zone": i % 10,
                "x": rng.uniform(0, 100),
                "health": rng.uniform(0, 100),
            }
        )
    return catalog, units


def _normalize(rows):
    # repr-keyed sort tolerates None and mixed types in result columns.
    return sorted((tuple(sorted(r.items())) for r in rows), key=repr)


def assert_same_rows(a, b, context=""):
    na, nb = _normalize(a), _normalize(b)
    assert len(na) == len(nb), f"{context}: {len(na)} vs {len(nb)} rows"
    for row_a, row_b in zip(na, nb):
        for (key_a, val_a), (key_b, val_b) in zip(row_a, row_b):
            assert key_a == key_b, f"{context}: {key_a} vs {key_b}"
            if isinstance(val_a, float) or isinstance(val_b, float):
                assert math.isclose(val_a, val_b, rel_tol=1e-9, abs_tol=1e-9), (
                    f"{context}: {key_a}: {val_a} vs {val_b}"
                )
            else:
                assert val_a == val_b, f"{context}: {key_a}: {val_a} vs {val_b}"


def _random_churn(units, rng, allow_structural=True):
    rowids = list(units.row_ids())
    for _ in range(rng.randrange(1, 12)):
        op = rng.random()
        if op < 0.6 or not allow_structural:
            units.update(
                rng.choice(rowids),
                {"x": rng.uniform(0, 100), "health": rng.uniform(0, 100)},
            )
        elif op < 0.8:
            units.insert(
                {
                    "id": rng.randrange(10**6, 10**7),
                    "zone": rng.randrange(10),
                    "x": rng.uniform(0, 100),
                    "health": rng.uniform(0, 100),
                }
            )
        elif len(rowids) > 10:
            doomed = rng.choice(rowids)
            rowids.remove(doomed)
            units.delete(doomed)


# -- DeltaBatch ------------------------------------------------------------------------


class TestDeltaBatch:
    def test_net_cancels_matching_rows(self):
        delta = DeltaBatch(("a",), [(1,), (2,), (2,)], [(2,), (3,)])
        netted = delta.net()
        assert sorted(netted.added) == [(1,), (2,)]
        assert netted.removed == [(3,)]
        assert netted.netted

    def test_net_is_idempotent_and_cheap_when_flagged(self):
        delta = DeltaBatch(("a",), [(1,)], [(2,)]).net()
        assert delta.net() is delta

    def test_from_rows_and_row_dicts(self):
        delta = DeltaBatch.from_rows(("a", "b"), [{"a": 1, "b": 2}], [])
        assert delta.added == [(1, 2)]
        assert delta.row_dicts(delta.added) == [{"a": 1, "b": 2}]


# -- equivalence under churn -----------------------------------------------------------


class TestIncrementalEquivalence:
    def _check_plan(self, plan, ticks=25, seed=11, allow_structural=True):
        catalog, units = _units_catalog(seed=seed)
        inc = Executor(catalog)
        batch = Executor(catalog, use_incremental=False)
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert inc.register_incremental(plan)
        rng = random.Random(seed)
        for tick in range(ticks):
            assert_same_rows(
                inc.execute(plan).rows,
                batch.execute(plan).rows,
                f"tick {tick} inc-vs-batch",
            )
            assert_same_rows(
                batch.execute(plan).rows,
                row.execute(plan).rows,
                f"tick {tick} batch-vs-row",
            )
            _random_churn(units, rng, allow_structural)
        view = inc.incremental_view(plan)
        assert view is not None and view.delta_refreshes > 0, view.stats()

    def test_filter_project(self):
        self._check_plan(
            Project(
                Select(TableScan("units"), col("x").gt(lit(30.0))),
                {"id": col("id"), "score": col("health") * lit(2)},
            )
        )

    def test_grouped_aggregate(self):
        self._check_plan(
            Aggregate(
                Select(TableScan("units"), col("health").gt(lit(20.0))),
                ["zone"],
                [
                    AggregateSpec("n", "count"),
                    AggregateSpec("hp", "sum", col("health")),
                    AggregateSpec("worst", "min", col("health")),
                    AggregateSpec("best", "max", col("health")),
                ],
            )
        )

    def test_global_aggregate_identity_row(self):
        plan = Aggregate(
            Select(TableScan("units"), col("x").gt(lit(1e9))),  # matches nothing
            [],
            [AggregateSpec("n", "count"), AggregateSpec("hp", "sum", col("health"))],
        )
        catalog, units = _units_catalog()
        inc = Executor(catalog)
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert inc.register_incremental(plan)
        assert_same_rows(inc.execute(plan).rows, row.execute(plan).rows, "empty-global")
        units.update(next(units.row_ids()), {"x": 5.0})
        assert_same_rows(inc.execute(plan).rows, row.execute(plan).rows, "still-empty")

    def test_equi_join(self):
        catalog, units = _units_catalog()
        zones = catalog.create_table(
            "zones",
            Schema([Column("zid", DataType.NUMBER), Column("bonus", DataType.NUMBER)]),
        )
        for z in range(10):
            zones.insert({"zid": z, "bonus": z * 1.5})
        plan = Project(
            Join(
                TableScan("units", alias="u"),
                TableScan("zones", alias="z"),
                col("u.zone").eq(col("z.zid")),
            ),
            {"id": col("u.id"), "boost": col("u.health") + col("z.bonus")},
        )
        inc = Executor(catalog)
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert inc.register_incremental(plan)
        rng = random.Random(3)
        for tick in range(20):
            assert_same_rows(
                inc.execute(plan).rows, row.execute(plan).rows, f"tick {tick}"
            )
            _random_churn(units, rng)
            if tick % 4 == 0:
                zones.update(
                    rng.choice(list(zones.row_ids())), {"bonus": rng.uniform(0, 10)}
                )

    def test_left_join_padding(self):
        catalog, units = _units_catalog(n_rows=60)
        buffs = catalog.create_table(
            "buffs",
            Schema([Column("unit_id", DataType.NUMBER), Column("amount", DataType.NUMBER)]),
        )
        plan = Project(
            Join(
                TableScan("units", alias="u"),
                TableScan("buffs", alias="b"),
                col("u.id").eq(col("b.unit_id")),
                how="left",
            ),
            {"id": col("u.id"), "amount": col("b.amount")},
        )
        inc = Executor(catalog)
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert inc.register_incremental(plan)
        rng = random.Random(7)
        buff_rowids = []
        for tick in range(20):
            assert_same_rows(
                inc.execute(plan).rows, row.execute(plan).rows, f"tick {tick}"
            )
            # Drive match counts across zero in both directions.
            if tick % 3 == 0:
                buff_rowids.append(
                    buffs.insert({"unit_id": rng.randrange(60), "amount": tick})
                )
            elif buff_rowids and tick % 3 == 1:
                buffs.delete(buff_rowids.pop(rng.randrange(len(buff_rowids))))
            _random_churn(units, rng, allow_structural=False)

    def test_band_join_keyless(self):
        plan = Project(
            Select(
                Join(
                    TableScan("units", alias="a"),
                    TableScan("units", alias="b"),
                    col("b.x").ge(col("a.x") - lit(5.0)).and_(
                        col("b.x").le(col("a.x") + lit(5.0))
                    ),
                ),
                col("a.health").gt(lit(50.0)),
            ),
            {"id": col("a.id"), "other": col("b.id")},
        )
        catalog, units = _units_catalog(n_rows=80)
        inc = Executor(catalog)
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert inc.register_incremental(plan)
        rng = random.Random(13)
        for tick in range(10):
            assert_same_rows(
                inc.execute(plan).rows, row.execute(plan).rows, f"tick {tick}"
            )
            _random_churn(units, rng)


# -- fallback rules --------------------------------------------------------------------


class TestFallbackRules:
    def _register(self, plan, **catalog_kwargs):
        catalog, _ = _units_catalog()
        return Executor(catalog).register_incremental(plan)

    def test_sort_limit_fall_back(self):
        base = TableScan("units")
        assert not self._register(Sort(base, [SortKey(col("x"))]))
        assert not self._register(Limit(base, 5))

    def test_order_dependent_aggregates_fall_back(self):
        for func in ("first", "last", "collect"):
            plan = Aggregate(
                TableScan("units"), ["zone"], [AggregateSpec("v", func, col("x"))]
            )
            assert not self._register(plan)

    def test_disabled_executor_declines(self):
        catalog, _ = _units_catalog()
        executor = Executor(catalog, use_incremental=False)
        assert not executor.register_incremental(TableScan("units"))

    def test_log_truncation_triggers_full_refresh_not_failure(self):
        catalog, units = _units_catalog(n_rows=50)
        plan = Project(TableScan("units"), {"id": col("id")})
        inc = Executor(catalog)
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert inc.register_incremental(plan)
        inc.execute(plan)
        view = inc.incremental_view(plan)
        # A restore resets the change log: the next refresh must rebuild.
        snapshot = units.snapshot()
        units.restore(snapshot)
        assert_same_rows(inc.execute(plan).rows, row.execute(plan).rows, "post-restore")
        assert view.full_refreshes >= 2

    def test_high_churn_disables_view(self):
        catalog, units = _units_catalog(n_rows=200)
        plan = Project(TableScan("units"), {"id": col("id"), "x": col("x")})
        inc = Executor(catalog)
        assert inc.register_incremental(plan)
        inc.execute(plan)
        rng = random.Random(1)
        for _ in range(6):  # rewrite every row between refreshes
            for rowid in list(units.row_ids()):
                units.update(rowid, {"x": rng.uniform(0, 100)})
            inc.execute(plan)
        assert inc.incremental_view(plan) is None  # dropped after guard trips
        # The query still executes correctly on the physical path.
        row = Executor(catalog, use_batch=False, use_incremental=False)
        assert_same_rows(inc.execute(plan).rows, row.execute(plan).rows, "post-disable")

    def test_noop_hits_on_unchanged_tables(self):
        catalog, _ = _units_catalog()
        plan = Project(TableScan("units"), {"id": col("id")})
        inc = Executor(catalog)
        assert inc.register_incremental(plan)
        first = inc.execute(plan).rows
        second = inc.execute(plan).rows
        assert first == second
        # Served rows are fresh dicts: mutating them must not corrupt the view.
        second[0]["id"] = -999
        assert inc.execute(plan).rows[0]["id"] != -999
        assert inc.incremental_view(plan).noop_hits == 2


# -- world-level equivalence (rts / traffic / marketplace) ------------------------------


def _world_states(world):
    return {
        cls: _normalize(world.objects(cls)) for cls in world.class_names()
    }


def _assert_worlds_match(w1, w2, context):
    s1, s2 = _world_states(w1), _world_states(w2)
    assert s1.keys() == s2.keys()
    for cls in s1:
        assert len(s1[cls]) == len(s2[cls]), f"{context}/{cls}"
        for row_a, row_b in zip(s1[cls], s2[cls]):
            for (key_a, val_a), (key_b, val_b) in zip(row_a, row_b):
                assert key_a == key_b
                if isinstance(val_a, float) or isinstance(val_b, float):
                    assert math.isclose(val_a, val_b, rel_tol=1e-9, abs_tol=1e-9), (
                        f"{context}/{cls}: {key_a}: {val_a} vs {val_b}"
                    )
                else:
                    assert val_a == val_b, f"{context}/{cls}: {key_a}: {val_a} vs {val_b}"


class TestWorldEquivalence:
    """Incremental on vs. off must not change any workload's evolution."""

    def test_rts_world(self):
        w1 = build_rts_world(60, mode=ExecutionMode.COMPILED, use_incremental=True)
        w2 = build_rts_world(60, mode=ExecutionMode.COMPILED, use_incremental=False)
        for _ in range(8):
            w1.tick()
            w2.tick()
        _assert_worlds_match(w1, w2, "rts")

    def test_rts_idle_world_uses_delta_path(self):
        world = build_rts_world(
            120,
            mode=ExecutionMode.COMPILED,
            with_physics=False,
            scripts=["count_neighbours"],
            use_incremental=True,
        )
        reference = build_rts_world(
            120,
            mode=ExecutionMode.COMPILED,
            with_physics=False,
            scripts=["count_neighbours"],
            use_incremental=False,
        )
        for _ in range(6):
            world.tick()
            reference.tick()
        _assert_worlds_match(world, reference, "rts-idle")
        report = world.executor.incremental_report()
        assert report, "expected the count_neighbours query to register a view"
        assert any(
            entry["noop_hits"] + entry["delta_refreshes"] > 0 for entry in report
        ), report

    def test_traffic_world(self):
        w1 = build_traffic_world(50, mode=ExecutionMode.COMPILED, use_incremental=True)
        w2 = build_traffic_world(50, mode=ExecutionMode.COMPILED, use_incremental=False)
        for _ in range(8):
            w1.tick()
            w2.tick()
        _assert_worlds_match(w1, w2, "traffic")

    def test_marketplace_world(self):
        w1 = build_marketplace_world(
            24, mode=ExecutionMode.COMPILED, use_incremental=True
        )
        w2 = build_marketplace_world(
            24, mode=ExecutionMode.COMPILED, use_incremental=False
        )
        for _ in range(6):
            w1.tick()
            w2.tick()
        _assert_worlds_match(w1, w2, "marketplace")

    def test_randomized_spawn_destroy_churn(self):
        """Structural churn (spawn/destroy between ticks) across both modes."""
        rng1, rng2 = random.Random(99), random.Random(99)
        w1 = build_rts_world(40, mode=ExecutionMode.COMPILED, use_incremental=True)
        w2 = build_rts_world(40, mode=ExecutionMode.COMPILED, use_incremental=False)
        for tick in range(6):
            for world, rng in ((w1, rng1), (w2, rng2)):
                if tick % 2 == 0:
                    world.spawn(
                        "Unit",
                        player=rng.randrange(2),
                        x=rng.uniform(0, 100),
                        y=rng.uniform(0, 100),
                    )
                else:
                    world.destroy("Unit", rng.randrange(world.count("Unit")))
                world.tick()
        _assert_worlds_match(w1, w2, "rts-structural")
