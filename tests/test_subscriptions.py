"""The live subscription service: snapshot-then-delta correctness.

The central property (the PR's acceptance criterion): for every
subscriber, the initial snapshot plus the applied delta stream equals
re-running the standing query from scratch each tick — under randomized
churn across the rts/traffic/marketplace workloads, including AOI
subscriptions with moving observers, change-log-overflow resyncs and
outbox-overflow resyncs.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.engine import Catalog, Column, DataType, Schema
from repro.engine.algebra import Aggregate, AggregateSpec, Select, TableScan
from repro.engine.executor import Executor
from repro.engine.expressions import BinaryOp, ColumnRef, Literal
from repro.service.protocol import (
    Delta,
    ResultSet,
    Snapshot,
    decode_message,
    encode_message,
    row_key,
)
from repro.service.subscriptions import SubscriptionManager
from repro.workloads.marketplace import build_marketplace_world
from repro.workloads.rts import attach_fog_of_war, build_rts_world, unit_rows
from repro.workloads.traffic import build_traffic_world


def multiset(rows):
    return sorted(map(row_key, rows))


def drain(session, states):
    for message in session.take():
        states[message.subscription_id].apply(message)


def primary_table(world, class_name):
    return world.catalog.table(world.schemas[class_name].primary_table)


def aoi_expected(table, dims, center, radius):
    out = []
    for row in table.rows():
        if all(
            row[d] is not None and abs(row[d] - c) <= r
            for d, c, r in zip(dims, center, radius)
        ):
            out.append(dict(row))
    return out


# ------------------------------------------------------------------------------------
# protocol primitives
# ------------------------------------------------------------------------------------


class TestProtocol:
    def test_snapshot_then_delta_roundtrip(self):
        rs = ResultSet()
        rs.apply(Snapshot(subscription_id=1, tick=0, rows=({"a": 1}, {"a": 2})))
        rs.apply(Delta(subscription_id=1, tick=1, added=({"a": 3},), removed=({"a": 1},)))
        assert multiset(rs.rows()) == multiset([{"a": 2}, {"a": 3}])

    def test_resultset_tracks_duplicates_as_multiset(self):
        rs = ResultSet()
        rs.apply(Snapshot(subscription_id=1, tick=0, rows=({"a": 1}, {"a": 1})))
        rs.apply(Delta(subscription_id=1, tick=1, removed=({"a": 1},)))
        assert multiset(rs.rows()) == multiset([{"a": 1}])

    def test_resultset_rejects_unknown_removal(self):
        rs = ResultSet()
        rs.apply(Snapshot(subscription_id=1, tick=0, rows=({"a": 1},)))
        with pytest.raises(ValueError):
            rs.apply(Delta(subscription_id=1, tick=1, removed=({"a": 2},)))

    def test_json_codec_roundtrip(self):
        for message in (
            Snapshot(subscription_id=3, tick=7, rows=({"x": 1.5, "s": "hi"},), reason="resync:outbox"),
            Delta(subscription_id=3, tick=8, added=({"x": 2},), removed=({"x": 1.5, "s": "hi"},)),
        ):
            decoded = decode_message(encode_message(message))
            assert decoded == message


# ------------------------------------------------------------------------------------
# standing-query groups on a bare catalog
# ------------------------------------------------------------------------------------


def build_bare_catalog(n=60, seed=7):
    catalog = Catalog()
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("player", DataType.NUMBER),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
        ]
    )
    table = catalog.create_table("unit", schema, key="id")
    rng = random.Random(seed)
    for i in range(n):
        table.insert(
            {"id": i, "player": i % 3, "x": rng.randrange(100), "y": rng.randrange(100)}
        )
    return catalog, table


class TestStandingQueryGroups:
    def test_filter_subscription_streams_from_change_log(self):
        catalog, table = build_bare_catalog()
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        session = manager.connect()
        sid = manager.subscribe_table(
            session, "unit", predicate=BinaryOp("==", ColumnRef("player"), Literal(1))
        )
        group = manager._groups[next(iter(manager._groups))]
        assert group.cursor_mode
        evaluations_before = group.evaluations
        states = {sid: ResultSet()}
        drain(session, states)
        rng = random.Random(1)
        for tick in range(8):
            for _ in range(6):
                rid = rng.choice(list(table.row_ids()))
                table.update(rid, {"x": rng.randrange(100), "player": rng.randrange(3)})
            manager.flush(tick)
            drain(session, states)
            expect = [dict(r) for r in table.rows() if r["player"] == 1]
            assert multiset(expect) == multiset(states[sid].rows())
        # Cursor mode never re-executes the query to produce deltas.
        assert group.evaluations == evaluations_before

    def test_equivalent_queries_share_one_group_across_aliases(self):
        catalog, table = build_bare_catalog()
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        sess_a, sess_b = manager.connect(), manager.connect()
        plan_a = Select(TableScan("unit", alias="a"), BinaryOp(">", ColumnRef("a.x"), Literal(50)))
        plan_b = Select(TableScan("unit", alias="b"), BinaryOp(">", ColumnRef("b.x"), Literal(50)))
        sid_a = manager.subscribe_query(sess_a, plan_a)
        sid_b = manager.subscribe_query(sess_b, plan_b)
        assert len(manager._groups) == 1  # PR-4 fingerprints dedupe the aliases
        states = {sid_a: ResultSet(), sid_b: ResultSet()}
        drain(sess_a, states)
        drain(sess_b, states)
        rng = random.Random(2)
        for tick in range(5):
            for _ in range(8):
                rid = rng.choice(list(table.row_ids()))
                table.update(rid, {"x": rng.randrange(100)})
            manager.flush(tick)
            drain(sess_a, states)
            drain(sess_b, states)
            hot = [r for r in table.rows() if r["x"] > 50]
            expect_a = [{f"a.{k}": v for k, v in r.items()} for r in hot]
            expect_b = [{f"b.{k}": v for k, v in r.items()} for r in hot]
            assert multiset(expect_a) == multiset(states[sid_a].rows())
            assert multiset(expect_b) == multiset(states[sid_b].rows())

    def test_aggregate_standing_query_uses_requery_mode(self):
        catalog, table = build_bare_catalog()
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        session = manager.connect()
        plan = Aggregate(
            TableScan("unit"),
            group_by=("player",),
            aggregates=(AggregateSpec("n", "count", None),),
        )
        sid = manager.subscribe_query(session, plan)
        group = manager._groups[next(iter(manager._groups))]
        assert not group.cursor_mode
        states = {sid: ResultSet()}
        drain(session, states)
        rng = random.Random(3)
        scratch = Executor(catalog)
        for tick in range(6):
            for _ in range(5):
                rid = rng.choice(list(table.row_ids()))
                table.update(rid, {"player": rng.randrange(3)})
            manager.flush(tick)
            drain(session, states)
            expect = scratch.execute(
                Aggregate(
                    TableScan("unit"),
                    group_by=("player",),
                    aggregates=(AggregateSpec("n", "count", None),),
                ),
                cache=False,
            ).rows
            assert multiset(expect) == multiset(states[sid].rows())

    def test_late_subscriber_snapshot_aligns_with_stream(self):
        """Subscribing mid-stream must not double-deliver the pending delta."""
        catalog, table = build_bare_catalog()
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        early = manager.connect()
        sid_early = manager.subscribe_table(early, "unit")
        states = {sid_early: ResultSet()}
        drain(early, states)
        manager.flush(0)
        # Mutations land *between* flushes, then a second client subscribes.
        table.insert({"id": 1000, "player": 0, "x": 1, "y": 1})
        late = manager.connect()
        sid_late = manager.subscribe_table(late, "unit")
        states[sid_late] = ResultSet()
        drain(late, states)
        manager.flush(1)
        drain(early, states)
        drain(late, states)
        expect = [dict(r) for r in table.rows()]
        assert multiset(expect) == multiset(states[sid_early].rows())
        assert multiset(expect) == multiset(states[sid_late].rows())

    def test_churning_subscribers_do_not_grow_executor_state(self):
        """Connect/subscribe/disconnect loops (every TCP request builds a
        fresh plan object) must not leak plan-cache or incremental-view
        entries in the shared executor."""
        catalog, _ = build_bare_catalog(n=20)
        executor = Executor(catalog)
        manager = SubscriptionManager(catalog=catalog, executor=executor)
        for i in range(30):
            session = manager.connect()
            manager.subscribe_table(
                session, "unit", predicate=BinaryOp("==", ColumnRef("player"), Literal(1))
            )
            manager.subscribe_query(
                session,
                Aggregate(
                    TableScan("unit"),
                    group_by=("player",),
                    aggregates=(AggregateSpec("n", "count", None),),
                ),
            )
            manager.disconnect(session)
        assert manager.subscription_count() == 0
        assert len(executor._cache) == 0
        assert len(executor._incremental) == 0

    def test_unsubscribe_drops_group_and_disconnect_cleans_up(self):
        catalog, _ = build_bare_catalog()
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        session = manager.connect()
        sid = manager.subscribe_table(session, "unit")
        aid = manager.subscribe_aoi(session, "unit", radius=10, center=(50, 50))
        assert manager.subscription_count() == 2
        assert manager.unsubscribe(session, sid)
        assert not manager._groups  # last subscriber gone → group dropped
        manager.disconnect(session)
        assert manager.subscription_count() == 0
        assert not manager.unsubscribe(session, aid)


# ------------------------------------------------------------------------------------
# the equivalence property under randomized churn, across workloads
# ------------------------------------------------------------------------------------


class EquivalenceHarness:
    """Subscriptions + scratch re-execution + per-tick comparison."""

    def __init__(self, world, class_name):
        self.world = world
        self.class_name = class_name
        self.table = primary_table(world, class_name)
        self.manager = world.subscriptions
        self.session = self.manager.connect()
        self.states: dict[int, ResultSet] = {}
        self.checks = []  # (subscription_id, scratch_fn)

    def add_filter(self, predicate_expr, predicate_fn):
        sid = self.manager.subscribe_table(self.session, self.class_name, predicate=predicate_expr)
        self.states[sid] = ResultSet()
        self.checks.append(
            (sid, lambda: [dict(r) for r in self.table.rows() if predicate_fn(r)])
        )
        return sid

    def add_aoi(self, radius, center=None, observer_id=None, dims=("x", "y")):
        sid = self.manager.subscribe_aoi(
            self.session,
            self.class_name,
            radius=radius,
            dims=dims,
            center=center,
            observer_id=observer_id,
        )
        self.states[sid] = ResultSet()
        radii = (radius,) * len(dims) if not isinstance(radius, (tuple, list)) else radius

        def scratch():
            if observer_id is not None:
                observer = self.table.get_by_key(observer_id)
                if observer is None:
                    return []
                box_center = tuple(observer[d] for d in dims)
            else:
                box_center = tuple(center)
            return aoi_expected(self.table, dims, box_center, radii)

        self.checks.append((sid, scratch))
        return sid

    def drain(self):
        drain(self.session, self.states)

    def verify(self, context=""):
        for sid, scratch in self.checks:
            expect = multiset(scratch())
            got = multiset(self.states[sid].rows())
            assert expect == got, f"subscription {sid} diverged {context}"


class TestWorkloadEquivalence:
    def test_rts_randomized_churn(self):
        world = build_rts_world(50, seed=5)
        harness = EquivalenceHarness(world, "Unit")
        harness.add_filter(
            BinaryOp("==", ColumnRef("player"), Literal(1)), lambda r: r["player"] == 1
        )
        harness.add_filter(
            BinaryOp(">", ColumnRef("health"), Literal(95)), lambda r: r["health"] > 95
        )
        harness.add_aoi(radius=20, center=(50, 50))
        harness.add_aoi(radius=15, observer_id=3)  # moves every tick (physics)
        harness.add_aoi(radius=10, observer_id=8)
        harness.drain()
        harness.verify("at subscribe")
        rng = random.Random(11)
        next_spawn = 1000
        for tick in range(12):
            # Randomized churn: spawns, destroys, direct state writes.
            for _ in range(rng.randrange(4)):
                world.spawn(
                    "Unit",
                    player=rng.randrange(2),
                    x=rng.uniform(0, 100),
                    y=rng.uniform(0, 100),
                    health=100,
                )
                next_spawn += 1
            ids = [r["id"] for r in harness.table.rows()]
            if len(ids) > 20 and rng.random() < 0.5:
                world.destroy("Unit", rng.choice(ids))
            if ids:
                world.set_state(
                    "Unit", rng.choice(ids), x=rng.uniform(0, 100), y=rng.uniform(0, 100)
                )
            world.tick()
            harness.drain()
            harness.verify(f"at tick {tick}")

    def test_traffic_randomized_churn(self):
        world = build_traffic_world(60, seed=9)
        harness = EquivalenceHarness(world, "Vehicle")
        harness.add_filter(
            BinaryOp("==", ColumnRef("lane"), Literal(1)), lambda r: r["lane"] == 1
        )
        harness.add_aoi(radius=80, center=(500,), dims=("position",))
        harness.drain()
        rng = random.Random(13)
        for tick in range(10):
            ids = [r["id"] for r in harness.table.rows()]
            world.set_state(
                "Vehicle", rng.choice(ids), lane=rng.randrange(4), position=rng.uniform(0, 1000)
            )
            world.tick()
            harness.drain()
            harness.verify(f"at tick {tick}")

    def test_marketplace_randomized_churn(self):
        world = build_marketplace_world(24, seed=3)
        harness = EquivalenceHarness(world, "Trader")
        harness.add_filter(
            BinaryOp("==", ColumnRef("is_seller"), Literal(1)), lambda r: r["is_seller"] == 1
        )
        harness.add_filter(
            BinaryOp(">", ColumnRef("gold"), Literal(25)), lambda r: r["gold"] > 25
        )
        harness.drain()
        rng = random.Random(17)
        for tick in range(8):
            ids = [r["id"] for r in harness.table.rows()]
            world.set_state("Trader", rng.choice(ids), gold=rng.uniform(0, 60))
            world.tick()
            harness.drain()
            harness.verify(f"at tick {tick}")

    def test_rts_change_log_overflow_forces_snapshot_resync(self):
        world = build_rts_world(40, seed=5, use_incremental=False)
        table = primary_table(world, "Unit")
        table.enable_change_log(capacity=8)  # one tick of physics overflows this
        harness = EquivalenceHarness(world, "Unit")
        sid = harness.add_filter(
            BinaryOp(">", ColumnRef("health"), Literal(10)), lambda r: r["health"] > 10
        )
        aid = harness.add_aoi(radius=25, observer_id=5)
        harness.drain()
        for tick in range(5):
            world.tick()
            harness.drain()
            harness.verify(f"at tick {tick}")
        assert harness.states[sid].snapshots_applied > 1
        assert harness.states[aid].snapshots_applied > 1

    def test_outbox_overflow_resyncs_within_same_flush(self):
        world = build_rts_world(40, seed=5)
        manager = world.subscriptions
        session = manager.connect(outbox_capacity=2)
        table = primary_table(world, "Unit")
        sids = [
            manager.subscribe_table(session, "Unit"),
            manager.subscribe_table(
                session, "Unit", predicate=BinaryOp("==", ColumnRef("player"), Literal(0))
            ),
            manager.subscribe_aoi(session, "Unit", radius=30, center=(50, 50)),
        ]
        states = {sid: ResultSet() for sid in sids}
        drain(session, states)
        for tick in range(7):
            world.tick()
            if tick % 3 == 0:
                drain(session, states)  # slow consumer: skips most ticks
        # Whenever the consumer drains, it must land on current state — the
        # flush converts refused deltas into resync snapshots immediately.
        drain(session, states)
        assert session.outbox.overflows > 0
        full = [dict(r) for r in table.rows()]
        assert multiset(full) == multiset(states[sids[0]].rows())
        assert multiset([r for r in full if r["player"] == 0]) == multiset(
            states[sids[1]].rows()
        )
        assert multiset(
            [r for r in full if abs(r["x"] - 50) <= 30 and abs(r["y"] - 50) <= 30]
        ) == multiset(states[sids[2]].rows())


# ------------------------------------------------------------------------------------
# spatial interest management specifics
# ------------------------------------------------------------------------------------


class TestInterestManagement:
    def test_moved_row_only_touches_subscribers_with_overlapping_cells(self):
        catalog, table = build_bare_catalog(n=0)
        for i, (x, y) in enumerate([(10, 10), (90, 90), (12, 12)]):
            table.insert({"id": i, "player": 0, "x": x, "y": y})
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        near = manager.connect()
        far = manager.connect()
        sid_near = manager.subscribe_aoi(near, "unit", radius=8, center=(10, 10), cell_size=8)
        sid_far = manager.subscribe_aoi(far, "unit", radius=8, center=(90, 90))
        near.take(), far.take()
        # Move the unit at (12,12) slightly: only the near AOI is affected.
        table.update(table.rowid_for_key(2), {"x": 14.0})
        manager.flush(0)
        interest = manager._subs[sid_near][1]
        assert interest.last_stats["touched_subs"] == 1
        near_msgs, far_msgs = near.take(), far.take()
        assert len(near_msgs) == 1 and isinstance(near_msgs[0], Delta)
        assert far_msgs == []
        assert sid_far not in {m.subscription_id for m in near_msgs}

    def test_observer_enter_exit_semantics(self):
        catalog, table = build_bare_catalog(n=0)
        table.insert({"id": 0, "player": 0, "x": 0, "y": 0})    # the observer
        table.insert({"id": 1, "player": 0, "x": 30, "y": 0})   # out of range
        manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
        session = manager.connect()
        sid = manager.subscribe_aoi(session, "unit", radius=10, observer_id=0)
        rs = ResultSet()
        for m in session.take():
            rs.apply(m)
        assert multiset(rs.rows()) == multiset([dict(r) for r in table.rows() if r["id"] == 0])
        # Observer walks toward the other unit: it enters the AOI.
        table.update(table.rowid_for_key(0), {"x": 25.0})
        manager.flush(0)
        for m in session.take():
            rs.apply(m)
        assert {r["id"] for r in rs.rows()} == {0, 1}
        # Observer destroyed: the view empties (standing query over nothing).
        table.delete(table.rowid_for_key(0))
        manager.flush(1)
        for m in session.take():
            rs.apply(m)
        assert rs.rows() == []

    def test_fog_of_war_workload_streams_match_vision_boxes(self):
        world = build_rts_world(40, seed=5)
        manager, sessions, sub_ids = attach_fog_of_war(world, n_observers=5, vision=12.0)
        states = {sid: ResultSet() for sid in sub_ids}
        observers = {}
        for session, sid in zip(sessions, sub_ids):
            for message in session.take():
                states[sid].apply(message)
            observers[sid] = manager._subs[sid][1].subscription(sid).observer_key
        table = primary_table(world, "Unit")
        for tick in range(6):
            world.tick()
            for session, sid in zip(sessions, sub_ids):
                for message in session.take():
                    states[sid].apply(message)
                observer = table.get_by_key(observers[sid])
                expect = aoi_expected(table, ("x", "y"), (observer["x"], observer["y"]), (12.0, 12.0))
                assert multiset(expect) == multiset(states[sid].rows()), f"tick {tick}"
        report = world.reports[-1]
        assert report.subscription_messages > 0
        assert report.flush_seconds > 0.0
        assert report.total_seconds >= report.flush_seconds


# ------------------------------------------------------------------------------------
# tick-loop integration
# ------------------------------------------------------------------------------------


class TestTickIntegration:
    def test_worlds_without_subscribers_skip_the_flush_phase(self):
        world = build_rts_world(20, seed=5)
        world.tick()
        report = world.reports[-1]
        assert report.subscription_messages == 0
        assert not world.has_subscribers

    def test_flush_phase_reported_per_tick(self):
        world = build_rts_world(20, seed=5)
        manager = world.subscriptions
        session = manager.connect()
        manager.subscribe_table(session, "Unit")
        world.tick()
        report = world.reports[-1]
        assert world.has_subscribers
        assert report.subscription_messages >= 1
        assert report.subscription_delta_rows > 0  # physics moves every unit
        assert manager.current_tick == report.tick

    def test_manager_stats_shape(self):
        world = build_rts_world(20, seed=5)
        manager = world.subscriptions
        session = manager.connect()
        manager.subscribe_table(session, "Unit")
        manager.subscribe_aoi(session, "Unit", radius=10, center=(50, 50))
        world.tick()
        stats = manager.stats()
        assert stats["sessions"] == 1
        assert stats["subscriptions"] == 2
        assert stats["query_groups"] == 1
        assert stats["aoi_subscribers"] == 1
        assert stats["last_flush"]["groups"] == 1


# ------------------------------------------------------------------------------------
# the TCP/JSON-lines transport
# ------------------------------------------------------------------------------------


class TestServer:
    def test_end_to_end_stream_over_tcp(self):
        from repro.service.server import SubscriptionClient, SubscriptionServer

        async def scenario():
            world = build_rts_world(30, seed=5)
            server = SubscriptionServer(world)
            await server.start()
            client = SubscriptionClient(*server.address)
            await client.connect()
            sid = await client.subscribe_table("Unit", filter=[["player", "==", 1]])
            aid = await client.subscribe_aoi("Unit", radius=15, observer_id=2)
            for _ in range(4):
                await server.step()
            await client.pump()
            table = primary_table(world, "Unit")
            expect = [dict(r) for r in table.rows() if r["player"] == 1]
            assert multiset(expect) == multiset(client.rows(sid))
            observer = table.get_by_key(2)
            expect = aoi_expected(
                table, ("x", "y"), (observer["x"], observer["y"]), (15.0, 15.0)
            )
            assert multiset(expect) == multiset(client.rows(aid))
            await client.close()
            await server.stop()

        asyncio.run(scenario())

    def test_server_rejects_bad_requests_without_dying(self):
        from repro.service.server import SubscriptionServer

        async def scenario():
            world = build_rts_world(10, seed=5, with_physics=False)
            server = SubscriptionServer(world)
            await server.start()
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(b'{"op": "no_such_op"}\n')
            await writer.drain()
            import json

            response = json.loads(await reader.readline())
            assert response["type"] == "error"
            # The connection (and server) survives and still serves.
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["type"] == "pong"
            writer.close()
            await server.stop()

        asyncio.run(scenario())


def test_sgl_compiled_effect_query_as_standing_query():
    """A compiled SGL effect query's plan subscribes like any other —
    clients can watch exactly what a script computes (enemies_seen)."""
    world = build_rts_world(40, seed=5)
    query = world.compiled.script("count_neighbours").queries_by_segment[0][0]
    manager = world.subscriptions
    session = manager.connect()
    sid = manager.subscribe_query(session, query.plan)
    states = {sid: ResultSet()}
    drain(session, states)
    scratch = Executor(world.catalog, use_incremental=False)
    for _ in range(4):
        world.tick()
        drain(session, states)
    expect = scratch.execute(query.plan, cache=False).rows
    assert multiset(expect) == multiset(states[sid].rows())


def test_spawned_units_reach_streams_without_ticking():
    """Flush can also be driven manually (no GameWorld tick required)."""
    catalog, table = build_bare_catalog(n=10)
    manager = SubscriptionManager(catalog=catalog, executor=Executor(catalog))
    session = manager.connect()
    sid = manager.subscribe_table(session, "unit")
    states = {sid: ResultSet()}
    drain(session, states)
    table.insert({"id": 500, "player": 9, "x": 1, "y": 1})
    manager.flush()
    drain(session, states)
    assert multiset([dict(r) for r in table.rows()]) == multiset(states[sid].rows())


def test_unit_rows_generator_shape():
    rows = list(unit_rows(5))
    assert len(rows) == 5 and {"player", "x", "y"} <= set(rows[0])


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
