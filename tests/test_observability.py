"""Tests for the observability layer (``repro.obs``).

Pins down the primitives (histogram edge cases, exact Prometheus
exposition, concurrent merges), the tick wiring (``attach_metrics`` /
``attach_tracer``, structured tick logs, zeroed pre-tick counters), the
HTTP scrape endpoint, the sharded-world aggregation invariant (per-shard
counters sum to the coordinator report), the loadtest ramp driver, and
the <3% observation-overhead gate.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import statistics
import sys
import threading
import time

import pytest

from repro.engine import EngineConfig
from repro.obs import (
    CONTENT_TYPE,
    MetricError,
    MetricsRegistry,
    MetricsServer,
    PHASE_FIELDS,
    TickTracer,
    WorldMetrics,
    default_latency_buckets,
    render,
    scrape,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.runtime.debug import TickInspector, TickLogger
from repro.service.server import SubscriptionServer
from repro.shard import ShardSpec, ShardedWorld
from repro.workloads.rts import build_rts_world, unit_rows

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

import loadtest  # noqa: E402

WORLD_SIZE = 300.0


def shard_world_factory():
    """Module-level (picklable) factory for the sharded scrape test."""
    return build_rts_world(0, world_size=WORLD_SIZE)


# -- histogram edge cases ---------------------------------------------------------------


def test_histogram_empty():
    h = Histogram()
    assert h.count == 0 and h.sum == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    assert h.cumulative() == [0] * len(h.bounds)


def test_histogram_single_observation_is_exact():
    h = Histogram()
    h.observe(0.0123)
    # Clamping to the observed [min, max] makes one sample exact at every q.
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert h.quantile(q) == pytest.approx(0.0123)


def test_histogram_overflow_bucket():
    h = Histogram(bounds=(0.001, 0.01))
    h.observe(5.0)
    h.observe(7.0)
    assert h.overflow == 2
    assert h.cumulative() == [0, 0]
    # The +Inf bucket (count) still covers them, and quantiles stay within
    # the observed range instead of escaping past the last finite bound.
    assert h.count == 2
    assert 5.0 <= h.quantile(0.5) <= 7.0
    assert h.quantile(0.99) <= 7.0


def test_histogram_quantile_monotone_and_bounded():
    rng = random.Random(7)
    h = Histogram()
    values = [rng.expovariate(1 / 0.003) for _ in range(500)]
    for value in values:
        h.observe(value)
    q = [h.quantile(x) for x in (0.5, 0.95, 0.99)]
    assert q[0] <= q[1] <= q[2]
    assert min(values) <= q[0] and q[2] <= max(values)


def test_histogram_rejects_bad_bounds_and_quantiles():
    with pytest.raises(MetricError):
        Histogram(bounds=())
    with pytest.raises(MetricError):
        Histogram(bounds=(1.0, 0.5))
    with pytest.raises(MetricError):
        Histogram().quantile(1.5)


def test_default_buckets_are_a_log_ladder():
    buckets = default_latency_buckets()
    assert buckets[0] == pytest.approx(1e-6)
    assert all(b2 == pytest.approx(b1 * 2) for b1, b2 in zip(buckets, buckets[1:]))
    assert buckets[-1] > 10.0  # covers multi-second stalls before overflow


def test_counter_and_gauge_semantics():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(MetricError):
        c.inc(-1)
    g = Gauge()
    g.set(10)
    g.inc(-3)
    assert g.value == 7.0


# -- registry declaration and exposition ------------------------------------------------


def test_registry_rejects_invalid_and_conflicting_declarations():
    registry = MetricsRegistry()
    with pytest.raises(MetricError):
        registry.counter("0bad")
    with pytest.raises(MetricError):
        registry.counter("ok_total", labels=("0bad",))
    registry.counter("dual", labels=("a",))
    with pytest.raises(MetricError):
        registry.gauge("dual", labels=("a",))  # kind mismatch
    with pytest.raises(MetricError):
        registry.counter("dual", labels=("b",))  # label mismatch
    with pytest.raises(MetricError):
        registry.counter("dual", labels=("a",)).labels(b="1")  # wrong label set


def test_prometheus_exposition_exact():
    registry = MetricsRegistry()
    registry.counter("demo_requests_total", "Requests served.", labels=("shard",)).labels(
        shard="0"
    ).inc(3)
    registry.gauge("demo_temperature", "Degrees.").labels().set(2.5)
    h = registry.histogram("demo_latency_seconds", "Latency.", buckets=(0.125, 1.0)).labels()
    for value in (0.0625, 0.5, 5.0):  # exact binary floats: the sum renders cleanly
        h.observe(value)
    assert render(registry) == (
        "# HELP demo_latency_seconds Latency.\n"
        "# TYPE demo_latency_seconds histogram\n"
        'demo_latency_seconds_bucket{le="0.125"} 1\n'
        'demo_latency_seconds_bucket{le="1"} 2\n'
        'demo_latency_seconds_bucket{le="+Inf"} 3\n'
        "demo_latency_seconds_sum 5.5625\n"
        "demo_latency_seconds_count 3\n"
        "# HELP demo_requests_total Requests served.\n"
        "# TYPE demo_requests_total counter\n"
        'demo_requests_total{shard="0"} 3\n'
        "# HELP demo_temperature Degrees.\n"
        "# TYPE demo_temperature gauge\n"
        "demo_temperature 2.5\n"
    )


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("esc_total", "Help with \\ and\nnewline", labels=("name",)).labels(
        name='a"b\\c\nd'
    ).inc()
    text = render(registry)
    assert '# HELP esc_total Help with \\\\ and\\nnewline' in text
    assert 'esc_total{name="a\\"b\\\\c\\nd"} 1' in text


def test_registry_snapshot_round_trip_and_merge():
    registry = MetricsRegistry()
    registry.counter("rt_total", labels=("k",)).labels(k="a").inc(4)
    h = registry.histogram("rt_seconds", buckets=(0.1, 1.0)).labels()
    h.observe(0.05)
    h.observe(3.0)
    clone = MetricsRegistry.from_dict(registry.as_dict())
    assert render(clone) == render(registry)
    clone.merge(registry.as_dict())  # merging doubles counters and buckets
    assert clone.value("rt_total", k="a") == 8
    merged = clone.get("rt_seconds").labels()
    assert merged.count == 4 and merged.sum == pytest.approx(2 * h.sum)
    assert merged.min == h.min and merged.max == h.max


def test_registry_merge_rejects_incompatible_bucket_layouts():
    a = MetricsRegistry()
    a.histogram("mix_seconds", buckets=(0.1, 1.0)).labels().observe(0.5)
    b = MetricsRegistry()
    b.histogram("mix_seconds", buckets=(0.1,))
    snapshot = a.as_dict()
    snapshot["mix_seconds"]["buckets"] = [0.1]
    with pytest.raises(MetricError):
        b.merge(snapshot)


def test_concurrent_worker_merges_round_trip():
    """Shard-style aggregation: worker snapshots merged from many threads."""
    workers, per_worker = 8, 50
    central = MetricsRegistry()

    def worker(worker_id: int) -> None:
        local = MetricsRegistry()
        counter = local.counter("cw_ticks_total", labels=("shard",)).labels(
            shard=str(worker_id)
        )
        hist = local.histogram("cw_seconds", buckets=(0.001, 0.01, 0.1)).labels()
        for i in range(per_worker):
            counter.inc()
            hist.observe(0.0005 * (1 + i % 3))
            central.merge(local.as_dict())
            # Reset the local between ships by rebuilding it (workers ship
            # deltas in the real protocol; here each ship is cumulative, so
            # ship a fresh registry instead).
            local = MetricsRegistry()
            counter = local.counter("cw_ticks_total", labels=("shard",)).labels(
                shard=str(worker_id)
            )
            hist = local.histogram("cw_seconds", buckets=(0.001, 0.01, 0.1)).labels()

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for w in range(workers):
        assert central.value("cw_ticks_total", shard=str(w)) == per_worker
    hist = central.get("cw_seconds").labels()
    assert hist.count == workers * per_worker


# -- world wiring -----------------------------------------------------------------------


def test_world_metrics_collects_phases_and_counters():
    world = build_rts_world(40)
    metrics = world.attach_metrics()
    assert world.attach_metrics() is metrics  # idempotent
    world.run(3)
    registry = metrics.registry
    assert registry.value("repro_ticks_total") == 3
    assert registry.value("repro_tick") == world.reports[-1].tick
    phase_family = registry.get("repro_tick_phase_seconds")
    for phase, _ in PHASE_FIELDS:
        assert phase_family.labels(phase=phase).count == 3
    expected = sum(r.effect_assignments for r in world.reports)
    assert registry.value("repro_effect_assignments_total") == expected
    quantiles = metrics.phase_quantiles()
    assert set(quantiles) == {phase for phase, _ in PHASE_FIELDS} | {"tick"}
    for entry in quantiles.values():
        assert entry["p50"] <= entry["p95"] <= entry["p99"]
    text = render(registry)
    assert "# TYPE repro_tick_phase_seconds histogram" in text
    assert 'repro_tick_phase_seconds_bucket{phase="effect",le="+Inf"} 3' in text


def test_inspector_tick_counters_zeroed_before_first_tick():
    world = build_rts_world(10)
    inspector = TickInspector(world)
    before = inspector.tick_counters()
    assert before["tick"] == -1
    assert before["effect_assignments"] == 0
    assert before["total_seconds"] == 0.0
    world.tick()
    after = inspector.tick_counters()
    assert set(before) == set(after)  # schema is stable across the first tick
    assert after["tick"] == 0
    for _, field in PHASE_FIELDS:
        assert field in before


def test_tick_logger_structured_records():
    world = build_rts_world(10)
    logger = TickLogger(world, checkpoint_every=2)
    logger.run(3)
    assert len(logger.log_records) == len(logger.log_lines) == 3
    record = logger.log_records[-1]
    assert record["tick"] == 2
    for _, field in PHASE_FIELDS:
        assert field in record
    assert record["engine_config"] == world.config.as_dict()
    parsed = [json.loads(line) for line in logger.json_lines()]
    assert parsed == logger.log_records
    logger.rewind_to(1)
    assert len(logger.log_records) == len(logger.log_lines) == 1
    assert logger.log_records[0]["tick"] == 0


# -- tracer -----------------------------------------------------------------------------


def test_tracer_phase_spans_follow_execution_order():
    world = build_rts_world(10)
    tracer = world.attach_tracer()
    world.run(2)
    phase_events = [e for e in tracer.events if e["cat"] == "phase"]
    assert [e["name"] for e in phase_events[: len(PHASE_FIELDS)]] == [
        phase for phase, _ in PHASE_FIELDS
    ]
    tick_events = [e for e in tracer.events if e["cat"] == "tick"]
    assert len(tick_events) == 2
    starts = [e["ts"] for e in tracer.events]
    assert starts == sorted(starts)  # synthetic single-pid clock is monotone
    payload = json.loads(tracer.to_json())
    assert payload["traceEvents"] and payload["displayTimeUnit"] == "ms"


def test_tracer_emits_mqo_subplan_spans():
    # Incremental views normally absorb the queries; force materialization
    # so shared subplans actually evaluate and get timed.
    world = build_rts_world(30, config=EngineConfig(use_incremental=False))
    tracer = TickTracer()
    world.attach_tracer(tracer)  # external tracer is late-bound to the world
    world.run(2)
    mqo = [e for e in tracer.events if e["cat"] == "mqo"]
    assert mqo, "expected shared-subplan spans under use_incremental=False"
    assert all(e["args"]["fingerprint"] for e in mqo)
    effect_spans = [
        e for e in tracer.events if e["cat"] == "phase" and e["name"] == "effect"
    ]
    # Subplan spans nest inside their tick's effect phase on the timeline.
    for span in mqo:
        parent = max(
            (e for e in effect_spans if e["ts"] <= span["ts"]),
            key=lambda e: e["ts"],
        )
        assert span["ts"] + span["dur"] <= parent["ts"] + parent["dur"]


def test_tracer_export(tmp_path):
    world = build_rts_world(10)
    tracer = world.attach_tracer()
    world.tick()
    path = tmp_path / "trace.json"
    tracer.export(str(path))
    assert json.loads(path.read_text())["traceEvents"]


# -- HTTP endpoint ----------------------------------------------------------------------


def test_metrics_server_scrape_and_health():
    async def run() -> None:
        world = build_rts_world(20)
        metrics = world.attach_metrics()
        world.run(2)
        server = MetricsServer(
            metrics.registry, health=lambda: {"tick": world.tick_count}
        )
        await server.start()
        assert server.started
        try:
            status, body = await scrape(*server.address)
            assert status == 200
            assert "repro_ticks_total 2" in body
            assert 'repro_tick_phase_seconds_bucket{phase="flush"' in body
            status, body = await scrape(*server.address, "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok", "tick": 2}
            status, _ = await scrape(*server.address, "/missing")
            assert status == 404
            # Non-GET methods are rejected with 405.
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            head = await reader.readline()
            assert b"405" in head
            writer.close()
        finally:
            await server.stop()
        assert not server.started

    asyncio.run(run())


def test_metrics_server_rides_along_subscription_server():
    async def run() -> None:
        world = build_rts_world(20)
        metrics = world.attach_metrics()
        server = SubscriptionServer(
            world, metrics_server=MetricsServer(metrics.registry)
        )
        await server.start()
        try:
            await server.step()
            status, body = await scrape(*server.metrics_server.address)
            assert status == 200 and "repro_ticks_total 1" in body
        finally:
            await server.stop()
        assert not server.metrics_server.started

    asyncio.run(run())


def test_content_type_is_prometheus_text():
    assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")


# -- sharded aggregation ----------------------------------------------------------------


def test_sharded_scrape_matches_coordinator_report():
    """Acceptance: a 2-worker fleet serves a scrape whose per-shard counters
    sum exactly to the coordinator's ``ShardTickReport`` totals."""
    spec = ShardSpec(
        axis_column="x",
        world_min=0.0,
        world_max=WORLD_SIZE,
        halo_width=12.0,
        partitioned_classes=("Unit",),
    )
    with ShardedWorld(shard_world_factory, spec, 2) as world:
        metrics = world.attach_metrics()
        assert world.attach_metrics() is metrics
        tracer = world.attach_tracer()
        world.load({"Unit": list(unit_rows(160, world_size=WORLD_SIZE, seed=29))})
        for _ in range(3):
            world.tick()

        async def run() -> str:
            server = MetricsServer(metrics.registry)
            await server.start()
            try:
                status, body = await scrape(*server.address)
                assert status == 200
                return body
            finally:
                await server.stop()

        text = asyncio.run(run())
        reports = world.reports

    def shard_series(name: str) -> dict[str, float]:
        out = {}
        for line in text.splitlines():
            if line.startswith(name + "{"):
                labels, value = line[len(name):].split(" ")
                out[labels.split('"')[1]] = float(value)
        return out

    assert set(shard_series("repro_shard_exchange_bytes_total")) == {"0", "1"}
    for metric, field in (
        ("repro_shard_exchange_bytes_total", "exchange_bytes"),
        ("repro_shard_exchange_rows_total", "exchange_rows"),
        ("repro_shard_halo_rows_total", "halo_rows"),
    ):
        assert sum(shard_series(metric).values()) == sum(
            getattr(r, field) for r in reports
        ), metric
    per_shard_cpu = shard_series("repro_shard_cpu_seconds_total")
    for shard, total in per_shard_cpu.items():
        expected = sum(r.worker_cpu_seconds[int(shard)] for r in reports)
        assert total == pytest.approx(expected)
    critical = [
        float(line.split(" ")[1])
        for line in text.splitlines()
        if line.startswith("repro_shard_critical_path_seconds_total ")
    ]
    assert critical[0] == pytest.approx(sum(r.critical_path_seconds for r in reports))
    assert "repro_shard_ticks_total 3" in text
    # Per-worker phase histograms populated for both shards...
    assert 'repro_shard_tick_phase_seconds_bucket{shard="0",phase="effect",le="+Inf"} 3' in text
    assert 'repro_shard_tick_phase_seconds_bucket{shard="1",phase="effect",le="+Inf"} 3' in text
    # ...and the tracer rendered the fleet as parallel pid tracks.
    pids = {e["pid"] for e in tracer.events}
    assert pids == {0, 1, 2}


# -- loadtest ramp driver ---------------------------------------------------------------


def test_loadtest_reports_breaking_point(tmp_path):
    result = loadtest.run_loadtest(
        start_units=30,
        growth=30,
        max_steps=3,
        ticks_per_step=2,
        deadline_ms=0.0001,  # guaranteed breach on the first step
        subscribers_per_step=2,
        world_size=120.0,
    )
    assert result["breached"] is True
    bp = result["breaking_point"]
    assert bp["units"] == 30 and bp["subscribers"] == 2
    assert bp["median_tick_ms"] > 0.0001
    for phase in [phase for phase, _ in PHASE_FIELDS] + ["tick"]:
        q = result["phase_quantiles_ms"][phase]
        assert q["p50"] <= q["p95"] <= q["p99"]
    artifact = tmp_path / "BENCH_tick.json"
    loadtest.append_history(result, str(artifact))
    loadtest.append_history(result, str(artifact))
    data = json.loads(artifact.read_text())
    assert len(data["history"]) == 2
    entry = data["history"][-1]["loadtest"]
    assert entry["breached"] is True and "steps" not in entry


def test_loadtest_completes_under_generous_deadline():
    result = loadtest.run_loadtest(
        start_units=20,
        growth=20,
        max_steps=2,
        ticks_per_step=2,
        deadline_ms=60_000.0,
        subscribers_per_step=2,
        world_size=120.0,
    )
    assert result["breached"] is False and result["breaking_point"] is None
    assert [s["units"] for s in result["steps"]] == [20, 40]
    assert result["steps"][-1]["subscribers"] == 4
    assert result["steps"][-1]["subscription_messages"] >= 0


# -- overhead gate ----------------------------------------------------------------------


def test_metrics_observation_overhead_under_3_percent():
    """ISSUE 10 gate: feeding a TickReport into the registry must cost
    <3% of a median tick. Measured directly — N observe() calls against the
    median tick time of the gated rts workload size."""
    world = build_rts_world(150)
    world.tick()  # warm caches before timing
    tick_samples = []
    for _ in range(10):
        start = time.perf_counter()
        world.tick()
        tick_samples.append(time.perf_counter() - start)
    median_tick = statistics.median(tick_samples)

    metrics = WorldMetrics()
    report = world.reports[-1]
    rounds = 300
    start = time.perf_counter()
    for _ in range(rounds):
        metrics.observe(report)
    per_observe = (time.perf_counter() - start) / rounds
    assert per_observe < 0.03 * median_tick, (
        f"observe() cost {per_observe * 1e6:.1f}µs vs median tick "
        f"{median_tick * 1e3:.2f}ms ({per_observe / median_tick:.1%})"
    )
