"""Tests for the SGL lexer, parser, semantic analysis, schema generation and
multi-tick segmentation."""

from __future__ import annotations

import pytest

from repro.engine.types import DataType
from repro.sgl import SchemaLayout, SchemaGenerator, analyze_program, parse_program
from repro.sgl.ast_nodes import (
    AccumLoop,
    AtomicBlock,
    Binary,
    EffectAssign,
    FieldAccess,
    Identifier,
    IfStatement,
    NumberLiteral,
    SetInsert,
    WaitNextTick,
)
from repro.sgl.errors import SGLSemanticError, SGLSyntaxError
from repro.sgl.lexer import tokenize
from repro.sgl.multitick import pc_variable_name, segment_script
from repro.sgl.parser import parse_expression
from repro.engine.catalog import Catalog

FIGURE1 = """
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number health = 0;
  effects:
    number vx : avg;
    number vy : avg;
    number damage : sum;
}
"""

FIGURE2_SCRIPT = FIGURE1 + """
class Marker { state: number x = 0; effects: number hits : sum; }

script count_in_range(Unit self) {
  accum number cnt with sum over Unit w from UNIT {
    if (w.x >= x - 5 && w.x <= x + 5 &&
        w.y >= y - 5 && w.y <= y + 5) {
      cnt <- 1;
    }
  } in {
    damage <- cnt;
  }
}
"""


class TestLexer:
    def test_tokenizes_figure1(self):
        tokens = tokenize(FIGURE1)
        kinds = {t.kind for t in tokens}
        assert kinds == {"keyword", "ident", "number", "op", "eof"}
        assert tokens[-1].kind == "eof"

    def test_comments_and_strings(self):
        tokens = tokenize('// line\n/* block\n comment */ "hi there" 3.5')
        assert [t.kind for t in tokens[:-1]] == ["string", "number"]
        assert tokens[0].text == "hi there"
        assert tokens[1].text == "3.5"

    def test_operators_longest_match(self):
        texts = [t.text for t in tokenize("a <- b <= c >= d == e != f && g || h")]
        assert "<-" in texts and "<=" in texts and "&&" in texts

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[1].line == 2 and tokens[1].column == 3

    def test_unterminated_string_raises(self):
        with pytest.raises(SGLSyntaxError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(SGLSyntaxError):
            tokenize("a @ b")


class TestParser:
    def test_figure1_class_declaration(self):
        program = parse_program(FIGURE1)
        unit = program.class_named("Unit")
        assert unit is not None
        assert [f.name for f in unit.state_fields] == ["player", "x", "y", "health"]
        assert [f.combinator for f in unit.effect_fields] == ["avg", "avg", "sum"]
        assert isinstance(unit.state_field("player").default, NumberLiteral)

    def test_figure2_accum_loop(self):
        program = parse_program(FIGURE2_SCRIPT)
        script = program.script_named("count_in_range")
        loop = script.body.statements[0]
        assert isinstance(loop, AccumLoop)
        assert loop.accum_var == "cnt" and loop.combinator == "sum"
        assert loop.loop_var == "w"
        assert isinstance(loop.body.statements[0], IfStatement)
        follow = loop.follow.statements[0]
        assert isinstance(follow, EffectAssign)

    def test_expression_precedence(self):
        expr = parse_expression("1 + 2 * 3 > 6 && x < 4")
        assert isinstance(expr, Binary) and expr.op == "&&"
        left = expr.left
        assert isinstance(left, Binary) and left.op == ">"

    def test_field_access_and_calls(self):
        expr = parse_expression("distance(self.x, self.y, u.x, u.y)")
        assert expr.name == "distance"
        assert isinstance(expr.args[0], FieldAccess)

    def test_set_insert_and_wait(self):
        source = FIGURE1 + """
        script go(Unit self) {
          vx <- 1;
          waitNextTick;
          damage <- 2;
        }
        """
        program = parse_program(source)
        body = program.script_named("go").body.statements
        assert isinstance(body[1], WaitNextTick)

    def test_atomic_block_with_constraints(self):
        source = FIGURE1 + """
        script buy(Unit self) {
          atomic require(health >= 0, player >= 0) {
            damage <- 1;
          }
        }
        """
        program = parse_program(source)
        block = program.script_named("buy").body.statements[0]
        assert isinstance(block, AtomicBlock)
        assert len(block.constraints) == 2

    def test_else_if_chains(self):
        source = FIGURE1 + """
        script go(Unit self) {
          if (x > 1) { vx <- 1; } else if (x > 0) { vx <- 2; } else { vx <- 3; }
        }
        """
        statement = parse_program(source).script_named("go").body.statements[0]
        assert isinstance(statement.else_block.statements[0], IfStatement)

    def test_ref_typed_field(self):
        source = """
        class Item { state: number weight = 1; effects: number used : sum; }
        class Unit { state: ref<Item> weapon; effects: number damage : sum; }
        """
        unit = parse_program(source).class_named("Unit")
        assert unit.state_field("weapon").ref_class == "Item"

    def test_syntax_errors(self):
        with pytest.raises(SGLSyntaxError):
            parse_program("class { }")
        with pytest.raises(SGLSyntaxError):
            parse_program(FIGURE1 + "script broken(Unit self) { x + 1; }")
        with pytest.raises(SGLSyntaxError):
            parse_program(FIGURE1 + "script broken(Unit self) { damage <- 1 }")


class TestSemantics:
    def analyze(self, script_body: str):
        return analyze_program(parse_program(FIGURE1 + script_body))

    def test_valid_program_analyzes(self):
        analyzed = analyze_program(parse_program(FIGURE2_SCRIPT))
        info = analyzed.info_for("count_in_range")
        assert info.accum_vars == {"cnt": "sum"}
        assert not info.multi_tick

    def test_state_is_read_only(self):
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { x <- 1; }")
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { x = 1; }")

    def test_effects_are_write_only(self):
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { vx <- damage + 1; }")

    def test_accum_var_not_readable_in_body(self):
        with pytest.raises(SGLSemanticError):
            self.analyze(
                """
                script s(Unit self) {
                  accum number c with sum over Unit u from Unit {
                    if (c > 0) { c <- 1; }
                  } in { damage <- 1; }
                }
                """
            )

    def test_accum_var_not_writable_in_follow(self):
        with pytest.raises(SGLSemanticError):
            self.analyze(
                """
                script s(Unit self) {
                  accum number c with sum over Unit u from Unit {
                    c <- 1;
                  } in { c <- 2; }
                }
                """
            )

    def test_wait_not_allowed_in_accum_or_atomic(self):
        with pytest.raises(SGLSemanticError):
            self.analyze(
                """
                script s(Unit self) {
                  accum number c with sum over Unit u from Unit {
                    waitNextTick;
                  } in { }
                }
                """
            )
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { atomic { waitNextTick; } }")

    def test_unknown_names_rejected(self):
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { vx <- bogus; }")
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { bogus <- 1; }")
        with pytest.raises(SGLSemanticError):
            analyze_program(parse_program(FIGURE1 + "script s(Ghost self) { }"))

    def test_unknown_combinator_rejected(self):
        with pytest.raises(SGLSemanticError):
            analyze_program(
                parse_program("class A { state: number x = 0; effects: number e : frob; }")
            )

    def test_duplicate_definitions_rejected(self):
        with pytest.raises(SGLSemanticError):
            analyze_program(parse_program(FIGURE1 + FIGURE1))
        with pytest.raises(SGLSemanticError):
            analyze_program(
                parse_program("class A { state: number x = 0; number x = 1; effects: }")
            )

    def test_undeclared_local_assignment_rejected(self):
        with pytest.raises(SGLSemanticError):
            self.analyze("script s(Unit self) { y2 = 3; }")

    def test_multi_tick_flag(self):
        analyzed = self.analyze("script s(Unit self) { vx <- 1; waitNextTick; vy <- 1; }")
        assert analyzed.info_for("s").multi_tick


class TestSchemaGeneration:
    def test_single_layout(self):
        program = parse_program(FIGURE1)
        generated = SchemaGenerator(SchemaLayout.SINGLE).generate(program.class_named("Unit"))
        assert list(generated.state_tables) == ["Unit"]
        schema = generated.state_tables["Unit"]
        assert schema.names == ("id", "player", "x", "y", "health")
        assert schema.column("player").dtype is DataType.NUMBER

    def test_vertical_layout_splits_spatial_fields(self):
        program = parse_program(FIGURE1)
        generated = SchemaGenerator(SchemaLayout.VERTICAL).generate(program.class_named("Unit"))
        assert len(generated.state_tables) == 2
        first = list(generated.state_tables.values())[0]
        assert set(first.names) == {"id", "x", "y"}

    def test_per_effect_layout_creates_effect_tables(self):
        program = parse_program(FIGURE1)
        generated = SchemaGenerator(SchemaLayout.PER_EFFECT).generate(program.class_named("Unit"))
        assert set(generated.effect_tables) == {"vx", "vy", "damage"}

    def test_register_and_extent_plan(self):
        program = parse_program(FIGURE1)
        catalog = Catalog()
        generator = SchemaGenerator(SchemaLayout.VERTICAL)
        generated = generator.register(catalog, program.class_named("Unit"))
        assert catalog.has_table("Unit") and catalog.has_table("Unit__part1")
        plan = generator.extent_plan(generated, alias="self")
        schema = plan.output_schema(catalog)
        assert "self.x" in schema.names and "self.health" in schema.names

    def test_explicit_vertical_groups(self):
        program = parse_program(FIGURE1)
        generator = SchemaGenerator(SchemaLayout.VERTICAL, vertical_groups=[["player", "health"]])
        generated = generator.generate(program.class_named("Unit"))
        first = list(generated.state_tables.values())[0]
        assert set(first.names) == {"id", "player", "health"}


class TestMultiTick:
    def test_segmentation(self):
        source = FIGURE1 + """
        script seq(Unit self) {
          vx <- 1;
          waitNextTick;
          vy <- 1;
          waitNextTick;
          damage <- 1;
        }
        """
        segmented = segment_script(parse_program(source).script_named("seq"))
        assert segmented.is_multi_tick
        assert len(segmented.segments) == 3
        assert segmented.pc_variable == pc_variable_name("seq")
        assert segmented.next_pc(0) == 1
        assert segmented.next_pc(2) == 0  # wraps around

    def test_single_tick_script_has_one_segment(self):
        segmented = segment_script(parse_program(FIGURE2_SCRIPT).script_named("count_in_range"))
        assert not segmented.is_multi_tick
        assert len(segmented.segments) == 1
