"""Tick-wide multi-query optimization: fingerprints, the shared-subplan
pipeline, fused effect aggregation, and cache-invalidation interactions.

The load-bearing property is end-to-end equivalence: a world ticked through
the shared pipeline (``use_mqo=True``, the default) must produce exactly
the combined effects and post-tick state of the per-query path
(``use_mqo=False``), across workloads that mix batch, incremental,
index-probe and transactional execution.
"""

from __future__ import annotations

import random

import pytest

from repro import ExecutionMode
from repro.engine.aggregates import make_accumulator
from repro.engine.algebra import Join, Project, Select, TableScan
from repro.engine.executor import Executor, TickQuerySpec
from repro.engine.expressions import col, lit
from repro.engine.indexes.sorted_index import SortedIndex
from repro.engine.operators import EffectSinkOp
from repro.engine.optimizer.mqo import build_tick_plan, fingerprint_plan
from repro.runtime.debug.inspector import TickInspector
from repro.runtime.effects import EffectStore
from repro.runtime.world import GameWorld
from repro.sgl.ir import EffectAssignment
from repro.workloads import build_rts_world
from repro.workloads.marketplace import build_marketplace_world
from repro.workloads.traffic import build_traffic_world


def _normalized(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


# ------------------------------------------------------------------------------------
# fingerprints
# ------------------------------------------------------------------------------------


def _filtered_scan(alias: str, threshold: float):
    return Select(TableScan("unit", alias), col(f"{alias}.x").gt(lit(threshold)))


class TestFingerprints:
    def test_alias_canonicalization(self):
        fp_a, aliases_a = fingerprint_plan(_filtered_scan("a", 10.0))
        fp_b, aliases_b = fingerprint_plan(_filtered_scan("b", 10.0))
        assert fp_a == fp_b
        assert aliases_a == ("a",) and aliases_b == ("b",)

    def test_different_predicates_differ(self):
        fp_a, _ = fingerprint_plan(_filtered_scan("a", 10.0))
        fp_b, _ = fingerprint_plan(_filtered_scan("a", 20.0))
        assert fp_a != fp_b

    def test_select_chain_folds_and_conjuncts_sort(self):
        p1 = col("a.x").gt(lit(1))
        p2 = col("a.y").gt(lit(2))
        chained = Select(Select(TableScan("unit", "a"), p1), p2)
        merged_one_way = Select(TableScan("unit", "a"), p1.and_(p2))
        merged_other_way = Select(TableScan("unit", "a"), p2.and_(p1))
        assert fingerprint_plan(chained)[0] == fingerprint_plan(merged_one_way)[0]
        assert fingerprint_plan(merged_one_way)[0] == fingerprint_plan(merged_other_way)[0]

    def test_join_with_different_aliases_matches(self):
        def joined(left_alias, right_alias):
            return Join(
                TableScan("unit", left_alias),
                TableScan("unit", right_alias),
                col(f"{left_alias}.id").eq(col(f"{right_alias}.id")),
            )

        assert fingerprint_plan(joined("a", "b"))[0] == fingerprint_plan(joined("p", "q"))[0]
        # Flipping which side a column comes from must NOT match.
        swapped = Join(
            TableScan("unit", "a"),
            TableScan("other", "b"),
            col("a.id").eq(col("b.id")),
        )
        assert fingerprint_plan(joined("a", "b"))[0] != fingerprint_plan(swapped)[0]


class TestBuildTickPlan:
    def test_duplicate_plans_share_one_maximal_subplan(self):
        plans = [
            (f"q{i}", Project(_filtered_scan("a", 5.0), {"v": col("a.x")}))
            for i in range(3)
        ]
        tick_plan = build_tick_plan(plans)
        # Identical whole plans: only the maximal subtree survives pruning
        # (its nested select/scan candidates collapse into it).
        assert len(tick_plan.shared) == 1
        assert tick_plan.shared[0].consumers == 3
        assert tick_plan.evaluations_saved == 2
        for entry in tick_plan.entries:
            assert entry.shared_refs == (tick_plan.shared[0].fingerprint,)

    def test_no_sharing_for_distinct_queries(self):
        plans = [
            ("q0", Project(_filtered_scan("a", 5.0), {"v": col("a.x")})),
            ("q1", Project(_filtered_scan("a", 99.0), {"v": col("a.x")})),
        ]
        tick_plan = build_tick_plan(plans)
        assert tick_plan.shared == []
        assert [e.rewritten for e in tick_plan.entries] == [p for _, p in plans]


# ------------------------------------------------------------------------------------
# the executor pipeline
# ------------------------------------------------------------------------------------


def _two_shared_queries(threshold=25.0):
    """Two distinct projections over the same filtered-scan prefix."""
    plans = []
    for name in ("health", "range"):
        plans.append(
            Project(
                Select(
                    TableScan("unit", "a"),
                    col("a.x").gt(lit(threshold)).and_(col("a.health").gt(lit(10))),
                ),
                {"__target__": col("a.id"), "__value__": col(f"a.{name}")},
            )
        )
    return plans


class TestExecuteTick:
    def test_rows_match_per_query_execution(self, unit_catalog):
        plans = _two_shared_queries()
        specs = [TickQuerySpec(key=f"q{i}", plan=p) for i, p in enumerate(plans)]
        pipeline_exec = Executor(unit_catalog, use_incremental=False)
        plain_exec = Executor(unit_catalog, use_incremental=False)
        results = pipeline_exec.execute_tick(specs)
        for plan, result in zip(plans, results):
            assert result.rows is not None
            assert _normalized(result.rows) == _normalized(plain_exec.execute(plan).rows)
        assert pipeline_exec.last_tick_stats["shared_subplans"] == 1
        assert pipeline_exec.last_tick_stats["evaluations_saved"] == 1

    def test_alias_renames_served_from_shared_result(self, unit_catalog):
        def query(alias):
            return Project(
                Select(TableScan("unit", alias), col(f"{alias}.x").gt(lit(40.0))),
                {"__target__": col(f"{alias}.id"), "__value__": col(f"{alias}.health")},
            )

        plans = [query("a"), query("b")]
        specs = [TickQuerySpec(key=f"q{i}", plan=p) for i, p in enumerate(plans)]
        executor = Executor(unit_catalog, use_incremental=False)
        results = executor.execute_tick(specs)
        assert executor.last_tick_stats["shared_subplans"] == 1
        assert _normalized(results[0].rows) == _normalized(results[1].rows)
        plain = Executor(unit_catalog, use_incremental=False)
        assert _normalized(results[1].rows) == _normalized(plain.execute(plans[1]).rows)

    def test_sink_fusion_matches_store_fold(self, unit_catalog):
        plan = Project(
            Select(TableScan("unit", "a"), col("a.x").gt(lit(30.0))),
            {"__target__": col("a.player"), "__value__": col("a.health")},
        )
        executor = Executor(unit_catalog, use_incremental=False)
        [result] = executor.execute_tick(
            [TickQuerySpec(key="q", plan=plan, combinator="sum")]
        )
        assert result.partials is not None and result.rows is None
        rows = Executor(unit_catalog, use_incremental=False).execute(plan).rows
        expected: dict = {}
        counts: dict = {}
        for row in rows:
            expected[row["__target__"]] = expected.get(row["__target__"], 0) + row["__value__"]
            counts[row["__target__"]] = counts.get(row["__target__"], 0) + 1
        assert {t: acc.result() for t, acc, _ in result.partials} == expected
        assert {t: n for t, _, n in result.partials} == counts

    def test_mutation_between_ticks_not_served_stale(self, unit_catalog):
        plans = _two_shared_queries()
        specs = [TickQuerySpec(key=f"q{i}", plan=p) for i, p in enumerate(plans)]
        executor = Executor(unit_catalog, use_incremental=False)
        before = executor.execute_tick(specs)
        table = unit_catalog.table("unit")
        for rowid in list(table.row_ids()):
            table.update(rowid, {"x": 0.0})  # nothing passes x > 25 anymore
        after = executor.execute_tick(specs)
        assert all(len(result.rows) > 0 for result in before)
        assert all(result.rows == [] for result in after)

    def test_invalidate_plans_rebuilds_pipeline_and_keeps_results_fresh(
        self, unit_catalog
    ):
        plans = _two_shared_queries()
        specs = [TickQuerySpec(key=f"q{i}", plan=p) for i, p in enumerate(plans)]
        executor = Executor(unit_catalog, use_incremental=False)
        first = executor.execute_tick(specs)
        # Catalog shape change mid-run: a new index over the filter column.
        table = unit_catalog.table("unit")
        table.attach_index("by_x", SortedIndex("x"))
        executor.invalidate_plans()
        assert executor._tick_pipeline is None
        second = executor.execute_tick(specs)
        for a, b in zip(first, second):
            assert _normalized(a.rows) == _normalized(b.rows)


class TestIncrementalInteraction:
    def test_view_not_stale_across_invalidate_plans(self, unit_catalog):
        from repro.engine.algebra import Aggregate, AggregateSpec

        plan = Aggregate(
            Select(TableScan("unit"), col("x").gt(lit(25.0))),
            ["player"],
            [AggregateSpec("n", "count")],
        )
        executor = Executor(unit_catalog)
        assert executor.register_incremental(plan)
        executor.execute(plan)
        executor.invalidate_plans()
        # The view must survive a plan invalidation (documented) but never
        # serve rows computed before subsequent churn.
        table = unit_catalog.table("unit")
        for rowid in list(table.row_ids())[:40]:
            table.update(rowid, {"x": 0.0})
        fresh = executor.execute(plan).rows
        recomputed = Executor(unit_catalog, use_incremental=False).execute(plan).rows
        assert _normalized(fresh) == _normalized(recomputed)
        assert executor.incremental_view(plan) is not None
        report = {r["plan"]: r for r in executor.cache_report()}
        assert any(r["incremental"] for r in report.values())

    def test_execute_tick_serves_incremental_views(self, unit_catalog):
        plan = _two_shared_queries()[0]
        executor = Executor(unit_catalog)
        assert executor.register_incremental(plan)
        [result] = executor.execute_tick([TickQuerySpec(key="q", plan=plan)])
        view = executor.incremental_view(plan)
        assert view is not None and view.stats()["full_refreshes"] >= 1
        plain = Executor(unit_catalog, use_incremental=False)
        assert _normalized(result.rows) == _normalized(plain.execute(plan).rows)
        # Sink fusion composes with the view path too.
        [fused] = executor.execute_tick(
            [TickQuerySpec(key="q", plan=plan, combinator="sum")]
        )
        assert fused.partials is not None


# ------------------------------------------------------------------------------------
# the effect sink and the store's partial interface
# ------------------------------------------------------------------------------------


CLASSES_SOURCE = """
class Unit {
  state:
    number x = 0;
  effects:
    number damage : sum;
    number nearest : min;
    set seen : union;
    number speed : avg;
}
"""


def _store():
    world = GameWorld(CLASSES_SOURCE)
    return EffectStore({decl.name: decl for decl in world.program.classes})


class TestEffectPartials:
    @pytest.mark.parametrize(
        "combinator,effect,values",
        [
            ("sum", "damage", [1, 2, None, 3]),
            ("min", "nearest", [5, None, 2, 9]),
            ("avg", "speed", [1.5, 2.5, None]),
            ("union", "seen", [frozenset({1}), frozenset({2, 3}), 4]),
        ],
    )
    def test_add_partial_matches_row_at_a_time(self, combinator, effect, values):
        row_store = _store()
        for value in values:
            row_store.add(EffectAssignment("Unit", 7, effect, value))
        fused_store = _store()
        partial = make_accumulator(combinator)
        for value in values:
            partial.add(value)
        fused_store.add_partial("Unit", 7, effect, partial, len(values))
        assert row_store.combine().values == fused_store.combine().values
        assert row_store.combine().assignment_counts == fused_store.combine().assignment_counts

    def test_partial_with_wrong_combinator_raises(self):
        from repro.engine.errors import ExecutionError

        store = _store()
        partial = make_accumulator("choose")  # declaration says sum
        partial.add(5)
        with pytest.raises(ExecutionError, match="requires 'sum'"):
            store.add_partial("Unit", 1, "damage", partial, 1)

    def test_partial_merges_with_existing_assignments(self):
        store = _store()
        store.add(EffectAssignment("Unit", 1, "damage", 10))
        partial = make_accumulator("sum")
        partial.add(5)
        partial.add(7)
        store.add_partial("Unit", 1, "damage", partial, 2)
        combined = store.combine()
        assert combined.value("Unit", 1, "damage") == 22
        assert combined.assignment_counts[("Unit", 1)]["damage"] == 3

    def test_effect_sink_operator_row_and_batch_paths(self, unit_catalog):
        plan = Project(
            Select(TableScan("unit", "a"), col("a.x").gt(lit(0.0))),
            {"__target__": col("a.player"), "__value__": col("a.health")},
        )
        for use_batch in (True, False):
            executor = Executor(unit_catalog, use_batch=use_batch, use_incremental=False)
            physical = executor.prepare(plan).physical
            sink = EffectSinkOp(physical, "max", "__target__", "__value__")
            partials = dict(
                (target, acc.result()) for target, acc, _ in sink.partials()
            )
            rows = executor.execute(plan).rows
            expected: dict = {}
            for row in rows:
                expected[row["__target__"]] = max(
                    expected.get(row["__target__"], float("-inf")), row["__value__"]
                )
            assert partials == expected


# ------------------------------------------------------------------------------------
# whole-world equivalence: mqo on vs off
# ------------------------------------------------------------------------------------


def _assert_worlds_equal(world_a, world_b, tick):
    for class_name in world_a.class_names():
        assert world_a.objects(class_name) == world_b.objects(class_name), (
            f"tick {tick}: {class_name} state diverged"
        )
    assert world_a.last_effects.values == world_b.last_effects.values, f"tick {tick}"
    assert (
        world_a.last_effects.assignment_counts
        == world_b.last_effects.assignment_counts
    ), f"tick {tick}"


class TestWorldEquivalence:
    def test_rts_world(self):
        # Defaults exercise batch + incremental + auto-index paths; the
        # advisor's mid-run index creation also exercises pipeline rebuild
        # after invalidate_plans().
        world_mqo = build_rts_world(80, mode=ExecutionMode.COMPILED, use_mqo=True)
        world_plain = build_rts_world(80, mode=ExecutionMode.COMPILED, use_mqo=False)
        for tick in range(6):
            report = world_mqo.tick()
            world_plain.tick()
            _assert_worlds_equal(world_mqo, world_plain, tick)
        assert report.fused_effect_rows > 0

    def test_traffic_world(self):
        world_mqo = build_traffic_world(60, mode=ExecutionMode.COMPILED, use_mqo=True)
        world_plain = build_traffic_world(60, mode=ExecutionMode.COMPILED, use_mqo=False)
        for tick in range(5):
            world_mqo.tick()
            world_plain.tick()
            _assert_worlds_equal(world_mqo, world_plain, tick)

    def test_marketplace_world_transactional(self):
        world_mqo = build_marketplace_world(
            40, mode=ExecutionMode.COMPILED, use_mqo=True
        )
        world_plain = build_marketplace_world(
            40, mode=ExecutionMode.COMPILED, use_mqo=False
        )
        for tick in range(4):
            report = world_mqo.tick()
            world_plain.tick()
            _assert_worlds_equal(world_mqo, world_plain, tick)
            assert (
                report.transactions_committed
                == world_plain.reports[-1].transactions_committed
            )

    def test_order_sensitive_and_multitick_scripts(self):
        source = """
class Npc {
  state:
    number x = 0;
  effects:
    number tag : first;
    set log : collect;
    number mark : last;
}

script tagger(Npc self) {
  accum number seen with sum over Npc other from NPC {
    if (other.x >= x - 5 && other.x <= x + 5) {
      other.tag <- x;
      other.log <- x;
      seen <- 1;
    }
  } in {
  }
}

script phaser(Npc self) {
  mark <- 1;
  waitNextTick;
  mark <- 2;
}
"""

        def build(use_mqo):
            world = GameWorld(source, use_mqo=use_mqo)
            world.add_update_rule("Npc", "x", lambda state, effects: state["x"])
            rng = random.Random(3)
            world.spawn_many("Npc", [{"x": rng.uniform(0, 30)} for _ in range(25)])
            return world

        world_mqo, world_plain = build(True), build(False)
        for tick in range(4):
            world_mqo.tick()
            world_plain.tick()
            _assert_worlds_equal(world_mqo, world_plain, tick)


# ------------------------------------------------------------------------------------
# satellites: stable incremental memoization, degraded transactions, counters
# ------------------------------------------------------------------------------------


class TestSatellites:
    def test_incremental_consideration_keyed_on_stable_identity(self):
        world = build_rts_world(10, mode=ExecutionMode.COMPILED)
        calls = []
        original = world.executor.register_incremental
        world.executor.register_incremental = lambda plan: calls.append(plan) or original(plan)
        query = world.compiled.script("engage").all_queries()[0]
        world._maybe_register_incremental(query)
        world._maybe_register_incremental(query)
        assert len(calls) == 1
        assert query.query_id in world._incremental_considered

    def test_degraded_transactions_combine_once(self, monkeypatch):
        from repro.workloads.marketplace import MARKET_SOURCE

        # No transaction engine: atomic blocks degrade to plain effects.
        world = GameWorld(MARKET_SOURCE, mode=ExecutionMode.COMPILED)
        seller = world.spawn("Trader", is_seller=1, gold=0.0, stock=5, price=10.0)
        world.spawn("Trader", is_seller=0, gold=50.0, stock=0, price=10.0, vendor=seller)

        combine_calls = []
        original_combine = EffectStore.combine

        def counting_combine(self):
            combine_calls.append(self)
            return original_combine(self)

        monkeypatch.setattr(EffectStore, "combine", counting_combine)
        world.tick()
        assert len(combine_calls) == 1
        # The degraded assignments landed in the single combine.
        assert world.last_effects.value("Trader", seller, "gold_delta") == 10.0
        assert world.last_effects.value("Trader", seller, "stock_delta") == -1

    def test_tick_report_counters_and_inspector(self):
        world = build_rts_world(40, mode=ExecutionMode.COMPILED)
        first = world.tick()
        second = world.tick()
        assert first.plan_cache_misses > 0
        assert second.plan_cache_hits > 0 and second.plan_cache_misses == 0
        assert second.advisor_seconds >= 0.0
        assert second.total_seconds >= (
            second.effect_step_seconds
            + second.update_step_seconds
            + second.reactive_seconds
        )
        inspector = TickInspector(world)
        counters = inspector.tick_counters()
        assert counters["plan_cache_hits"] == second.plan_cache_hits
        assert counters["advisor_seconds"] == second.advisor_seconds
        assert counters["shared_subplans"] == second.shared_subplans
        sharing = inspector.sharing_report()
        assert sharing["queries"] == 4  # count_neighbours + engage's 3 sites
        assert sharing["fused_queries"], sharing
