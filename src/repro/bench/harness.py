"""A small experiment harness used by the ``benchmarks/`` directory.

pytest-benchmark measures individual operations; the paper-style
experiments additionally need parameter sweeps that print the table/series
the paper's claims describe (who wins, by what factor, where the crossover
falls).  :class:`Experiment` collects rows and renders an aligned text
table so every benchmark file can end with a human-readable summary that is
also easy to diff across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

__all__ = ["measure", "Experiment"]


def measure(fn: Callable[[], Any], repeat: int = 3, warmup: int = 1) -> float:
    """Best-of-*repeat* wall-clock seconds for ``fn()`` after warm-up runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class Experiment:
    """Accumulates result rows for one experiment and renders them."""

    name: str
    description: str = ""
    columns: Sequence[str] = ()
    rows: list[Mapping[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)
        if not self.columns:
            self.columns = list(values)

    def render(self) -> str:
        """Render the collected rows as an aligned text table."""
        columns = list(self.columns) or sorted({k for row in self.rows for k in row})
        header = [self.name]
        if self.description:
            header.append(self.description)
        widths = {c: len(c) for c in columns}
        formatted_rows = []
        for row in self.rows:
            formatted = {c: self._format(row.get(c)) for c in columns}
            formatted_rows.append(formatted)
            for c in columns:
                widths[c] = max(widths[c], len(formatted[c]))
        lines = list(header)
        lines.append("  ".join(c.ljust(widths[c]) for c in columns))
        lines.append("  ".join("-" * widths[c] for c in columns))
        for formatted in formatted_rows:
            lines.append("  ".join(formatted[c].ljust(widths[c]) for c in columns))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print("\n" + self.render() + "\n")

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value != 0 and (abs(value) < 0.001 or abs(value) >= 100000):
                return f"{value:.3e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)
