"""Benchmark harness utilities."""

from repro.bench.harness import Experiment, measure

__all__ = ["Experiment", "measure"]
