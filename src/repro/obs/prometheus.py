"""Prometheus text exposition (format version 0.0.4) for a registry.

Pure string rendering — no client library, no HTTP.  The output of
:func:`render` is what :class:`~repro.obs.http.MetricsServer` serves at
``/metrics`` and what the exposition-format tests pin down exactly.

Rendering rules (the subset of the spec this exporter uses):

* ``# HELP``/``# TYPE`` precede each family; families sort by name.
* Label values escape ``\\``, ``"`` and newlines; labels render in the
  family's declared order with the samples sorted by label values.
* Histograms expand to cumulative ``_bucket`` samples (one per upper
  bound plus ``+Inf``), ``_sum`` and ``_count``; the ``le`` label is
  appended after any family labels.
* Values render as integers when exact, otherwise via ``repr`` (shortest
  round-trip float), matching what Prometheus parses.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render"]

#: The Content-Type a scrape endpoint must declare for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: tuple[str, str] | None = None) -> str:
    parts = [f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()]
    if extra is not None:
        parts.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def render(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (trailing newline)."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                for bound, cumulative in zip(child.bounds, child.cumulative()):
                    suffix = _format_labels(labels, ("le", _format_value(bound)))
                    lines.append(f"{family.name}_bucket{suffix} {cumulative}")
                suffix = _format_labels(labels, ("le", "+Inf"))
                lines.append(f"{family.name}_bucket{suffix} {child.count}")
                labelstr = _format_labels(labels)
                lines.append(f"{family.name}_sum{labelstr} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labelstr} {child.count}")
            else:
                labelstr = _format_labels(labels)
                lines.append(f"{family.name}{labelstr} {_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""
