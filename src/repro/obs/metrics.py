"""Zero-dependency metrics primitives: counters, gauges, latency histograms.

The registry is the hub of the observability layer (ISSUE 10): every tick
the :mod:`repro.obs.collector` feeds it from
:class:`~repro.runtime.world.TickReport`, the Prometheus renderer in
:mod:`repro.obs.prometheus` scrapes it, and shard workers ship snapshots
(:meth:`MetricsRegistry.as_dict`) that the coordinator folds back in with
:meth:`MetricsRegistry.merge`.

Design constraints, in order:

* **Cheap writes.** A tick observes ~30 metrics; the whole observation
  must stay far under 3% of a tick (gated in ``tests/test_observability.py``).
  Counters and gauges are a single locked float add/store; histograms a
  ``bisect`` into a static bucket ladder.
* **Mergeable.** Counters and histogram buckets are sums, so per-process
  registries combine associatively — exactly what the shard coordinator
  needs when it aggregates worker snapshots under one ``shard`` label.
* **Schema-stable.** Families declare their label names up front and
  reject mismatched label sets, so a scrape never sees the same metric
  with drifting label keys.

Histograms are **log-bucketed**: bucket upper bounds form a geometric
ladder (default ×2 per bucket from 1µs to ~16s, plus an overflow bucket),
so relative error of a quantile estimate is bounded by the bucket ratio
regardless of the latency's magnitude.  Quantiles interpolate linearly
inside the winning bucket and clamp to the observed min/max, which keeps
single-observation histograms exact and p50 ≤ p95 ≤ p99 monotone.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_latency_buckets",
]


class MetricError(RuntimeError):
    """Invalid metric name, label set, or incompatible merge."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_latency_buckets() -> tuple[float, ...]:
    """The default log ladder: ×2 per bucket, 1µs up to ~16.8s."""
    return tuple(1e-6 * (2.0**i) for i in range(25))


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Log-bucketed distribution with streaming quantile estimation.

    ``bounds`` are ascending bucket *upper* edges; observations above the
    last edge land in the overflow bucket.  ``counts`` has one slot per
    bound plus the overflow slot.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_latency_buckets()
        )
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise MetricError("histogram bounds must be non-empty, ascending, unique")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def overflow(self) -> int:
        """Observations above the last bucket edge."""
        return self.counts[-1]

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics),
        excluding the implicit ``+Inf`` bucket (= :attr:`count`)."""
        out, running = [], 0
        for c in self.counts[:-1]:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 ≤ q ≤ 1); 0.0 when empty.

        Linear interpolation inside the winning bucket, clamped to the
        observed ``[min, max]`` so a single observation is returned
        exactly and estimates never leave the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if running + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else min(self.min, 0.0)
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                fraction = (target - running) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self.min, min(self.max, estimate))
            running += bucket_count
        return self.max

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """The conventional percentile summary, keyed ``p50``-style."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}


def _label_key(label_names: tuple[str, ...], labels: Mapping[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise MetricError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class MetricFamily:
    """One named metric and all of its labeled children."""

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ):
        self.kind = kind
        self.name = name
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        #: label-value tuple (ordered as ``label_names``) → metric.
        self.children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _make(self) -> Counter | Gauge | Histogram:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: Any) -> Any:
        """The child for one label combination (created on first use)."""
        key = _label_key(self.label_names, labels)
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = self._make()
        return child

    def samples(self) -> list[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """``(labels dict, metric)`` pairs in sorted label order."""
        return [
            (dict(zip(self.label_names, key)), child)
            for key, child in sorted(self.children.items())
        ]


class MetricsRegistry:
    """A process-local set of metric families, mergeable across processes.

    All mutation goes through one re-entrant lock: the HTTP scrape thread,
    the tick loop, and coordinator merges may interleave freely.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.RLock()

    # -- declaration ---------------------------------------------------------------------

    def _family(
        self,
        kind: str,
        name: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise MetricError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(
                kind, name, help, label_names,
                tuple(buckets) if buckets is not None else None,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._family("histogram", name, help, labels, buckets)

    # -- access --------------------------------------------------------------------------

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: the scalar value of one counter/gauge child."""
        family = self._families[name]
        child = family.labels(**labels)
        if isinstance(child, Histogram):
            raise MetricError(f"{name!r} is a histogram; read its fields instead")
        return child.value

    # -- snapshots and merging -----------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """A picklable/JSON-able snapshot (the shard wire format)."""
        with self._lock:
            out: dict[str, Any] = {}
            for family in self.families():
                children = []
                for labels, child in family.samples():
                    if isinstance(child, Histogram):
                        children.append(
                            {
                                "labels": labels,
                                "counts": list(child.counts),
                                "sum": child.sum,
                                "count": child.count,
                                "min": child.min,
                                "max": child.max,
                            }
                        )
                    else:
                        children.append({"labels": labels, "value": child.value})
                out[family.name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "buckets": list(family.buckets) if family.buckets else None,
                    "children": children,
                }
            return out

    def merge(self, snapshot: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold another registry (or an :meth:`as_dict` snapshot) into this one.

        Counters and histogram buckets add; gauges take the incoming value
        (last writer wins, matching their scalar semantics).  Families
        missing here are created with the snapshot's declaration.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.as_dict()
        with self._lock:
            for name, data in snapshot.items():
                family = self._family(
                    data["kind"], name, data["help"], data["labels"], data["buckets"]
                )
                for entry in data["children"]:
                    child = family.labels(**entry["labels"])
                    if isinstance(child, Histogram):
                        if len(child.counts) != len(entry["counts"]):
                            raise MetricError(
                                f"histogram {name!r} bucket layouts differ; cannot merge"
                            )
                        for index, count in enumerate(entry["counts"]):
                            child.counts[index] += count
                        child.sum += entry["sum"]
                        child.count += entry["count"]
                        child.min = min(child.min, entry["min"])
                        child.max = max(child.max, entry["max"])
                    elif isinstance(child, Counter):
                        child.value += entry["value"]
                    else:
                        child.set(entry["value"])

    @classmethod
    def from_dict(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry
