"""Tick tracing as Chrome trace-event JSON (loadable in Perfetto/about:tracing).

:class:`TickTracer` turns per-tick phase timings into complete (``"ph":
"X"``) spans on a synthetic timeline: ticks are laid end to end and each
tick's phases are laid sequentially in their real execution order, so the
trace's *shape* — where a tick's time goes, which phase grew, which shared
subplan dominates the effect step — matches reality even though wall-clock
gaps between ticks are collapsed.  The synthetic clock keeps traces
deterministic for a deterministic world, which the replay tests rely on.

Inside the effect phase the tracer emits one child span per **shared
subplan materialized this tick**, labeled by its MQO plan fingerprint
(category ``mqo``), using the per-fingerprint timings the executor records
in ``Executor.last_shared_timings``.  A sharded coordinator traces each
worker under its own ``pid`` (shard id + 1; the coordinator itself is
``pid`` 0), so Perfetto renders the fleet as parallel process tracks.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.collector import PHASE_FIELDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.world import GameWorld, TickReport
    from repro.shard.coordinator import ShardTickReport

__all__ = ["TickTracer"]

_COORDINATOR_PID = 0


def _us(seconds: float) -> int:
    return max(0, int(round(seconds * 1e6)))


class TickTracer:
    """Accumulates trace events; attach via :meth:`GameWorld.attach_tracer`."""

    def __init__(self, world: "GameWorld | None" = None, max_events: int = 200_000):
        self.events: list[dict[str, Any]] = []
        self.max_events = max_events
        self._world = world
        #: Synthetic clock per pid, in microseconds.
        self._clock_us: dict[int, int] = {}

    def bind(self, world: "GameWorld") -> None:
        """Late-bind the world whose executor supplies MQO subplan timings."""
        if self._world is None:
            self._world = world

    # -- recording -----------------------------------------------------------------------

    def _emit(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        pid: int,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        if len(self.events) >= self.max_events:
            return
        event: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": 0,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def observe(self, report: "TickReport") -> None:
        """Record one world tick (phases + shared-subplan spans)."""
        shared = {}
        if self._world is not None:
            shared = getattr(self._world.executor, "last_shared_timings", {}) or {}
        self.observe_phases(
            tick=report.tick,
            phases=[(phase, getattr(report, field)) for phase, field in PHASE_FIELDS],
            pid=_COORDINATOR_PID,
            args={
                "effect_assignments": report.effect_assignments,
                "state_updates_applied": report.state_updates_applied,
                "shared_subplans": report.shared_subplans,
            },
            shared_timings=shared,
        )

    def observe_phases(
        self,
        tick: int,
        phases: list[tuple[str, float]],
        pid: int = _COORDINATOR_PID,
        args: Mapping[str, Any] | None = None,
        shared_timings: Mapping[str, float] | None = None,
    ) -> None:
        """Lay one tick's phases sequentially on *pid*'s synthetic track."""
        start = self._clock_us.get(pid, 0)
        total = sum(seconds for _, seconds in phases)
        self._emit(f"tick {tick}", "tick", start, _us(total), pid, args)
        cursor = start
        for phase, seconds in phases:
            dur = _us(seconds)
            self._emit(phase, "phase", cursor, dur, pid)
            if phase == "effect" and shared_timings:
                sub_cursor = cursor
                for fingerprint, sub_seconds in shared_timings.items():
                    sub_dur = _us(sub_seconds)
                    self._emit(
                        f"subplan {fingerprint[:24]}",
                        "mqo",
                        sub_cursor,
                        sub_dur,
                        pid,
                        {"fingerprint": fingerprint},
                    )
                    sub_cursor += sub_dur
            cursor += dur
        self._clock_us[pid] = max(start + _us(total), cursor)

    def observe_shard(self, report: "ShardTickReport") -> None:
        """Record one sharded tick: coordinator track + one track per worker."""
        self.observe_phases(
            tick=report.tick,
            phases=[("critical_path", report.critical_path_seconds)],
            pid=_COORDINATOR_PID,
            args={
                "wall_seconds": report.wall_seconds,
                "exchange_bytes": report.exchange_bytes,
            },
        )
        for counters in report.per_worker:
            shard_id = int(counters.get("shard_id", 0))
            phases = counters.get("phase_seconds")
            if phases:
                tick_phases = list(phases.items())
            else:
                tick_phases = [("worker", counters.get("cpu_seconds", 0.0))]
            self.observe_phases(
                tick=report.tick,
                phases=tick_phases,
                pid=shard_id + 1,
                args={"shard": shard_id},
            )

    # -- export --------------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def export(self, path: str) -> int:
        """Write the trace file; returns the number of events written."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
        return len(self.events)
