"""SRE-grade observability: metrics registry, Prometheus endpoint, tracing.

The operations surface of the engine (ISSUE 10): :mod:`repro.obs.metrics`
holds the zero-dependency registry (counters, gauges, log-bucketed latency
histograms with p50/p95/p99 estimation), :mod:`repro.obs.collector` feeds
it per tick from :class:`~repro.runtime.world.TickReport` (and per sharded
tick, with ``shard`` labels, from the coordinator's
:class:`~repro.shard.coordinator.ShardTickReport`),
:mod:`repro.obs.prometheus` renders the text exposition format,
:mod:`repro.obs.http` serves ``/metrics`` and ``/healthz`` over asyncio,
and :mod:`repro.obs.tracing` emits per-phase / per-shared-subplan spans as
Chrome trace-event JSON.

Typical wiring::

    from repro.obs import MetricsServer

    world = build_rts_world(1000)
    metrics = world.attach_metrics()          # WorldMetrics, fed every tick
    server = MetricsServer(
        metrics.registry, health=lambda: {"tick": world.tick_count}
    )
    await server.start()                      # GET /metrics, /healthz
"""

from repro.obs.collector import PHASE_FIELDS, ShardMetrics, WorldMetrics
from repro.obs.http import MetricsServer, scrape
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    default_latency_buckets,
)
from repro.obs.prometheus import CONTENT_TYPE, render
from repro.obs.tracing import TickTracer

__all__ = [
    "PHASE_FIELDS",
    "WorldMetrics",
    "ShardMetrics",
    "MetricsServer",
    "scrape",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "default_latency_buckets",
    "CONTENT_TYPE",
    "render",
    "TickTracer",
]
