"""Asyncio HTTP endpoint serving ``/metrics`` and ``/healthz``.

A deliberately tiny HTTP/1.0-style server over asyncio streams — enough
for a Prometheus scraper or a ``curl`` — with no third-party dependency.
It runs standalone (``MetricsServer(registry); await server.start()``) or
alongside the subscription service's TCP server in the same event loop
(pass it to :class:`~repro.service.server.SubscriptionServer` as
``metrics_server`` and it starts/stops with the service).

Routes:

* ``GET /metrics`` — the registry in Prometheus text exposition format.
* ``GET /healthz`` — ``{"status": "ok", ...}`` JSON; an optional health
  callback contributes extra fields (e.g. the world's tick counter).
* anything else — 404.

Each request is answered and the connection closed (``Connection:
close``), which keeps the loop trivial and is exactly how scrapers behave.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE, render

__all__ = ["MetricsServer", "scrape"]


class MetricsServer:
    """Serve one registry over HTTP; port 0 picks a free port on start."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Callable[[], dict[str, Any]] | None = None,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self.health = health
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def started(self) -> bool:
        return self._server is not None

    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- request handling ----------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            while True:  # drain headers; nothing in them changes the answer
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._route(method, path)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _route(self, method: str, path: str) -> tuple[str, str, str]:
        if method != "GET":
            return "405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n"
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return "200 OK", CONTENT_TYPE, render(self.registry)
        if path == "/healthz":
            status: dict[str, Any] = {"status": "ok"}
            if self.health is not None:
                status.update(self.health())
            return "200 OK", "application/json; charset=utf-8", json.dumps(status) + "\n"
        return "404 Not Found", "text/plain; charset=utf-8", "not found\n"


async def scrape(host: str, port: int, path: str = "/metrics") -> tuple[int, str]:
    """Minimal scrape client: ``(status code, body)`` for one GET."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, body.decode("utf-8")
