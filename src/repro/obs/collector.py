"""TickReport → registry collectors: the glue the tick loop calls.

:class:`WorldMetrics` observes one :class:`~repro.runtime.world.TickReport`
per tick into a :class:`~repro.obs.metrics.MetricsRegistry` — phase-latency
histograms, cumulative engine counters, last-tick gauges.
:class:`ShardMetrics` does the same for a
:class:`~repro.shard.coordinator.ShardTickReport`, exporting every
per-worker counter under a ``shard`` label so a scrape of the coordinator
can be cross-checked against the fleet totals (per-shard
``repro_shard_exchange_bytes_total`` sums to the coordinator's
``exchange_bytes``, per-shard CPU to the worker CPU columns, and the
critical-path counter to the sum of per-tick critical paths).

Both collectors only *increment* — they never read tables or plans — so
observation cost is a fixed ~30 locked adds per tick, gated far below 3%
of a tick in ``tests/test_observability.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.world import TickReport
    from repro.shard.coordinator import ShardTickReport

__all__ = ["PHASE_FIELDS", "WorldMetrics", "ShardMetrics"]

#: Tick phase label → TickReport field, in tick execution order (the tracer
#: relies on the order to lay spans out sequentially).
PHASE_FIELDS: tuple[tuple[str, str], ...] = (
    ("effect", "effect_step_seconds"),
    ("update", "update_step_seconds"),
    ("reactive", "reactive_seconds"),
    ("flush", "flush_seconds"),
    ("persist", "persist_seconds"),
    ("advisor", "advisor_seconds"),
)

#: Cumulative counter metric → TickReport field.
_COUNTER_FIELDS: tuple[tuple[str, str, str], ...] = (
    ("repro_effect_assignments_total", "effect_assignments", "Raw effect assignments produced"),
    ("repro_transactions_submitted_total", "transactions_submitted", "Transaction requests submitted"),
    ("repro_transactions_committed_total", "transactions_committed", "Transactions committed"),
    ("repro_transactions_aborted_total", "transactions_aborted", "Transactions aborted"),
    ("repro_handlers_fired_total", "handlers_fired", "Reactive handlers fired"),
    ("repro_state_updates_total", "state_updates_applied", "State updates applied"),
    ("repro_plan_cache_hits_total", "plan_cache_hits", "Executor plan-cache hits"),
    ("repro_plan_cache_misses_total", "plan_cache_misses", "Executor plan-cache misses"),
    ("repro_shared_evaluations_saved_total", "shared_evaluations_saved", "Subplan evaluations avoided by tick-wide sharing"),
    ("repro_fused_effect_rows_total", "fused_effect_rows", "Effect rows combined in-engine by sink fusion"),
    ("repro_subscription_messages_total", "subscription_messages", "Subscription messages fanned out"),
    ("repro_subscription_delta_rows_total", "subscription_delta_rows", "Signed delta rows streamed to subscribers"),
    ("repro_wal_bytes_total", "wal_bytes", "Bytes appended to the delta log"),
    ("repro_wal_delta_rows_total", "wal_delta_rows", "Netted row changes persisted"),
    ("repro_fixpoint_rounds_total", "fixpoint_rounds", "Semi-naive fixpoint rounds iterated"),
    ("repro_fixpoint_delta_rows_total", "fixpoint_delta_rows", "Frontier rows fed to fixpoint rounds"),
    ("repro_fixpoint_warm_restarts_total", "fixpoint_warm_restarts", "Fixpoint warm restarts from cached accumulators"),
    ("repro_fixpoint_cache_hits_total", "fixpoint_cache_hits", "Fixpoint closures served from the version cache"),
    ("repro_exchange_bytes_total", "exchange_bytes", "Cross-shard wire bytes sent"),
    ("repro_exchange_rows_total", "exchange_rows", "Rows carried by cross-shard frames"),
    ("repro_halo_rows_total", "halo_rows", "Ghost rows installed from neighbour halos"),
    ("repro_handoff_rows_total", "handoff_rows", "Rows handed off to a new owning shard"),
)

#: Per-worker counter keys re-exported with a ``shard`` label.
_SHARD_COUNTER_KEYS: tuple[tuple[str, str, str], ...] = (
    ("repro_shard_exchange_bytes_total", "exchange_bytes", "Wire bytes this shard sent"),
    ("repro_shard_exchange_rows_total", "exchange_rows", "Rows this shard shipped cross-shard"),
    ("repro_shard_halo_rows_total", "halo_rows", "Ghosts this shard installed"),
    ("repro_shard_handoff_rows_total", "handoff_rows", "Rows this shard released to new owners"),
    ("repro_shard_cpu_seconds_total", "cpu_seconds", "Per-shard worker CPU seconds (all phases)"),
    ("repro_shard_subscription_messages_total", "subscription_messages", "Messages this shard fanned out"),
)


class WorldMetrics:
    """Feeds one world's tick reports into a registry."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._phase = r.histogram(
            "repro_tick_phase_seconds", "Per-phase tick latency", labels=("phase",)
        )
        self._tick_seconds = r.histogram(
            "repro_tick_seconds", "Whole-tick latency (sum of timed phases)"
        )
        self._tick = r.gauge("repro_tick", "Index of the most recent tick").labels()
        self._ticks = r.counter("repro_ticks_total", "Ticks executed").labels()
        self._shared_subplans = r.gauge(
            "repro_shared_subplans", "Shared subplans in the current tick pipeline"
        ).labels()
        self._counters = [
            (r.counter(name, help).labels(), field)
            for name, field, help in _COUNTER_FIELDS
        ]
        self._phase_children = [
            (self._phase.labels(phase=phase), field) for phase, field in PHASE_FIELDS
        ]
        self._total_child = self._tick_seconds.labels()

    def observe(self, report: "TickReport") -> None:
        """Record one tick (installed as a tick observer by ``attach_metrics``)."""
        for child, field in self._phase_children:
            child.observe(getattr(report, field))
        self._total_child.observe(report.total_seconds)
        self._tick.set(report.tick)
        self._ticks.inc()
        self._shared_subplans.set(report.shared_subplans)
        for child, field in self._counters:
            value = getattr(report, field)
            if value:
                child.inc(value)

    def phase_quantiles(self, qs=(0.5, 0.95, 0.99)) -> dict[str, dict[str, float]]:
        """p50/p95/p99 per phase plus the whole tick (the loadtest summary)."""
        out = {
            phase: child.quantiles(qs) for (child, _), (phase, _) in
            zip(self._phase_children, PHASE_FIELDS)
        }
        out["tick"] = self._total_child.quantiles(qs)
        return out


class ShardMetrics:
    """Feeds a coordinator's sharded tick reports into a registry.

    Fleet-level series carry no labels; everything sourced from
    ``ShardTickReport.per_worker`` carries ``shard="<id>"``.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._tick = r.gauge("repro_shard_tick", "Index of the most recent sharded tick").labels()
        self._ticks = r.counter("repro_shard_ticks_total", "Sharded ticks executed").labels()
        self._critical_hist = r.histogram(
            "repro_shard_critical_path_seconds",
            "Per-tick critical path: slowest worker CPU + coordinator routing CPU",
        ).labels()
        self._critical_total = r.counter(
            "repro_shard_critical_path_seconds_total",
            "Cumulative critical-path seconds across sharded ticks",
        ).labels()
        self._coordinator_cpu = r.counter(
            "repro_shard_coordinator_cpu_seconds_total",
            "Coordinator CPU spent routing frames",
        ).labels()
        self._wall = r.histogram(
            "repro_shard_tick_wall_seconds", "Sharded tick wall-clock latency"
        ).labels()
        self._shard_counters = [
            (r.counter(name, help, labels=("shard",)), key)
            for name, key, help in _SHARD_COUNTER_KEYS
        ]
        self._shard_phase = r.histogram(
            "repro_shard_tick_phase_seconds",
            "Per-shard, per-phase tick latency",
            labels=("shard", "phase"),
        )

    def observe(self, report: "ShardTickReport") -> None:
        self._tick.set(report.tick)
        self._ticks.inc()
        self._critical_hist.observe(report.critical_path_seconds)
        self._critical_total.inc(report.critical_path_seconds)
        self._coordinator_cpu.inc(report.coordinator_cpu_seconds)
        self._wall.observe(report.wall_seconds)
        for counters in report.per_worker:
            shard = str(counters.get("shard_id", "?"))
            for family, key in self._shard_counters:
                value = counters.get(key, 0)
                if value:
                    family.labels(shard=shard).inc(value)
            phases: Mapping[str, Any] | None = counters.get("phase_seconds")
            if phases:
                for phase, seconds in phases.items():
                    self._shard_phase.labels(shard=shard, phase=phase).observe(seconds)
