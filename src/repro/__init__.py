"""SGL: declarative processing for computer games.

A from-scratch reproduction of "From Declarative Languages to Declarative
Processing in Computer Games" (Sowell, Demers, Gehrke, Gupta, Li, White —
CIDR 2009): the SGL scripting language, its compiler to relational algebra,
a main-memory relational engine with adaptive optimization, and the
state-effect game runtime with physics, pathfinding, transactions,
multi-tick and reactive scripting.

Quickstart::

    from repro import GameWorld

    SOURCE = '''
    class Unit {
      state:
        number x = 0;
        number y = 0;
        number health = 100;
        number range = 5;
      effects:
        number damage : sum;
    }

    script brawl(Unit self) {
      accum number hits with sum over Unit u from Unit {
        if (u.x >= x - range && u.x <= x + range &&
            u.y >= y - range && u.y <= y + range) {
          hits <- 1;
        }
      } in {
        if (hits > 1) { damage <- hits - 1; }
      }
    }
    '''

    world = GameWorld(SOURCE)
    world.add_update_rule("Unit", "health", lambda s, e: s["health"] - e.get("damage", 0))
    for i in range(100):
        world.spawn("Unit", x=float(i % 10), y=float(i // 10))
    world.run(10)
"""

from repro.runtime import ExecutionMode, GameWorld, TickReport
from repro.sgl import SchemaLayout, analyze_program, parse_program

__version__ = "1.0.0"

__all__ = [
    "ExecutionMode",
    "GameWorld",
    "TickReport",
    "SchemaLayout",
    "analyze_program",
    "parse_program",
    "__version__",
]
