"""Traffic-simulation workload (Section 4.2).

"We are currently working on a project to simulate traffic networks with
millions of vehicles, and this will surely require a clustered
architecture."  This workload is that simulation scaled to laptop sizes but
with the same structure: a ring road of ``road_length`` units, vehicles
following a car-following rule (slow down when the vehicle ahead is close,
speed up otherwise).  The acting vehicle finds the nearest vehicle ahead
with an accum-loop using the ``min`` combinator.

For the distributed experiments the module also exposes plain row
generators so the cluster simulation can partition vehicles spatially
without going through a :class:`GameWorld`.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.engine.config import EngineConfig, resolve_engine_config
from repro.runtime.world import ExecutionMode, GameWorld

__all__ = ["TRAFFIC_SOURCE", "vehicle_rows", "build_traffic_world"]

TRAFFIC_SOURCE = """
class Vehicle {
  state:
    number lane = 0;
    number position = 0;
    number velocity = 1;
    number max_velocity = 2;
    number lookahead = 12;
  effects:
    number target_velocity : min;
}

// Car following: match speed to the gap to the nearest vehicle ahead in
// the same lane (the accum-loop computes the smallest positive gap).
script follow(Vehicle self) {
  accum number gap with min over Vehicle v from Vehicle {
    if (v.lane == lane && v.position > position &&
        v.position <= position + lookahead) {
      gap <- v.position - position;
    }
  } in {
    if (gap == null) {
      target_velocity <- max_velocity;
    } else {
      if (gap < 4) {
        target_velocity <- 0;
      } else {
        target_velocity <- min(max_velocity, gap / 4);
      }
    }
  }
}
"""


def vehicle_rows(
    n_vehicles: int, n_lanes: int = 4, road_length: float = 1000.0, seed: int = 23
) -> Iterable[dict]:
    """Vehicles spread over lanes with jittered spacing."""
    rng = random.Random(seed)
    per_lane = max(1, n_vehicles // n_lanes)
    spacing = road_length / per_lane
    for i in range(n_vehicles):
        lane = i % n_lanes
        slot = i // n_lanes
        yield {
            "lane": lane,
            "position": min(road_length, slot * spacing + rng.uniform(0, spacing * 0.5)),
            "velocity": rng.uniform(0.5, 1.5),
            "max_velocity": rng.uniform(1.5, 2.5),
            "lookahead": 12.0,
        }


def build_traffic_world(
    n_vehicles: int,
    mode: ExecutionMode = ExecutionMode.COMPILED,
    n_lanes: int = 4,
    road_length: float = 1000.0,
    seed: int = 23,
    *,
    config: EngineConfig | None = None,
    use_batch: bool | None = None,
    use_incremental: bool | None = None,
    auto_index: bool | None = None,
    use_mqo: bool | None = None,
) -> GameWorld:
    """A ring-road traffic world; positions wrap around at ``road_length``."""
    config = resolve_engine_config(
        config,
        {
            "use_batch": use_batch,
            "use_incremental": use_incremental,
            "auto_index": auto_index,
            "use_mqo": use_mqo,
        },
    )
    world = GameWorld(TRAFFIC_SOURCE, mode=mode, config=config)
    world.add_update_rule(
        "Vehicle",
        "velocity",
        lambda state, effects: (
            state["velocity"]
            if effects.get("target_velocity") is None
            else effects["target_velocity"]
        ),
    )
    world.add_update_rule(
        "Vehicle",
        "position",
        lambda state, effects: (state["position"] + state["velocity"]) % road_length,
    )
    world.spawn_many("Vehicle", vehicle_rows(n_vehicles, n_lanes, road_length, seed))
    return world
