"""Particle-system workload.

The paper notes that game developers already use the state-effect pattern
"for applications like particle systems" because its read-only query/effect
steps parallelize trivially.  Each particle accumulates a gravity-well
acceleration effect from attractor particles and the physics component
integrates the motion.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.engine.config import EngineConfig
from repro.runtime.physics import PhysicsComponent, PhysicsConfig
from repro.runtime.world import ExecutionMode, GameWorld

__all__ = ["PARTICLES_SOURCE", "particle_rows", "build_particle_world"]

PARTICLES_SOURCE = """
class Particle {
  state:
    number x = 0;
    number y = 0;
    number mass = 1;
    number attractor = 0;
    number pull = 50;
  effects:
    number vx : sum;
    number vy : sum;
}

// Every particle is pulled toward every attractor within its pull radius.
script gravity(Particle self) {
  accum number wells with sum over Particle p from Particle {
    if (p.attractor == 1 &&
        p.x >= x - pull && p.x <= x + pull &&
        p.y >= y - pull && p.y <= y + pull) {
      vx <- (p.x - x) / pull * p.mass;
      vy <- (p.y - y) / pull * p.mass;
      wells <- 1;
    }
  } in {
    if (wells == 0) {
      vy <- 0 - 1;
    }
  }
}
"""


def particle_rows(
    n_particles: int, n_attractors: int = 4, world_size: float = 200.0, seed: int = 5
) -> Iterable[dict]:
    """Random particles plus a handful of heavy attractors."""
    rng = random.Random(seed)
    for i in range(n_particles):
        is_attractor = i < n_attractors
        yield {
            "x": rng.uniform(0.0, world_size),
            "y": rng.uniform(0.0, world_size),
            "mass": 10.0 if is_attractor else rng.uniform(0.5, 2.0),
            "attractor": 1 if is_attractor else 0,
            "pull": 60.0,
        }


def build_particle_world(
    n_particles: int,
    mode: ExecutionMode = ExecutionMode.COMPILED,
    world_size: float = 200.0,
    seed: int = 5,
    config: EngineConfig | None = None,
) -> GameWorld:
    """A particle system with gravity wells and physics integration."""
    world = GameWorld(PARTICLES_SOURCE, mode=mode, config=config)
    world.add_component(
        PhysicsComponent(
            PhysicsConfig(
                class_name="Particle",
                world_max_x=world_size,
                world_max_y=world_size,
                max_speed=5.0,
            )
        )
    )
    world.spawn_many("Particle", particle_rows(n_particles, world_size=world_size, seed=seed))
    return world
