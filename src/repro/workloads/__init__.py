"""Workload generators used by the examples, tests and benchmarks."""

from repro.workloads.contagion import (
    CONTAGION_SOURCE,
    build_contagion_world,
    churn_links,
    infect,
    infected_ids,
    site_rows,
)
from repro.workloads.marketplace import MARKET_SOURCE, build_marketplace_world
from repro.workloads.particles import PARTICLES_SOURCE, build_particle_world, particle_rows
from repro.workloads.rts import RTS_SOURCE, build_rts_world, unit_rows
from repro.workloads.state_switching import (
    STATES,
    load_state,
    make_state_catalog,
    unit_positions,
)
from repro.workloads.traffic import TRAFFIC_SOURCE, build_traffic_world, vehicle_rows

__all__ = [
    "CONTAGION_SOURCE",
    "build_contagion_world",
    "churn_links",
    "infect",
    "infected_ids",
    "site_rows",
    "MARKET_SOURCE",
    "build_marketplace_world",
    "PARTICLES_SOURCE",
    "build_particle_world",
    "particle_rows",
    "RTS_SOURCE",
    "build_rts_world",
    "unit_rows",
    "STATES",
    "load_state",
    "make_state_catalog",
    "unit_positions",
    "TRAFFIC_SOURCE",
    "build_traffic_world",
    "vehicle_rows",
]
