"""Real-time-strategy workload (Warcraft-style units, Section 2.1).

The scripts exercise the query shapes the paper motivates: every unit scans
for enemies within its attack range (a spatial self-join, Figure 2),
applies damage effects, and broadcasts velocity intentions toward the
nearest concentration of enemies.  ``build_rts_world`` wires the scripts to
an update rule for health and the physics component for movement.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.engine.config import EngineConfig, resolve_engine_config
from repro.runtime.physics import PhysicsComponent, PhysicsConfig
from repro.runtime.world import ExecutionMode, GameWorld
from repro.sgl.schema_gen import SchemaLayout

__all__ = ["RTS_SOURCE", "unit_rows", "build_rts_world", "attach_fog_of_war"]

RTS_SOURCE = """
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number health = 100;
    number range = 8;
    number attack = 1;
    number speed = 1;
  effects:
    number damage : sum;
    number vx : avg;
    number vy : avg;
    number enemies_seen : sum;
}

// Figure 2 of the paper: count the units within range of this unit.
script count_neighbours(Unit self) {
  accum number cnt with sum over Unit u from UNIT {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      cnt <- 1;
    }
  } in {
    enemies_seen <- cnt;
  }
}

// Combat: deal damage to every enemy unit in range.
script engage(Unit self) {
  accum number targets with sum over Unit u from UNIT {
    if (u.player != player &&
        u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      u.damage <- attack;
      targets <- 1;
    }
  } in {
    if (targets == 0) {
      // Nobody in range: drift toward the centre of the map looking for a fight.
      vx <- (50 - x) / 50 * speed;
      vy <- (50 - y) / 50 * speed;
    }
  }
}
"""


def unit_rows(n_units: int, world_size: float = 100.0, seed: int = 17) -> Iterable[dict]:
    """Generate *n_units* random unit rows on two teams."""
    rng = random.Random(seed)
    for i in range(n_units):
        yield {
            "player": i % 2,
            "x": rng.uniform(0.0, world_size),
            "y": rng.uniform(0.0, world_size),
            "health": 100,
            "range": rng.choice([6, 8, 10]),
            "attack": rng.choice([1, 2]),
            "speed": rng.uniform(0.5, 1.5),
        }


def build_rts_world(
    n_units: int,
    mode: ExecutionMode = ExecutionMode.COMPILED,
    layout: SchemaLayout = SchemaLayout.SINGLE,
    world_size: float = 100.0,
    seed: int = 17,
    *,
    with_physics: bool = True,
    scripts: Iterable[str] | None = None,
    config: EngineConfig | None = None,
    optimize: bool | None = None,
    use_indexes: bool | None = None,
    use_batch: bool | None = None,
    use_incremental: bool | None = None,
    auto_index: bool | None = None,
    use_mqo: bool | None = None,
) -> GameWorld:
    """Build a ready-to-tick RTS world with *n_units* units."""
    config = resolve_engine_config(
        config,
        {
            "optimize": optimize,
            "use_indexes": use_indexes,
            "use_batch": use_batch,
            "use_incremental": use_incremental,
            "auto_index": auto_index,
            "use_mqo": use_mqo,
        },
    )
    world = GameWorld(RTS_SOURCE, mode=mode, layout=layout, config=config)
    world.add_update_rule(
        "Unit", "health", lambda state, effects: state["health"] - effects.get("damage", 0)
    )
    if with_physics:
        world.add_component(
            PhysicsComponent(
                PhysicsConfig(
                    class_name="Unit",
                    world_max_x=world_size,
                    world_max_y=world_size,
                    max_speed=2.0,
                )
            )
        )
    if scripts is not None:
        for name in world.enabled_scripts():
            world.disable_script(name)
        for name in scripts:
            world.enable_script(name)
    world.spawn_many("Unit", unit_rows(n_units, world_size, seed))
    return world


def attach_fog_of_war(
    world: GameWorld,
    n_observers: int = 8,
    vision: float = 12.0,
    seed: int = 29,
):
    """Attach "fog of war" observer streams to an RTS world.

    Each observer plays the role of one connected client following one of
    its units: an area-of-interest subscription on the ``Unit`` extent,
    centered on the observer unit and moving with it, so the client sees
    exactly the units inside its vision box — streamed as per-tick deltas
    instead of a fresh range query every tick (Section 4.1's "many
    concurrent players" serving model).

    Returns ``(manager, sessions, subscription_ids)``; drain each session
    with ``session.take()`` after ticking.
    """
    manager = world.subscriptions
    unit_ids = [row["id"] for row in world.objects("Unit")]
    if not unit_ids:
        raise ValueError("attach_fog_of_war needs a populated world")
    rng = random.Random(seed)
    observers = rng.sample(unit_ids, min(n_observers, len(unit_ids)))
    sessions = []
    subscription_ids = []
    for object_id in observers:
        session = manager.connect(f"observer-{object_id}")
        sub_id = manager.subscribe_aoi(
            session,
            "Unit",
            radius=vision,
            dims=("x", "y"),
            observer_id=object_id,
        )
        sessions.append(session)
        subscription_ids.append(sub_id)
    return manager, sessions, subscription_ids
