"""Marketplace / financial-exchange workload (Section 3.1).

The paper's running transaction example: characters exchange in-game
currency for items, exchanges must be atomic and consistent ("money should
be deducted from my account only if I receive the appropriate items"), and
without isolation the same item can be sold twice — the classic "duping"
bug.  Buyers run an ``atomic`` purchase script with the constraints
``gold >= 0`` and ``stock >= 0``; the :class:`TransactionEngine` admits a
consistent subset each tick.

``build_marketplace_world`` controls contention with ``buyers_per_item``:
the higher it is, the more concurrent purchases target the same seller's
limited stock and the more transactions must abort (experiment E8).
"""

from __future__ import annotations

import random

from repro.engine.config import EngineConfig, resolve_engine_config
from repro.runtime.transactions import TransactionEngine
from repro.runtime.world import ExecutionMode, GameWorld

__all__ = ["MARKET_SOURCE", "build_marketplace_world"]

MARKET_SOURCE = """
class Trader {
  state:
    number is_seller = 0;
    number gold = 20;
    number stock = 0;
    number price = 10;
    ref vendor;
  effects:
    number gold_delta : sum;
    number stock_delta : sum;
    number purchases : sum;
}

// Buyers attempt to purchase one item from their vendor each tick.
script purchase(Trader self) {
  if (is_seller == 0) {
    atomic require(gold >= 0, stock >= 0) {
      gold_delta <- 0 - price;
      stock_delta <- 1;
      vendor.gold_delta <- price;
      vendor.stock_delta <- 0 - 1;
      purchases <- 1;
    }
  }
}
"""


def build_marketplace_world(
    n_buyers: int,
    buyers_per_item: int = 4,
    seller_stock: int = 2,
    buyer_gold: float = 50.0,
    price: float = 10.0,
    mode: ExecutionMode = ExecutionMode.INTERPRETED,
    seed: int = 11,
    *,
    config: EngineConfig | None = None,
    use_batch: bool | None = None,
    use_incremental: bool | None = None,
    use_mqo: bool | None = None,
) -> GameWorld:
    """A marketplace with ``n_buyers`` buyers contending over shared sellers.

    ``buyers_per_item`` buyers share each seller, whose stock is
    ``seller_stock`` items — so at most ``seller_stock`` of them can succeed
    per seller before the ``stock >= 0`` constraint aborts the rest.
    """
    config = resolve_engine_config(
        config,
        {"use_batch": use_batch, "use_incremental": use_incremental, "use_mqo": use_mqo},
    )
    world = GameWorld(MARKET_SOURCE, mode=mode, config=config)
    engine = TransactionEngine(
        owned={"Trader": {"gold_delta": "gold", "stock_delta": "stock"}},
        classes={decl.name: decl for decl in world.program.classes},
    )
    world.add_component(engine)
    world.add_update_rule(
        "Trader",
        "price",
        lambda state, effects: state["price"],
    )

    rng = random.Random(seed)
    n_sellers = max(1, n_buyers // max(1, buyers_per_item))
    seller_ids = []
    for _ in range(n_sellers):
        seller_ids.append(
            world.spawn(
                "Trader",
                is_seller=1,
                gold=0.0,
                stock=seller_stock,
                price=price,
            )
        )
    for i in range(n_buyers):
        vendor = seller_ids[i % n_sellers]
        world.spawn(
            "Trader",
            is_seller=0,
            gold=buyer_gold + rng.uniform(0, 5),
            stock=0,
            price=price,
            vendor=vendor,
        )
    return world
