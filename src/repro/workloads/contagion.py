"""Contagion / supply-chain disruption workload.

A road network of supply ``Site`` objects, each storing up to three
outgoing road links as state attributes.  Infected sites propagate
exposure along roads with the ``reach`` construct — a multi-source
transitive closure: every infected site seeds its own closure, but the
compiler lowers all of them into *one* :class:`~repro.engine.algebra.
Fixpoint` plan whose accumulator carries an actor column, and MQO shares
the derived edge relation across scripts.  The per-tick hop cap
(``iterate``) models shipment latency, so disruption spreads a bounded
number of hops per tick instead of closing instantly.

Churn is the point of this workload: :func:`churn_links` rewires a
fraction of road links between ticks (the supply chain re-routes), which
invalidates the closure and exercises fixpoint recomputation under
change, and :func:`infect` introduces new outbreak seeds.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.engine.config import EngineConfig, resolve_engine_config
from repro.runtime.world import ExecutionMode, GameWorld

__all__ = [
    "CONTAGION_SOURCE",
    "site_rows",
    "build_contagion_world",
    "churn_links",
    "infect",
    "infected_ids",
]

#: Hops a disruption travels per tick (the ``iterate`` cap in the script).
HOPS_PER_TICK = 3

CONTAGION_SOURCE = """
class Site {
  state:
    number idx = 0;
    number link1 = 0;
    number link2 = 0;
    number link3 = 0;
    number infected = 0;
  effects:
    number exposure : max;
}

// Every infected site closes over the road network and exposes every
// site within HOPS_PER_TICK hops; exposed sites turn infected by the
// update rule, so the outbreak front advances a bounded distance per
// tick.  The road relation is derived from the link columns, so churned
// links are picked up on the next tick's closure.
script spread(Site self) {
  if (infected > 0) {
    reach Site n from self via Site cur
        on n.idx == cur.link1 || n.idx == cur.link2 || n.idx == cur.link3
        iterate 3 {
      n.exposure <- 1;
    }
  }
}
"""


def site_rows(
    n_sites: int, seed: int = 11, n_infected: int = 1, n_chords: int = 2
) -> Iterable[dict]:
    """A connected road network: a ring plus random chord links.

    Every site links to its ring successor (the trunk road) and up to
    *n_chords* random chords (0–2), giving out-degree ≤ 3.  Two chords
    make a small-diameter graph the closure floods in a few ticks; zero
    chords leave a pure ring whose diameter is ``n_sites`` — useful when
    a demo or benchmark wants many expansion rounds.
    """
    rng = random.Random(seed)
    for i in range(n_sites):
        chords = sorted(rng.sample(range(n_sites), k=min(n_chords, n_sites - 1)))
        links = [(i + 1) % n_sites]
        links += [c for c in chords if c != i and c not in links]
        links = (links + [-1, -1, -1])[:3]
        yield {
            "idx": i,
            "link1": links[0],
            "link2": links[1],
            "link3": links[2],
            "infected": 1 if i < n_infected else 0,
        }


def build_contagion_world(
    n_sites: int,
    mode: ExecutionMode = ExecutionMode.COMPILED,
    seed: int = 11,
    n_infected: int = 1,
    n_chords: int = 2,
    *,
    config: EngineConfig | None = None,
    use_batch: bool | None = None,
    use_incremental: bool | None = None,
    use_mqo: bool | None = None,
) -> GameWorld:
    """A contagion world where exposure converts to infection each tick."""
    config = resolve_engine_config(
        config,
        {
            "use_batch": use_batch,
            "use_incremental": use_incremental,
            "use_mqo": use_mqo,
        },
    )
    world = GameWorld(CONTAGION_SOURCE, mode=mode, config=config)
    world.add_update_rule(
        "Site",
        "infected",
        lambda state, effects: (
            1 if effects.get("exposure") else state["infected"]
        ),
    )
    world.spawn_many("Site", site_rows(n_sites, seed, n_infected, n_chords))
    return world


def churn_links(world: GameWorld, fraction: float, rng: random.Random) -> int:
    """Rewire a *fraction* of road links in place (supply re-routing).

    Each selected site gets a fresh random target for one of its chord
    links.  Returns the number of sites rewired.
    """
    sites = world.objects("Site")
    n = len(sites)
    n_rewire = max(1, int(n * fraction))
    rewired = 0
    for site in rng.sample(sites, k=min(n_rewire, n)):
        slot = rng.choice(("link2", "link3"))
        target = rng.randrange(n)
        if target == site["idx"]:
            continue
        world.set_state("Site", site["id"], **{slot: target})
        rewired += 1
    return rewired


def infect(world: GameWorld, site_idx: int) -> None:
    """Seed a new outbreak at the site with index *site_idx*."""
    for site in world.objects("Site"):
        if site["idx"] == site_idx:
            world.set_state("Site", site["id"], infected=1)
            return
    raise ValueError(f"no site with idx {site_idx}")


def infected_ids(world: GameWorld) -> set[int]:
    """Indices of currently infected sites."""
    return {s["idx"] for s in world.objects("Site") if s["infected"]}
