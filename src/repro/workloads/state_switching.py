"""A workload that alternates between game states (Section 4.1).

"A strategy game will look very different when characters are exploring
than when they are fighting, but it is unlikely that the game will switch
back-and-forth between the two very frequently."  This workload moves the
same unit population between two spatial distributions:

* ``exploring`` — units spread uniformly over the whole map, so a spatial
  range self-join is very selective (small intermediate results),
* ``fighting`` — units packed into a small battle area, so the same join
  explodes (large intermediate results).

Experiment E4 compiles one plan per state and shows that switching between
them beats either plan run unconditionally.
"""

from __future__ import annotations

import random

from repro.engine.catalog import Catalog
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType

__all__ = ["STATES", "unit_positions", "load_state", "make_state_catalog"]

#: The two workload states and the fraction of the map they occupy.
STATES: dict[str, float] = {"exploring": 1.0, "fighting": 0.12}


def unit_positions(
    n_units: int, state: str, world_size: float = 100.0, seed: int = 31
) -> list[dict]:
    """Unit rows positioned according to the named workload state."""
    if state not in STATES:
        raise ValueError(f"unknown workload state {state!r}; known: {sorted(STATES)}")
    rng = random.Random(seed + hash(state) % 1000)
    fraction = STATES[state]
    extent = world_size * fraction
    origin = (world_size - extent) / 2.0
    rows = []
    for i in range(n_units):
        rows.append(
            {
                "id": i,
                "player": i % 2,
                "x": origin + rng.uniform(0.0, extent),
                "y": origin + rng.uniform(0.0, extent),
                "range": 8.0,
                "strength": rng.uniform(1.0, 5.0),
            }
        )
    return rows


def make_state_catalog() -> Catalog:
    """A catalog with an empty ``unit`` table matching :func:`unit_positions`."""
    catalog = Catalog()
    schema = Schema(
        [
            Column("id", DataType.NUMBER, nullable=False),
            Column("player", DataType.NUMBER),
            Column("x", DataType.NUMBER),
            Column("y", DataType.NUMBER),
            Column("range", DataType.NUMBER),
            Column("strength", DataType.NUMBER),
        ]
    )
    catalog.create_table("unit", schema, key="id")
    return catalog


def load_state(
    catalog: Catalog, state: str, n_units: int, world_size: float = 100.0, seed: int = 31
) -> None:
    """Replace the ``unit`` table's contents with the named state's rows."""
    table = catalog.table("unit")
    table.clear()
    table.insert_many(unit_positions(n_units, state, world_size, seed))
    catalog.invalidate_statistics("unit")
