"""Effect accumulation and combination (the ⊕ of the state-effect pattern).

During the effect step scripts only *propose* values; at the end of the
tick every effect variable's proposals are combined with the aggregate
function declared for it in the class definition (Section 2, Figure 1).
:class:`EffectStore` accumulates :class:`~repro.sgl.ir.EffectAssignment`
objects and produces the combined per-object values the update step reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.engine.aggregates import AGGREGATE_NAMES, Accumulator, make_accumulator
from repro.sgl.ast_nodes import ClassDecl
from repro.sgl.ir import EffectAssignment
from repro.sgl.semantics import COMBINATOR_ALIASES

__all__ = ["EffectStore", "CombinedEffects", "combinator_identity"]

#: Identity values reported for effects that received no assignments.
_IDENTITIES = {
    "sum": 0,
    "count": 0,
    "any": False,
    "all": True,
    "union": frozenset(),
    "collect": (),
}


def combinator_identity(combinator: str) -> Any:
    """The value an effect takes when nothing was assigned to it this tick."""
    return _IDENTITIES.get(COMBINATOR_ALIASES.get(combinator, combinator))


@dataclass
class CombinedEffects:
    """Combined effect values for one tick: (class, id) -> {effect: value}.

    Also records how many raw assignments fed each value, which the
    debugger's per-NPC effect inspector (Section 3.3) displays.
    """

    values: dict[tuple[str, Any], dict[str, Any]] = field(default_factory=dict)
    assignment_counts: dict[tuple[str, Any], dict[str, int]] = field(default_factory=dict)

    def for_object(self, class_name: str, object_id: Any) -> dict[str, Any]:
        return self.values.get((class_name, object_id), {})

    def value(self, class_name: str, object_id: Any, effect: str, default: Any = None) -> Any:
        return self.for_object(class_name, object_id).get(effect, default)

    def objects_with_effects(self, class_name: str) -> list[Any]:
        return [oid for (cls, oid) in self.values if cls == class_name]

    def total_assignments(self) -> int:
        return sum(sum(counts.values()) for counts in self.assignment_counts.values())


class EffectStore:
    """Accumulates effect assignments during a tick and combines them."""

    def __init__(self, classes: Mapping[str, ClassDecl]):
        self._classes = dict(classes)
        self._accumulators: dict[tuple[str, Any, str], Accumulator] = {}
        self._counts: dict[tuple[str, Any, str], int] = {}

    # -- accumulation -----------------------------------------------------------------------

    def add(self, assignment: EffectAssignment) -> None:
        """Fold one assignment into the store.

        Set-inserts (``<=``) always combine with set union regardless of the
        declared combinator, matching the paper's container semantics.
        """
        combinator = self._combinator_for(assignment)
        key = (assignment.class_name, assignment.target_id, assignment.effect)
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            accumulator = make_accumulator(combinator)
            self._accumulators[key] = accumulator
            self._counts[key] = 0
        accumulator.add(assignment.value)
        self._counts[key] += 1

    def add_all(self, assignments: Iterable[EffectAssignment]) -> None:
        for assignment in assignments:
            self.add(assignment)

    def _combinator_for(self, assignment: EffectAssignment) -> str:
        if assignment.set_insert:
            return "union"
        class_decl = self._classes.get(assignment.class_name)
        if class_decl is not None:
            effect = class_decl.effect_field(assignment.effect)
            if effect is not None:
                return COMBINATOR_ALIASES.get(effect.combinator, effect.combinator)
        # Unknown effect (e.g. synthetic effects used by update components):
        # default to choose so a single writer behaves like plain assignment.
        return "choose"

    # -- results -------------------------------------------------------------------------------

    def combine(self) -> CombinedEffects:
        """Produce the combined values and reset nothing (idempotent)."""
        combined = CombinedEffects()
        for (class_name, object_id, effect), accumulator in self._accumulators.items():
            obj_key = (class_name, object_id)
            combined.values.setdefault(obj_key, {})[effect] = accumulator.result()
            combined.assignment_counts.setdefault(obj_key, {})[effect] = self._counts[
                (class_name, object_id, effect)
            ]
        return combined

    def clear(self) -> None:
        self._accumulators.clear()
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._accumulators)

    @staticmethod
    def known_combinators() -> tuple[str, ...]:
        return AGGREGATE_NAMES
