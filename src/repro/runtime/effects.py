"""Effect accumulation and combination (the ⊕ of the state-effect pattern).

During the effect step scripts only *propose* values; at the end of the
tick every effect variable's proposals are combined with the aggregate
function declared for it in the class definition (Section 2, Figure 1).
:class:`EffectStore` accumulates :class:`~repro.sgl.ir.EffectAssignment`
objects and produces the combined per-object values the update step reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine.aggregates import AGGREGATE_NAMES, Accumulator, make_accumulator
from repro.engine.errors import ExecutionError
from repro.sgl.ast_nodes import ClassDecl
from repro.sgl.ir import EffectAssignment
from repro.sgl.semantics import COMBINATOR_ALIASES, resolve_combinator

__all__ = ["EffectStore", "CombinedEffects", "combinator_identity"]

#: Identity values reported for effects that received no assignments.
_IDENTITIES = {
    "sum": 0,
    "count": 0,
    "any": False,
    "all": True,
    "union": frozenset(),
    "collect": (),
}


def combinator_identity(combinator: str) -> Any:
    """The value an effect takes when nothing was assigned to it this tick."""
    return _IDENTITIES.get(COMBINATOR_ALIASES.get(combinator, combinator))


@dataclass
class CombinedEffects:
    """Combined effect values for one tick: (class, id) -> {effect: value}.

    Also records how many raw assignments fed each value, which the
    debugger's per-NPC effect inspector (Section 3.3) displays.
    """

    values: dict[tuple[str, Any], dict[str, Any]] = field(default_factory=dict)
    assignment_counts: dict[tuple[str, Any], dict[str, int]] = field(default_factory=dict)

    def for_object(self, class_name: str, object_id: Any) -> dict[str, Any]:
        return self.values.get((class_name, object_id), {})

    def value(self, class_name: str, object_id: Any, effect: str, default: Any = None) -> Any:
        return self.for_object(class_name, object_id).get(effect, default)

    def objects_with_effects(self, class_name: str) -> list[Any]:
        return [oid for (cls, oid) in self.values if cls == class_name]

    def total_assignments(self) -> int:
        return sum(sum(counts.values()) for counts in self.assignment_counts.values())


class EffectStore:
    """Accumulates effect assignments during a tick and combines them."""

    def __init__(self, classes: Mapping[str, ClassDecl]):
        self._classes = dict(classes)
        self._accumulators: dict[tuple[str, Any, str], Accumulator] = {}
        self._counts: dict[tuple[str, Any, str], int] = {}

    # -- accumulation -----------------------------------------------------------------------

    def add(self, assignment: EffectAssignment) -> None:
        """Fold one assignment into the store.

        Set-inserts (``<=``) always combine with set union regardless of the
        declared combinator, matching the paper's container semantics.
        """
        combinator = self._combinator_for(assignment)
        key = (assignment.class_name, assignment.target_id, assignment.effect)
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            accumulator = make_accumulator(combinator)
            self._accumulators[key] = accumulator
            self._counts[key] = 0
        accumulator.add(assignment.value)
        self._counts[key] += 1

    def add_all(self, assignments: Iterable[EffectAssignment]) -> None:
        for assignment in assignments:
            self.add(assignment)

    def add_partial(
        self,
        class_name: str,
        target_id: Any,
        effect: str,
        partial: Accumulator,
        count: int,
        set_insert: bool = False,
    ) -> None:
        """Fold a pre-combined group of assignments into the store.

        This is the sink half of in-engine effect aggregation
        (:class:`~repro.engine.operators.shared.EffectSinkOp`): one query's
        assignments to ``(target, effect)`` arrive already combined as a
        partial accumulator, plus the raw assignment ``count`` so the
        debugger's per-NPC counts match the row-at-a-time path exactly.
        Partials merge with :meth:`Accumulator.merge` — semantically
        lossless for every order-insensitive combinator (the only kind
        the runtime ever sink-fuses), though merging two queries' float
        sums reassociates addition and may differ from the row-at-a-time
        fold by rounding error, like delta-maintained and partitioned
        parallel aggregates already do.
        """
        key = (class_name, target_id, effect)
        combinator = self._resolve_combinator(class_name, effect, set_insert)
        if partial.func != combinator:
            # The compiler resolves sink combinators through the same
            # resolve_combinator helper this store uses, so a mismatch
            # means the fused values were combined under the wrong ⊕ —
            # silently folding the collapsed result would corrupt effects.
            raise ExecutionError(
                f"effect sink combined {class_name}.{effect} with "
                f"{partial.func!r} but the declaration requires {combinator!r}"
            )
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            # Adopt the partial wholesale — the common case.
            self._accumulators[key] = partial
            self._counts[key] = count
            return
        accumulator.merge(partial)
        self._counts[key] += count

    def _combinator_for(self, assignment: EffectAssignment) -> str:
        return self._resolve_combinator(
            assignment.class_name, assignment.effect, assignment.set_insert
        )

    def _resolve_combinator(self, class_name: str, effect: str, set_insert: bool) -> str:
        return resolve_combinator(self._classes.get(class_name), effect, set_insert)

    # -- results -------------------------------------------------------------------------------

    def combine(self) -> CombinedEffects:
        """Produce the combined values and reset nothing (idempotent)."""
        combined = CombinedEffects()
        for (class_name, object_id, effect), accumulator in self._accumulators.items():
            obj_key = (class_name, object_id)
            combined.values.setdefault(obj_key, {})[effect] = accumulator.result()
            combined.assignment_counts.setdefault(obj_key, {})[effect] = self._counts[
                (class_name, object_id, effect)
            ]
        return combined

    def retain(self, predicate: Callable[[str, Any], bool]) -> int:
        """Drop accumulated effects whose ``(class_name, target_id)`` fails
        *predicate*; return the number of dropped ``(target, effect)`` keys.

        The sharded engine uses this as its ownership filter: every worker
        runs the effect step over its owned rows plus replicated ghosts,
        then keeps only effects aimed at targets it owns, so each effect is
        applied exactly once fleet-wide without shipping accumulators.
        """
        doomed = [
            key for key in self._accumulators if not predicate(key[0], key[1])
        ]
        for key in doomed:
            del self._accumulators[key]
            del self._counts[key]
        return len(doomed)

    def clear(self) -> None:
        self._accumulators.clear()
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._accumulators)

    @staticmethod
    def known_combinators() -> tuple[str, ...]:
        return AGGREGATE_NAMES
