"""The SGL game runtime: the state-effect tick engine, effect combination,
update components (physics, pathfinding, transactions, scheduling),
reactive scripting and debugging tools."""

from repro.runtime.effects import CombinedEffects, EffectStore, combinator_identity
from repro.runtime.pathfinding import GridMap, PathfindingComponent, PathfindingConfig, astar
from repro.runtime.physics import CollisionEvent, PhysicsComponent, PhysicsConfig
from repro.runtime.reactive import FiredHandler, Handler, ReactiveDispatcher
from repro.runtime.scheduler import MultiTickScheduler
from repro.runtime.transactions import TransactionEngine, TransactionOutcome, TransactionReport
from repro.runtime.updates import (
    ExpressionUpdater,
    OwnershipRegistry,
    StateUpdate,
    UpdateComponent,
    UpdateRule,
)
from repro.runtime.world import ExecutionMode, GameWorld, TickReport

__all__ = [
    "CombinedEffects",
    "EffectStore",
    "combinator_identity",
    "GridMap",
    "PathfindingComponent",
    "PathfindingConfig",
    "astar",
    "CollisionEvent",
    "PhysicsComponent",
    "PhysicsConfig",
    "FiredHandler",
    "Handler",
    "ReactiveDispatcher",
    "MultiTickScheduler",
    "TransactionEngine",
    "TransactionOutcome",
    "TransactionReport",
    "ExpressionUpdater",
    "OwnershipRegistry",
    "StateUpdate",
    "UpdateComponent",
    "UpdateRule",
    "ExecutionMode",
    "GameWorld",
    "TickReport",
]
