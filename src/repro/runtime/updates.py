"""The update-component framework (Section 2.2).

At the end of each tick, state attributes are updated from the combined
effects.  Simple attributes use expression rules (``health = health −
damage``); others are owned by dedicated subsystems — the physics engine,
pathfinding, the transaction engine — that "take effect assignments as
input, but [whose] actions are not expressible in SGL".

The framework enforces the paper's ownership rule: *"each state attribute
is assigned to (or owned by) a single update component … we require that
the state variables be strictly partitioned among these components to avoid
introducing any ordering constraints."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Protocol, Sequence

from repro.engine.errors import ConstraintViolation
from repro.engine.expressions import Expression
from repro.runtime.effects import CombinedEffects

__all__ = [
    "StateUpdate",
    "WorldStateView",
    "UpdateComponent",
    "ExpressionUpdater",
    "UpdateRule",
    "OwnershipRegistry",
]


@dataclass(frozen=True)
class StateUpdate:
    """One new value for one state attribute of one object."""

    class_name: str
    object_id: Any
    attribute: str
    value: Any


class WorldStateView(Protocol):
    """Read access to current state that update components receive."""

    def objects(self, class_name: str) -> Iterable[Mapping[str, Any]]:
        ...

    def get_object(self, class_name: str, object_id: Any) -> Mapping[str, Any] | None:
        ...

    def class_names(self) -> Sequence[str]:
        ...


class UpdateComponent:
    """Base class for update components.

    Subclasses declare which attributes of which classes they own and
    produce :class:`StateUpdate` objects from the combined effects.
    """

    #: Human-readable name used in ownership error messages and debug output.
    name = "update-component"

    def owned_attributes(self) -> dict[str, set[str]]:
        """Mapping class name -> set of state attribute names this owns."""
        raise NotImplementedError

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        """Compute the new values of the owned attributes for this tick."""
        raise NotImplementedError


@dataclass(frozen=True)
class UpdateRule:
    """An expression-style update rule for one attribute of one class.

    ``compute`` receives the object's current state row and its combined
    effect values (missing effects appear with their identity or ``None``)
    and returns the attribute's new value.  The classic paper example
    ``health = health - damage`` is ``lambda state, effects:
    state["health"] - effects.get("damage", 0)``.

    ``expression`` may be used instead of ``compute``: an engine expression
    evaluated over a row containing both the state fields and the effect
    values (state and effect names never collide, they are disjoint by
    construction).
    """

    class_name: str
    attribute: str
    compute: Callable[[Mapping[str, Any], Mapping[str, Any]], Any] | None = None
    expression: Expression | None = None

    def apply(self, state_row: Mapping[str, Any], effect_values: Mapping[str, Any]) -> Any:
        if self.compute is not None:
            return self.compute(state_row, effect_values)
        if self.expression is not None:
            merged = dict(state_row)
            merged.update(effect_values)
            return self.expression.evaluate(merged)
        raise ConstraintViolation(
            f"update rule for {self.class_name}.{self.attribute} has neither a callable "
            "nor an expression"
        )


class ExpressionUpdater(UpdateComponent):
    """The default update component: one expression rule per owned attribute."""

    name = "expression-updater"

    def __init__(self, rules: Sequence[UpdateRule] = ()):
        self._rules: list[UpdateRule] = list(rules)

    def add_rule(self, rule: UpdateRule) -> None:
        self._rules.append(rule)

    def rule(
        self,
        class_name: str,
        attribute: str,
        compute: Callable[[Mapping[str, Any], Mapping[str, Any]], Any] | None = None,
        expression: Expression | None = None,
    ) -> "ExpressionUpdater":
        """Fluent helper: ``updater.rule("Unit", "health", fn)``."""
        self.add_rule(UpdateRule(class_name, attribute, compute, expression))
        return self

    def owned_attributes(self) -> dict[str, set[str]]:
        owned: dict[str, set[str]] = {}
        for rule in self._rules:
            owned.setdefault(rule.class_name, set()).add(rule.attribute)
        return owned

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        updates: list[StateUpdate] = []
        for rule in self._rules:
            for row in state.objects(rule.class_name):
                effect_values = effects.for_object(rule.class_name, row["id"])
                value = rule.apply(row, effect_values)
                updates.append(StateUpdate(rule.class_name, row["id"], rule.attribute, value))
        return updates


class OwnershipRegistry:
    """Validates that state attributes are strictly partitioned among
    components and routes updates."""

    def __init__(self) -> None:
        self._components: list[UpdateComponent] = []
        self._owner: dict[tuple[str, str], UpdateComponent] = {}

    @property
    def components(self) -> list[UpdateComponent]:
        return list(self._components)

    def register(self, component: UpdateComponent) -> None:
        """Register *component*, checking the strict-partition rule."""
        for class_name, attributes in component.owned_attributes().items():
            for attribute in attributes:
                key = (class_name, attribute)
                if key in self._owner:
                    raise ConstraintViolation(
                        f"state attribute {class_name}.{attribute} is already owned by "
                        f"{self._owner[key].name!r}; update components must own disjoint "
                        "attribute sets"
                    )
        for class_name, attributes in component.owned_attributes().items():
            for attribute in attributes:
                self._owner[(class_name, attribute)] = component
        self._components.append(component)

    def owner_of(self, class_name: str, attribute: str) -> UpdateComponent | None:
        return self._owner.get((class_name, attribute))

    def owned(self, class_name: str) -> set[str]:
        return {attr for (cls, attr) in self._owner if cls == class_name}

    def compute_all(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        """Run every component and check it only wrote what it owns."""
        updates: list[StateUpdate] = []
        for component in self._components:
            produced = component.compute_updates(state, effects)
            for update in produced:
                owner = self._owner.get((update.class_name, update.attribute))
                if owner is not component:
                    raise ConstraintViolation(
                        f"component {component.name!r} produced an update for "
                        f"{update.class_name}.{update.attribute}, which it does not own"
                    )
            updates.extend(produced)
        return updates
