"""Debugging support for SGL games (Section 3.3)."""

from repro.runtime.debug.inspector import EffectTrace, TickInspector, explain_script_plans
from repro.runtime.debug.logger import Checkpoint, TickLogger

__all__ = ["EffectTrace", "TickInspector", "explain_script_plans", "Checkpoint", "TickLogger"]
