"""Tick-boundary inspection and per-NPC effect tracing (Section 3.3).

The paper's desiderata for debugging SGL:

* "Developers should be able to inspect the value of state attributes at
  tick boundaries" — :meth:`TickInspector.state_of` /
  :meth:`TickInspector.diff_since`.
* "Developers should be able to select an individual NPC and view the
  effects assigned to it" — :meth:`TickInspector.effects_of`, which reports
  the combined value *and* how many raw assignments produced it.
* Bridging the gap between the imperative script and the relational plan —
  :func:`explain_script_plans` prints, for every effect-assignment site of
  a script, the logical plan the compiler generated and the physical plan
  the optimizer chose, annotated with runtime row counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.runtime.world import ExecutionMode, GameWorld, TickReport

__all__ = ["EffectTrace", "TickInspector", "explain_script_plans"]


@dataclass(frozen=True)
class EffectTrace:
    """The combined effects one object received during the last tick."""

    class_name: str
    object_id: Any
    values: Mapping[str, Any]
    assignment_counts: Mapping[str, int]

    def __str__(self) -> str:
        parts = [f"{self.class_name}#{self.object_id}:"]
        if not self.values:
            parts.append("  (no effects assigned)")
        for effect, value in sorted(self.values.items()):
            count = self.assignment_counts.get(effect, 0)
            parts.append(f"  {effect} = {value!r}  ({count} assignment(s))")
        return "\n".join(parts)


@dataclass
class TickInspector:
    """Inspects a :class:`GameWorld` at tick boundaries."""

    world: GameWorld
    _baselines: dict[int, dict[str, list[dict[str, Any]]]] = field(default_factory=dict)

    # -- state at tick boundaries -----------------------------------------------------------

    def state_of(self, class_name: str, object_id: Any) -> dict[str, Any] | None:
        """Current state attributes of one object."""
        return self.world.get_object(class_name, object_id)

    def capture_baseline(self) -> int:
        """Remember the current state; returns a baseline id for diffing."""
        baseline_id = self.world.tick_count
        self._baselines[baseline_id] = {
            class_name: self.world.objects(class_name)
            for class_name in self.world.class_names()
        }
        return baseline_id

    def diff_since(self, baseline_id: int) -> dict[str, dict[Any, dict[str, tuple[Any, Any]]]]:
        """Per-class, per-object attribute changes since a baseline.

        Returns ``{class: {object id: {attribute: (old, new)}}}`` containing
        only attributes whose value changed.
        """
        baseline = self._baselines.get(baseline_id, {})
        diff: dict[str, dict[Any, dict[str, tuple[Any, Any]]]] = {}
        for class_name, old_rows in baseline.items():
            old_by_id = {row["id"]: row for row in old_rows}
            for row in self.world.objects(class_name):
                old = old_by_id.get(row["id"])
                if old is None:
                    continue
                changes = {
                    attr: (old[attr], row[attr])
                    for attr in row
                    if attr in old and old[attr] != row[attr]
                }
                if changes:
                    diff.setdefault(class_name, {})[row["id"]] = changes
        return diff

    # -- per-NPC effect traces ---------------------------------------------------------------

    def effects_of(self, class_name: str, object_id: Any) -> EffectTrace:
        """The effects combined for one object during the most recent tick."""
        combined = self.world.last_effects
        return EffectTrace(
            class_name=class_name,
            object_id=object_id,
            values=dict(combined.for_object(class_name, object_id)),
            assignment_counts=dict(
                combined.assignment_counts.get((class_name, object_id), {})
            ),
        )

    def objects_with_effects(self, class_name: str) -> list[Any]:
        return self.world.last_effects.objects_with_effects(class_name)

    # -- catalogue overview ----------------------------------------------------------------------

    def table_summary(self) -> Mapping[str, int]:
        """Row counts of every generated table (maps attributes back to SGL)."""
        return self.world.catalog.summary()

    # -- tick timings and plan-cache traffic -----------------------------------------------------

    def tick_counters(self) -> dict[str, Any]:
        """Timings and engine counters of the most recent tick.

        Beyond the step timings this surfaces the previously invisible
        bookkeeping: how long the index-advisor/replan step took
        (``advisor_seconds``), how the executor's plan cache behaved
        (``plan_cache_hits`` / ``plan_cache_misses`` — a miss after warmup
        means something invalidated plans), what tick-wide sharing
        bought (``shared_subplans``, ``shared_evaluations_saved``,
        ``fused_effect_rows``), what the subscription flush phase
        streamed (``flush_seconds``, ``subscription_messages``,
        ``subscription_delta_rows``), what the WAL persist phase
        wrote (``persist_seconds``, ``wal_bytes``, ``wal_delta_rows`` —
        all zero when no WAL is attached), and what the tick's recursive
        fixpoint plans iterated (``fixpoint_rounds`` semi-naive rounds
        feeding ``fixpoint_delta_rows`` frontier rows — per-round work
        proportional to the delta — plus ``fixpoint_warm_restarts`` and
        ``fixpoint_cache_hits``).  In a shard worker the exchange counters
        (``exchange_bytes``/``exchange_rows`` wire traffic sent,
        ``halo_rows`` ghosts installed, ``handoff_rows`` ownership
        transfers) are stamped by the shard runtime; they stay zero in a
        single-process world.  ``engine_config`` records the
        active :class:`~repro.engine.config.EngineConfig`, so any number
        taken from these counters carries exactly which engine paths
        produced it.

        Before the first tick the full schema is returned **zeroed**
        (``tick`` = -1) instead of an empty dict, so scrapers and
        dashboards see a stable key set from the moment the world exists.
        """
        report = (
            self.world.reports[-1] if self.world.reports else TickReport(tick=-1)
        )
        counters = report.as_dict()
        counters["engine_config"] = self.world.config.as_dict()
        return counters

    def sharing_report(self) -> dict[str, Any]:
        """The tick pipeline's shared-subplan DAG and fusion decisions."""
        return self.world.executor.tick_sharing_report()


def explain_script_plans(world: GameWorld, script_name: str, analyze: bool = False) -> str:
    """Render the compiled plans of one script, one block per effect site.

    With ``analyze=True`` the physical plans include observed row counts and
    per-operator timings from the executions so far, which is the closest
    analogue of stepping through an imperative script when the runtime is a
    relational engine.
    """
    if world.mode is not ExecutionMode.COMPILED:
        return f"script {script_name!r} runs interpreted; no compiled plans to show"
    compiled = world.compiled.script(script_name)
    sections: list[str] = []
    for segment_index in sorted(compiled.queries_by_segment):
        for query in compiled.queries_by_segment[segment_index]:
            planned = world.executor.prepare(query.plan)
            header = (
                f"-- segment {segment_index} | effect {query.target_class}.{query.effect} "
                f"| {query.description}"
            )
            sections.append(header)
            sections.append(planned.explain(analyze=analyze))
    return "\n".join(sections) if sections else f"script {script_name!r} produces no effects"
