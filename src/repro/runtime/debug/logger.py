"""Logging with resumable checkpoints (Section 3.3).

"SGL should include support for logging, including resumable checkpoints."
:class:`TickLogger` hooks a :class:`~repro.runtime.world.GameWorld`,
records a compact log line per tick, snapshots the full world state every
``checkpoint_every`` ticks, and can rewind the world to any earlier tick by
restoring the nearest checkpoint at or before it and deterministically
re-running ticks up to the requested point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.engine.errors import ExecutionError
from repro.runtime.world import GameWorld, TickReport

__all__ = ["Checkpoint", "TickLogger"]


@dataclass(frozen=True)
class Checkpoint:
    """A restorable snapshot of the world at one tick boundary."""

    tick: int
    snapshot: Mapping[str, Any]


@dataclass
class TickLogger:
    """Records per-tick log entries and periodic checkpoints."""

    world: GameWorld
    checkpoint_every: int = 10
    log_lines: list[str] = field(default_factory=list)
    #: Structured counterpart of :attr:`log_lines`: one dict per tick
    #: carrying the full ``tick_counters`` payload (every phase timing and
    #: engine counter of :meth:`TickReport.as_dict` plus the active engine
    #: config), where the compact line keeps only the headline numbers.
    log_records: list[dict[str, Any]] = field(default_factory=list)
    checkpoints: list[Checkpoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise ExecutionError("checkpoint_every must be positive")
        # Always checkpoint the initial state so any tick can be reached.
        self.checkpoints.append(Checkpoint(self.world.tick_count, self.world.snapshot()))

    # -- recording --------------------------------------------------------------------------

    def tick(self) -> TickReport:
        """Run one world tick, logging and checkpointing it."""
        report = self.world.tick()
        self.log_lines.append(self._format(report))
        self.log_records.append(self._structured(report))
        if self.world.tick_count % self.checkpoint_every == 0:
            self.checkpoints.append(Checkpoint(self.world.tick_count, self.world.snapshot()))
        return report

    def run(self, ticks: int) -> list[TickReport]:
        return [self.tick() for _ in range(ticks)]

    def _format(self, report: TickReport) -> str:
        """The compact default repr (headline numbers only; the structured
        record in :attr:`log_records` carries everything else)."""
        return (
            f"tick={report.tick} assignments={report.effect_assignments} "
            f"txn={report.transactions_committed}/{report.transactions_submitted} "
            f"updates={report.state_updates_applied} handlers={report.handlers_fired} "
            f"seconds={report.total_seconds:.5f}"
        )

    def _structured(self, report: TickReport) -> dict[str, Any]:
        """One tick's full counters payload (phase timings included)."""
        record = report.as_dict()
        record["engine_config"] = self.world.config.as_dict()
        return record

    def json_lines(self) -> list[str]:
        """The structured log as JSON lines (one serialized dict per tick)."""
        return [json.dumps(record, sort_keys=True) for record in self.log_records]

    # -- resuming -------------------------------------------------------------------------------

    def latest_checkpoint_at_or_before(self, tick: int) -> Checkpoint:
        candidates = [c for c in self.checkpoints if c.tick <= tick]
        if not candidates:
            raise ExecutionError(f"no checkpoint at or before tick {tick}")
        return max(candidates, key=lambda c: c.tick)

    def rewind_to(self, tick: int) -> None:
        """Restore the world to the state it had at the start of *tick*.

        Restores the nearest earlier checkpoint and replays ticks (the tick
        loop is deterministic for a fixed script set and update components).
        """
        if tick > self.world.tick_count:
            raise ExecutionError(
                f"cannot rewind forward (currently at tick {self.world.tick_count})"
            )
        checkpoint = self.latest_checkpoint_at_or_before(tick)
        self.world.restore(checkpoint.snapshot)
        while self.world.tick_count < tick:
            self.world.tick()
        # Drop log lines past the rewind point so the log matches the state.
        self.log_lines = self.log_lines[: tick if tick >= 0 else 0]
        self.log_records = self.log_records[: tick if tick >= 0 else 0]
        self.checkpoints = [c for c in self.checkpoints if c.tick <= tick]
        if not self.checkpoints or self.checkpoints[0].tick > 0:
            self.checkpoints.insert(0, Checkpoint(self.world.tick_count, self.world.snapshot()))
