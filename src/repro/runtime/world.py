"""The game world: classes, objects, scripts and the tick engine.

:class:`GameWorld` ties every subsystem of the reproduction together and
executes the paper's state-effect tick (Section 2):

1. **Query + effect step** — state tables are frozen (read-only) and every
   enabled script runs, either *compiled* (its effect queries execute
   set-at-a-time on the relational engine) or *interpreted* (the reference
   object-at-a-time walker).  Both produce the same IR: effect assignments
   and transaction requests.
2. **Update step** — effect assignments are combined per effect variable
   with the declared combinators; transaction requests go to the
   transaction engine; every registered update component computes new
   values for the state attributes it owns; the scheduler advances the
   program counters of multi-tick scripts.
3. **Reactive dispatch** — handlers are evaluated against the post-update
   state; the effects they produce participate in the *next* tick, and
   interrupts reset multi-tick program counters (Section 3.2).
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.engine.catalog import Catalog
from repro.engine.config import EngineConfig, resolve_engine_config
from repro.engine.errors import ExecutionError
from repro.engine.executor import Executor, TickQuerySpec
from repro.engine.expressions import Expression
from repro.engine.optimizer.adaptive import IndexAdvisor
from repro.runtime.effects import CombinedEffects, EffectStore
from repro.runtime.reactive import FiredHandler, Handler, ReactiveDispatcher
from repro.runtime.scheduler import MultiTickScheduler
from repro.runtime.transactions import TransactionEngine, TransactionReport
from repro.runtime.updates import (
    ExpressionUpdater,
    OwnershipRegistry,
    StateUpdate,
    UpdateComponent,
    UpdateRule,
)
from repro.sgl.ast_nodes import ClassDecl, NumberLiteral, Program, SglExpression, StateFieldDecl
from repro.sgl.compiler import CompiledProgram, SGLCompiler
from repro.sgl.interpreter import ScriptInterpreter
from repro.sgl.ir import ACTOR_COLUMN, EffectAssignment, TARGET_COLUMN, TransactionRequest, VALUE_COLUMN
from repro.sgl.multitick import pc_variable_name, segment_script
from repro.sgl.parser import parse_program
from repro.sgl.schema_gen import KEY_COLUMN, GeneratedSchema, SchemaGenerator, SchemaLayout
from repro.sgl.semantics import COMBINATOR_ALIASES, AnalyzedProgram, analyze_program

__all__ = ["ExecutionMode", "TickReport", "GameWorld"]


class ExecutionMode(enum.Enum):
    """How scripts are executed during the effect step."""

    COMPILED = "compiled"
    INTERPRETED = "interpreted"


@dataclass
class TickReport:
    """Timings and counters for one tick (also consumed by benchmarks)."""

    tick: int
    effect_step_seconds: float = 0.0
    update_step_seconds: float = 0.0
    reactive_seconds: float = 0.0
    #: Index-advisor bookkeeping + replanning at the end of the tick
    #: (previously untimed, so advisor-heavy ticks looked free).
    advisor_seconds: float = 0.0
    #: Subscription flush phase: per-group delta computation + fan-out to
    #: session outboxes (zero when no subscription manager is attached).
    flush_seconds: float = 0.0
    #: WAL persist phase: change-log consolidation + commit-record append
    #: (and, on checkpoint ticks, the snapshot write).  Zero when no WAL is
    #: attached (see :meth:`GameWorld.attach_wal`).
    persist_seconds: float = 0.0
    effect_assignments: int = 0
    transactions_submitted: int = 0
    transactions_committed: int = 0
    transactions_aborted: int = 0
    handlers_fired: int = 0
    state_updates_applied: int = 0
    #: Executor plan-cache traffic during this tick.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Tick-pipeline sharing: shared subplans in the compiled pipeline,
    #: how many were actually materialized this tick (queries served from
    #: incremental views pull nothing), and how many subplan evaluations
    #: sharing avoids per tick versus unshared execution.
    shared_subplans: int = 0
    shared_subplans_evaluated: int = 0
    shared_evaluations_saved: int = 0
    #: Effect rows combined in-engine by sink fusion (instead of one
    #: EffectAssignment per row through the store).
    fused_effect_rows: int = 0
    #: Subscription service: messages fanned out this tick and signed
    #: delta rows they carried (see ``SubscriptionManager.flush``).
    subscription_messages: int = 0
    subscription_delta_rows: int = 0
    #: WAL persist phase: bytes appended to the delta log and netted row
    #: changes the commit record carried.
    wal_bytes: int = 0
    wal_delta_rows: int = 0
    #: Recursive fixpoint plans: semi-naive rounds iterated this tick and
    #: total frontier (delta) rows fed to those rounds — per-round work
    #: proportional to the delta, not the accumulated closure.  Warm
    #: restarts count re-closures seeded from churn deltas instead of
    #: from scratch; cache hits served an unchanged closure outright.
    fixpoint_rounds: int = 0
    fixpoint_delta_rows: int = 0
    fixpoint_warm_restarts: int = 0
    fixpoint_cache_hits: int = 0
    #: Sharded execution (stamped by the shard worker/coordinator; zero in
    #: a single-process world): wire bytes this process *sent* cross-shard
    #: during the tick (handoffs + halo replicas, zlib+crc32 framed), the
    #: rows those frames carried, ghost rows installed from neighbouring
    #: shards' halo exports, and owned rows handed off to a new owner.
    exchange_bytes: int = 0
    exchange_rows: int = 0
    halo_rows: int = 0
    handoff_rows: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.effect_step_seconds
            + self.update_step_seconds
            + self.reactive_seconds
            + self.advisor_seconds
            + self.flush_seconds
            + self.persist_seconds
        )

    def as_dict(self) -> dict[str, Any]:
        """Every field plus ``total_seconds``, schema-stable across ticks.

        The one counters payload shared by ``TickInspector.tick_counters``,
        the structured :class:`~repro.runtime.debug.logger.TickLogger`
        records and the metrics collector — a zero report serializes with
        the identical key set, so scrapers never special-case startup.
        """
        out = dataclasses.asdict(self)
        out["total_seconds"] = self.total_seconds
        return out


class GameWorld:
    """A running SGL game: schemas, objects, scripts and the tick loop."""

    def __init__(
        self,
        source: str | Program,
        mode: ExecutionMode = ExecutionMode.COMPILED,
        layout: SchemaLayout = SchemaLayout.SINGLE,
        vertical_groups: Sequence[Sequence[str]] | None = None,
        config: EngineConfig | None = None,
        *,
        optimize: bool | None = None,
        use_indexes: bool | None = None,
        use_batch: bool | None = None,
        use_incremental: bool | None = None,
        auto_index: bool | None = None,
        use_mqo: bool | None = None,
    ):
        config = resolve_engine_config(
            config,
            {
                "optimize": optimize,
                "use_indexes": use_indexes,
                "use_batch": use_batch,
                "use_incremental": use_incremental,
                "auto_index": auto_index,
                "use_mqo": use_mqo,
            },
        )
        self.config = config
        self.program = parse_program(source) if isinstance(source, str) else source
        self.analyzed: AnalyzedProgram = analyze_program(self.program)
        self.mode = mode
        self.layout = layout

        self._segmented = {
            script.name: segment_script(script) for script in self.program.scripts
        }
        self.catalog = Catalog()
        self.schema_generator = SchemaGenerator(layout, vertical_groups)
        self.schemas: dict[str, GeneratedSchema] = {}
        self._register_schemas()

        #: Auto-creates/evicts spatial indexes for hot band joins (§4.2);
        #: pointless when index plans are disabled, hence the ``and``.
        self.index_advisor: IndexAdvisor | None = (
            IndexAdvisor(
                self.catalog,
                create_after=config.index_create_after,
                evict_after=config.index_evict_after,
            )
            if config.auto_index and config.use_indexes
            else None
        )
        self.executor = Executor(self.catalog, config, index_advisor=self.index_advisor)
        #: Tick-wide multi-query optimization: execute each tick's effect
        #: queries through the executor's shared-subplan pipeline with
        #: in-engine effect aggregation, instead of one-query-at-a-time.
        self.use_mqo = config.use_mqo
        #: Compiled queries already offered to the incremental planner,
        #: keyed by their stable ``query_id`` (``id()`` keys are unsafe:
        #: a recycled id would silently skip or double-consider a query).
        self._incremental_considered: set[str] = set()
        self.interpreter = ScriptInterpreter(self.analyzed)
        self.compiler = SGLCompiler(self.analyzed, self.schemas, self.schema_generator)
        self._compiled: CompiledProgram | None = None

        self.updates = OwnershipRegistry()
        self.expression_updater = ExpressionUpdater()
        self._expression_updater_registered = False
        self.scheduler = MultiTickScheduler()
        for script in self.program.scripts:
            self.scheduler.register(self._segmented[script.name], script.class_name)
        if self.scheduler.script_names:
            self.updates.register(self.scheduler)
        self.reactive = ReactiveDispatcher()
        self._transaction_engine: TransactionEngine | None = None

        #: Live subscription service (created lazily by :attr:`subscriptions`).
        self._subscription_manager = None
        #: Durable delta log writer (created by :meth:`attach_wal`).
        self.wal = None
        #: Shard-worker hook, called between the effect and update steps
        #: with ``(store, transactions)`` while effects are still raw.  The
        #: sharded engine uses it to drop ghost rows and non-owned targets;
        #: ``None`` (the default) is a no-op.
        self.effect_step_hook: Callable[[EffectStore, list[TransactionRequest]], None] | None = None

        #: Observers called with the finished :class:`TickReport` at the end
        #: of every :meth:`tick` (metrics collectors, tracers).  Empty by
        #: default, so worlds that never attach observability pay nothing.
        self.tick_observers: list[Callable[[TickReport], None]] = []
        #: The attached :class:`~repro.obs.collector.WorldMetrics`, if any.
        self.metrics = None

        self._next_ids: dict[str, int] = {decl.name: 0 for decl in self.program.classes}
        self._enabled_scripts: list[str] = [script.name for script in self.program.scripts]
        self.tick_count = 0
        #: Combined effects of the most recent tick (debug inspection).
        self.last_effects: CombinedEffects = CombinedEffects()
        #: Transaction report of the most recent tick.
        self.last_transaction_report: TransactionReport = TransactionReport()
        #: Reports of every tick executed so far.
        self.reports: list[TickReport] = []

    # ------------------------------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------------------------------

    def _register_schemas(self) -> None:
        for decl in self.program.classes:
            augmented = self._augment_class(decl)
            self.schemas[decl.name] = self.schema_generator.register(self.catalog, augmented)

    def _augment_class(self, decl: ClassDecl) -> ClassDecl:
        """Add implicit program-counter state fields for multi-tick scripts."""
        extra: list[StateFieldDecl] = []
        for script in self.program.scripts_for_class(decl.name):
            segmented = self._segmented[script.name]
            if segmented.is_multi_tick:
                extra.append(
                    StateFieldDecl(
                        pc_variable_name(script.name), "number", NumberLiteral(0), None
                    )
                )
        if not extra:
            return decl
        return ClassDecl(decl.name, decl.state_fields + tuple(extra), decl.effect_fields)

    # ------------------------------------------------------------------------------------------
    # object management
    # ------------------------------------------------------------------------------------------

    def class_names(self) -> list[str]:
        return [decl.name for decl in self.program.classes]

    def spawn(self, class_name: str, **fields: Any) -> int:
        """Create a new object of *class_name*; returns its id."""
        generated = self._generated(class_name)
        known_columns = {
            column.name
            for schema in generated.state_tables.values()
            for column in schema
        }
        unknown = sorted(set(fields) - known_columns)
        if unknown:
            raise ExecutionError(f"unknown fields for class {class_name!r}: {unknown}")
        object_id = self._next_ids[class_name]
        self._next_ids[class_name] += 1
        remaining = dict(fields)
        for table_name, schema in generated.state_tables.items():
            values: dict[str, Any] = {KEY_COLUMN: object_id}
            for column in schema:
                if column.name in (KEY_COLUMN,):
                    continue
                if column.name in remaining:
                    values[column.name] = remaining.pop(column.name)
            self.catalog.table(table_name).insert(values)
        return object_id

    def spawn_many(self, class_name: str, rows: Iterable[Mapping[str, Any]]) -> list[int]:
        return [self.spawn(class_name, **row) for row in rows]

    def destroy(self, class_name: str, object_id: int) -> None:
        """Remove an object from every partition table."""
        generated = self._generated(class_name)
        for table_name in generated.state_table_names():
            table = self.catalog.table(table_name)
            rowid = table.rowid_for_key(object_id)
            if rowid is not None:
                table.delete(rowid)

    def adopt(self, class_name: str, row: Mapping[str, Any]) -> int:
        """Insert an object with an explicit id (shard handoff / replication).

        *row* is a merged state row as produced by :meth:`get_object` or
        :meth:`release`, including :data:`KEY_COLUMN`.  The id counter is
        bumped past the adopted id so later :meth:`spawn` calls on this
        world can never collide with ids minted elsewhere in the fleet.
        """
        object_id = row[KEY_COLUMN]
        generated = self._generated(class_name)
        for table_name, schema in generated.state_tables.items():
            values: dict[str, Any] = {KEY_COLUMN: object_id}
            for column in schema:
                if column.name != KEY_COLUMN and column.name in row:
                    values[column.name] = row[column.name]
            self.catalog.table(table_name).insert(values)
        if object_id >= self._next_ids.get(class_name, 0):
            self._next_ids[class_name] = object_id + 1
        return object_id

    def release(self, class_name: str, object_id: int) -> dict[str, Any] | None:
        """Remove an object and return its merged row (shard handoff).

        The inverse of :meth:`adopt`: the returned row is everything the
        new owner needs to continue the object's life, or ``None`` when
        the object does not exist here.
        """
        row = self.get_object(class_name, object_id)
        if row is None:
            return None
        self.destroy(class_name, object_id)
        return row

    def count(self, class_name: str) -> int:
        generated = self._generated(class_name)
        return len(self.catalog.table(generated.primary_table))

    def get_object(self, class_name: str, object_id: Any) -> dict[str, Any] | None:
        """Merged state row of one object (implements the WorldView protocol)."""
        generated = self._generated(class_name)
        merged: dict[str, Any] | None = None
        for table_name in generated.state_table_names():
            row = self.catalog.table(table_name).get_by_key(object_id)
            if row is None:
                return None
            if merged is None:
                merged = dict(row)
            else:
                merged.update(row)
        return merged

    def objects(self, class_name: str) -> list[dict[str, Any]]:
        """All state rows of a class (merged across vertical partitions)."""
        generated = self._generated(class_name)
        names = generated.state_table_names()
        primary = self.catalog.table(names[0])
        rows = [dict(row) for row in primary.rows()]
        for table_name in names[1:]:
            table = self.catalog.table(table_name)
            for row in rows:
                extra = table.get_by_key(row[KEY_COLUMN])
                if extra is not None:
                    row.update(extra)
        return rows

    def extent(self, class_name: str) -> Iterable[Mapping[str, Any]]:
        """Alias of :meth:`objects` (the interpreter's WorldView protocol)."""
        return self.objects(class_name)

    def set_state(self, class_name: str, object_id: Any, **changes: Any) -> None:
        """Directly set state attributes (tooling/tests; not script-visible)."""
        self._apply_updates(
            [StateUpdate(class_name, object_id, attr, value) for attr, value in changes.items()]
        )

    def _generated(self, class_name: str) -> GeneratedSchema:
        try:
            return self.schemas[class_name]
        except KeyError:
            raise ExecutionError(f"unknown class {class_name!r}") from None

    # ------------------------------------------------------------------------------------------
    # configuration: scripts, components, rules, handlers
    # ------------------------------------------------------------------------------------------

    @property
    def compiled(self) -> CompiledProgram:
        """The compiled form of every script (compiled lazily on first use)."""
        if self._compiled is None:
            self._compiled = self.compiler.compile_program()
        return self._compiled

    def enabled_scripts(self) -> list[str]:
        return list(self._enabled_scripts)

    def enable_script(self, name: str) -> None:
        if name not in self._enabled_scripts:
            self._enabled_scripts.append(name)

    def disable_script(self, name: str) -> None:
        if name in self._enabled_scripts:
            self._enabled_scripts.remove(name)

    def add_component(self, component: UpdateComponent) -> None:
        """Register an update component (physics, pathfinding, transactions …)."""
        if isinstance(component, TransactionEngine):
            component.set_constraint_evaluator(self._evaluate_constraint)
            self._transaction_engine = component
        self.updates.register(component)

    def add_update_rule(
        self,
        class_name: str,
        attribute: str,
        compute: Callable[[Mapping[str, Any], Mapping[str, Any]], Any] | None = None,
        expression: Expression | None = None,
    ) -> None:
        """Add a ``state = f(state, effects)`` update rule (Section 2.2)."""
        self.expression_updater.add_rule(UpdateRule(class_name, attribute, compute, expression))
        if not self._expression_updater_registered:
            self.updates.register(self.expression_updater)
            self._expression_updater_registered = True
        else:
            # Re-validate ownership for the newly added rule.
            owner = self.updates.owner_of(class_name, attribute)
            if owner is not None and owner is not self.expression_updater:
                raise ExecutionError(
                    f"{class_name}.{attribute} is already owned by {owner.name!r}"
                )
            self.updates._owner[(class_name, attribute)] = self.expression_updater

    def add_handler(self, handler: Handler) -> None:
        """Register a reactive handler (Section 3.2)."""
        self.reactive.register(handler)

    # ------------------------------------------------------------------------------------------
    # the subscription service
    # ------------------------------------------------------------------------------------------

    @property
    def subscriptions(self):
        """The world's :class:`~repro.service.subscriptions.SubscriptionManager`.

        Created lazily on first access and attached to the tick loop: once
        any session subscribes, every :meth:`tick` ends with a *flush
        phase* that computes each standing query's delta once and fans it
        out to all subscriber outboxes (timed in
        ``TickReport.flush_seconds``).  Worlds that never touch this
        property pay nothing.
        """
        if self._subscription_manager is None:
            from repro.service.subscriptions import SubscriptionManager

            self._subscription_manager = SubscriptionManager(world=self)
        return self._subscription_manager

    @property
    def has_subscribers(self) -> bool:
        return (
            self._subscription_manager is not None
            and self._subscription_manager.subscription_count() > 0
        )

    # ------------------------------------------------------------------------------------------
    # the durable delta log
    # ------------------------------------------------------------------------------------------

    def attach_wal(
        self,
        path: str,
        checkpoint_interval: int = 50,
        segment_max_bytes: int | None = None,
        fsync: bool = False,
        auto_trim: bool = False,
        recover: bool = True,
    ):
        """Attach a durable write-ahead delta log at directory *path*.

        Every subsequent :meth:`tick` ends with a timed *persist phase*
        (``TickReport.persist_seconds``): each state table's change log is
        consolidated once and the netted per-row deltas are appended as the
        tick's commit record; every ``checkpoint_interval`` commits a full
        snapshot checkpoint bounds replay cost (and, with ``auto_trim``,
        lets old segments be dropped).

        When *path* already holds a log and ``recover`` is true, the world
        is first **recovered**: torn tails are truncated, the last fully
        committed tick is replayed into the state tables (the world must
        have been built from the same program), and the log resumes
        appending where it left off.  A fresh log starts with a baseline
        checkpoint of the current state, so replay can always reach back to
        the attach point.  Returns the :class:`~repro.persistence.log.WorldWal`.
        """
        from repro.persistence.log import DEFAULT_SEGMENT_BYTES, DeltaLog, WalError, WorldWal

        if self.wal is not None:
            raise ExecutionError("a WAL is already attached to this world")
        log = DeltaLog(
            path,
            segment_max_bytes=(
                segment_max_bytes if segment_max_bytes is not None else DEFAULT_SEGMENT_BYTES
            ),
            fsync=fsync,
        )
        wal = WorldWal(
            self, log, checkpoint_interval=checkpoint_interval, auto_trim=auto_trim
        )
        if log.last_tick is not None and recover:
            recovered = wal.recover()
            if recovered is None:
                raise WalError(f"log at {path!r} exists but holds no recoverable state")
        else:
            wal.checkpoint()  # baseline: replay can reach the attach point
        self.wal = wal
        if self._subscription_manager is not None:
            self._subscription_manager.attach_wal(wal)
        return wal

    def detach_wal(self) -> None:
        """Close and detach the WAL (ticks stop persisting)."""
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # ------------------------------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------------------------------

    def attach_metrics(self, registry=None):
        """Attach a metrics collector fed from every tick's :class:`TickReport`.

        Creates (or reuses) a :class:`~repro.obs.collector.WorldMetrics`
        over *registry* (a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` when ``None``) and
        registers it as a tick observer: phase-latency histograms, engine
        counters and last-tick gauges accumulate from then on.  Returns
        the collector; its ``.registry`` is what
        :class:`~repro.obs.http.MetricsServer` serves.  Observation is a
        fixed handful of locked adds per tick — gated well under 3% of a
        tick — and idempotent: calling again returns the same collector.
        """
        if self.metrics is not None:
            return self.metrics
        from repro.obs.collector import WorldMetrics

        self.metrics = WorldMetrics(registry)
        self.tick_observers.append(self.metrics.observe)
        return self.metrics

    def attach_tracer(self, tracer=None):
        """Attach a :class:`~repro.obs.tracing.TickTracer` as a tick observer.

        Each tick appends per-phase spans (and per-shared-subplan spans,
        labeled by MQO fingerprint) to the tracer's Chrome trace-event
        buffer; ``tracer.export(path)`` writes a Perfetto-loadable file.
        """
        if tracer is None:
            from repro.obs.tracing import TickTracer

            tracer = TickTracer(world=self)
        else:
            tracer.bind(self)
        self.tick_observers.append(tracer.observe)
        return tracer

    # ------------------------------------------------------------------------------------------
    # the tick loop
    # ------------------------------------------------------------------------------------------

    def run(self, ticks: int) -> list[TickReport]:
        return [self.tick() for _ in range(ticks)]

    def tick(self) -> TickReport:
        report = TickReport(tick=self.tick_count)
        store = EffectStore({decl.name: decl for decl in self.program.classes})
        transactions: list[TransactionRequest] = []
        cache_hits = self.executor.plan_cache_hits
        cache_misses = self.executor.plan_cache_misses
        fixpoint_before = self.executor.fixpoint_report()

        # Effects queued by reactive handlers at the end of the previous tick.
        store.add_all(self.reactive.drain_effects())

        # -- query + effect step (state read-only) -------------------------------------------
        started = time.perf_counter()
        self._freeze(True)
        try:
            if self.mode is ExecutionMode.COMPILED:
                self._run_compiled(store, transactions)
            else:
                self._run_interpreted(store, transactions)
        finally:
            self._freeze(False)
        report.effect_step_seconds = time.perf_counter() - started
        report.effect_assignments = len(store)
        report.transactions_submitted = len(transactions)
        if self.mode is ExecutionMode.COMPILED and self.use_mqo:
            stats = self.executor.last_tick_stats
            report.shared_subplans = stats.get("shared_subplans", 0)
            report.shared_subplans_evaluated = stats.get("shared_subplans_evaluated", 0)
            report.shared_evaluations_saved = stats.get("evaluations_saved", 0)
            report.fused_effect_rows = stats.get("fused_effect_rows", 0)

        # Between effect and update step the shard worker removes ghost
        # replicas and filters the store down to effects on owned targets,
        # so the update step below only ever sees this shard's rows.
        if self.effect_step_hook is not None:
            self.effect_step_hook(store, transactions)

        # -- update step -----------------------------------------------------------------------
        started = time.perf_counter()
        if transactions and self._transaction_engine is None:
            # Without a transaction engine atomic blocks degrade to plain
            # effect assignments (documented behaviour).  They are folded
            # in *before* the single combine below — combining first and
            # re-combining the whole store from scratch afterwards did the
            # per-tick aggregation twice.
            for request in transactions:
                store.add_all(request.assignments)
        combined = store.combine()
        self.last_effects = combined
        if transactions and self._transaction_engine is not None:
            self._transaction_engine.submit(transactions)
        updates = self.updates.compute_all(self, combined)
        self._apply_updates(updates)
        report.state_updates_applied = len(updates)
        if self._transaction_engine is not None:
            self.last_transaction_report = self._transaction_engine.last_report
            report.transactions_committed = self.last_transaction_report.commit_count
            report.transactions_aborted = self.last_transaction_report.abort_count
        report.update_step_seconds = time.perf_counter() - started

        # -- reactive dispatch over the post-update state ---------------------------------------
        started = time.perf_counter()
        self.reactive.clear_fired()
        fired: list[FiredHandler] = []
        for class_name in self.class_names():
            if not self.reactive.handlers_for(class_name):
                continue
            fired.extend(
                self.reactive.dispatch(
                    class_name,
                    self.objects(class_name),
                    self._evaluate_condition,
                    self.scheduler.reset,
                )
            )
        report.handlers_fired = len(fired)
        report.reactive_seconds = time.perf_counter() - started

        # -- subscription flush: stream this tick's deltas to subscribers -----------------------
        started = time.perf_counter()
        if self._subscription_manager is not None:
            flush_stats = self._subscription_manager.flush(report.tick)
            report.subscription_messages = flush_stats.get("messages", 0)
            report.subscription_delta_rows = flush_stats.get("delta_rows", 0)
        report.flush_seconds = time.perf_counter() - started

        # -- persist phase: append this tick's commit record to the WAL -------------------------
        started = time.perf_counter()
        if self.wal is not None:
            persist_stats = self.wal.commit_tick(report.tick)
            report.wal_bytes = persist_stats.get("bytes", 0)
            report.wal_delta_rows = persist_stats.get("delta_rows", 0)
        report.persist_seconds = time.perf_counter() - started

        # -- index advisor: create/evict indexes for hot band joins -----------------------------
        started = time.perf_counter()
        if self.index_advisor is not None and self.index_advisor.end_tick():
            # The catalog shape changed; replan so the next tick's queries
            # probe (or stop probing) the adjusted index set.
            self.executor.invalidate_plans()
        report.advisor_seconds = time.perf_counter() - started

        report.plan_cache_hits = self.executor.plan_cache_hits - cache_hits
        report.plan_cache_misses = self.executor.plan_cache_misses - cache_misses
        # Clamped at zero: an advisor-triggered replan above drops cached
        # plans (and their cumulative counters) before this snapshot.
        fixpoint_after = self.executor.fixpoint_report()
        report.fixpoint_rounds = max(
            0, fixpoint_after["total_rounds"] - fixpoint_before["total_rounds"]
        )
        report.fixpoint_delta_rows = max(
            0, fixpoint_after["total_delta_rows"] - fixpoint_before["total_delta_rows"]
        )
        report.fixpoint_warm_restarts = max(
            0, fixpoint_after["warm_restarts"] - fixpoint_before["warm_restarts"]
        )
        report.fixpoint_cache_hits = max(
            0, fixpoint_after["cache_hits"] - fixpoint_before["cache_hits"]
        )
        self.tick_count += 1
        self.reports.append(report)
        for observer in self.tick_observers:
            observer(report)
        return report

    # -- effect-step strategies ---------------------------------------------------------------------

    #: Effect combinators whose combined value depends on assignment order.
    #: Queries feeding them must see full-execution row order, so they are
    #: never registered for incremental (multiset-maintained) execution.
    _ORDER_SENSITIVE_COMBINATORS = frozenset({"first", "last", "collect"})

    def _maybe_register_incremental(self, query: Any) -> None:
        """Offer one compiled effect query to the incremental planner.

        Registration is per-query and sticky, memoized on the compiler's
        stable ``query_id`` — ``id(query)`` values can be recycled after
        garbage collection, which would silently skip a fresh query or
        re-consider a dead one.  Transactional queries are skipped (the
        transaction engine observes row order when resolving conflicts),
        as are queries whose target effect combines with an
        order-sensitive combinator; everything else is handed to
        :meth:`Executor.register_incremental`, which itself declines plans
        it cannot prove delta-correct.
        """
        key = query.query_id or f"anon:{id(query)}"
        if key in self._incremental_considered:
            return
        self._incremental_considered.add(key)
        if query.transactional:
            return
        if not query.set_insert:  # a set-insert always combines with union
            decl = next(
                (d for d in self.program.classes if d.name == query.target_class), None
            )
            effect = decl.effect_field(query.effect) if decl is not None else None
            if effect is not None:
                combinator = COMBINATOR_ALIASES.get(effect.combinator, effect.combinator)
                if combinator in self._ORDER_SENSITIVE_COMBINATORS:
                    return
        self.executor.register_incremental(query.plan)

    def _tick_queries(self) -> list[Any]:
        """The tick's effect queries in execution order (scripts as enabled,
        segments ascending, assignment sites in source order)."""
        queries: list[Any] = []
        for script_name in self._enabled_scripts:
            compiled = self.compiled.script(script_name)
            for segment_index in sorted(compiled.queries_by_segment):
                queries.extend(compiled.queries_by_segment[segment_index])
        return queries

    def _sink_combinator(self, query: Any) -> str | None:
        """The combinator to fuse in-engine, or ``None`` to stay row-at-a-time.

        Transactional queries need per-row actor columns for transaction
        reassembly, and order-sensitive combinators need full-execution
        row order through the store — both keep the row path (the same
        fallback discipline as the incremental and index-probe paths).
        """
        if query.transactional:
            return None
        combinator = query.combinator or "choose"
        if combinator in self._ORDER_SENSITIVE_COMBINATORS:
            return None
        return combinator

    def _run_compiled(
        self, store: EffectStore, transactions: list[TransactionRequest]
    ) -> None:
        pending: dict[tuple[str, int, Any], list[EffectAssignment]] = {}
        pending_constraints: dict[tuple[str, int, Any], tuple[SglExpression, ...]] = {}
        pending_class: dict[tuple[str, int, Any], str] = {}
        queries = self._tick_queries()
        for query in queries:
            self._maybe_register_incremental(query)

        def consume_rows(query: Any, rows: Iterable[Mapping[str, Any]]) -> None:
            for row in rows:
                assignment = EffectAssignment(
                    class_name=query.target_class,
                    target_id=row[TARGET_COLUMN],
                    effect=query.effect,
                    value=row[VALUE_COLUMN],
                    set_insert=query.set_insert,
                )
                if query.transactional:
                    key = (query.script_name, query.block_index, row[ACTOR_COLUMN])
                    pending.setdefault(key, []).append(assignment)
                    pending_constraints[key] = query.constraints
                    pending_class[key] = query.class_name
                else:
                    store.add(assignment)

        if self.use_mqo:
            specs = [
                TickQuerySpec(
                    key=query.query_id or f"anon:{index}",
                    plan=query.plan,
                    combinator=self._sink_combinator(query),
                    target_column=TARGET_COLUMN,
                    value_column=VALUE_COLUMN,
                )
                for index, query in enumerate(queries)
            ]
            results = self.executor.execute_tick(specs)
            for query, result in zip(queries, results):
                if result.partials is not None:
                    for target_id, partial, count in result.partials:
                        store.add_partial(
                            query.target_class,
                            target_id,
                            query.effect,
                            partial,
                            count,
                            query.set_insert,
                        )
                else:
                    consume_rows(query, result.rows or ())
        else:
            for query in queries:
                consume_rows(query, self.executor.execute(query.plan).rows)
        for key, assignments in pending.items():
            script_name, block_index, actor_id = key
            transactions.append(
                TransactionRequest(
                    actor_class=pending_class[key],
                    actor_id=actor_id,
                    assignments=tuple(assignments),
                    constraints=pending_constraints[key],
                    script_name=script_name,
                    block_index=block_index,
                )
            )

    def _run_interpreted(
        self, store: EffectStore, transactions: list[TransactionRequest]
    ) -> None:
        pc_updates: list[StateUpdate] = []
        for script_name in self._enabled_scripts:
            script = self.program.script_named(script_name)
            assert script is not None
            segmented = self._segmented[script_name]
            pc_attr = segmented.pc_variable
            for row in self.objects(script.class_name):
                pc = int(row.get(pc_attr, 0) or 0) if segmented.is_multi_tick else 0
                result, _ = self.interpreter.run_script(script_name, row, self, pc)
                store.add_all(result.effects)
                transactions.extend(result.transactions)
        # Program counters advance in the scheduler update component, which
        # runs for both execution modes.
        del pc_updates

    # -- update application ------------------------------------------------------------------------------

    def _apply_updates(self, updates: Sequence[StateUpdate]) -> None:
        for update in updates:
            generated = self._generated(update.class_name)
            table_name = self._table_for_attribute(generated, update.attribute)
            table = self.catalog.table(table_name)
            table.update_by_key(update.object_id, {update.attribute: update.value})

    def _table_for_attribute(self, generated: GeneratedSchema, attribute: str) -> str:
        for table_name, schema in generated.state_tables.items():
            if attribute in schema:
                return table_name
        raise ExecutionError(
            f"class {generated.class_name!r} has no state attribute {attribute!r}"
        )

    def _freeze(self, frozen: bool) -> None:
        for generated in self.schemas.values():
            for table_name in generated.state_table_names():
                table = self.catalog.table(table_name)
                if frozen:
                    table.freeze()
                else:
                    table.thaw()

    # -- expression evaluation services --------------------------------------------------------------------

    def _evaluate_constraint(
        self, constraint: SglExpression, class_name: str, row: Mapping[str, Any]
    ) -> bool:
        value = self.interpreter.evaluate_expression(constraint, class_name, row, self)
        return bool(value)

    def _evaluate_condition(
        self, condition: Any, class_name: str, row: Mapping[str, Any]
    ) -> bool:
        if callable(condition):
            return bool(condition(row))
        return bool(self.interpreter.evaluate_expression(condition, class_name, row, self))

    # -- snapshots (used by the debugger's checkpoints) ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A restorable snapshot of all state tables plus counters."""
        tables = {}
        for generated in self.schemas.values():
            for table_name in generated.state_table_names():
                tables[table_name] = self.catalog.table(table_name).snapshot()
        return {
            "tick": self.tick_count,
            "tables": tables,
            "next_ids": dict(self._next_ids),
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`snapshot`."""
        for table_name, table_snapshot in snapshot["tables"].items():
            self.catalog.table(table_name).restore(table_snapshot)
        self.tick_count = snapshot["tick"]
        self._next_ids = dict(snapshot["next_ids"])
