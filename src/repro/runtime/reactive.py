"""Reactive / event-driven scripting (Section 3.2).

Instead of starting every script with a ladder of ``if`` statements that
decode what happened last tick, scripts may register *handlers*: a
condition over an object's state plus an action.  At the end of the update
phase the dispatcher evaluates every handler's condition against the new
state; handlers whose condition holds

* produce effect assignments that take part in the **next** tick (exactly
  the semantics the paper sketches: "those handlers with conditions that
  evaluate to true would be executed and set some effects for the next
  tick"), and/or
* interrupt multi-tick intentions by resetting their program counter
  (the "resumable exception" model).

Conditions and actions may be written either as SGL expressions/snippets or
as plain Python callables; both forms read the same state rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.sgl.ast_nodes import SglExpression
from repro.sgl.ir import EffectAssignment

__all__ = ["Handler", "FiredHandler", "ReactiveDispatcher"]

#: A condition is either an SGL expression or a Python predicate over the row.
Condition = "SglExpression | Callable[[Mapping[str, Any]], bool]"
#: An action returns effect assignments for the next tick (possibly empty).
Action = Callable[[Mapping[str, Any]], Iterable[EffectAssignment]]


@dataclass(frozen=True)
class Handler:
    """A registered reactive handler."""

    name: str
    class_name: str
    condition: Any
    action: Action | None = None
    #: Multi-tick scripts whose program counter resets when this fires.
    interrupts: tuple[str, ...] = ()
    #: Higher priority handlers are evaluated first.
    priority: int = 0


@dataclass(frozen=True)
class FiredHandler:
    """One handler firing for one object during one tick."""

    handler: Handler
    object_id: Any


@dataclass
class ReactiveDispatcher:
    """Evaluates handlers after the update phase and queues their effects."""

    handlers: list[Handler] = field(default_factory=list)
    #: Effects produced by the last dispatch; the world feeds them into the
    #: next tick's effect step.
    pending_effects: list[EffectAssignment] = field(default_factory=list)
    #: Handlers that fired during the last dispatch (for the debugger).
    last_fired: list[FiredHandler] = field(default_factory=list)

    def register(self, handler: Handler) -> None:
        self.handlers.append(handler)
        self.handlers.sort(key=lambda h: -h.priority)

    def handlers_for(self, class_name: str) -> list[Handler]:
        return [h for h in self.handlers if h.class_name == class_name]

    def dispatch(
        self,
        class_name: str,
        rows: Sequence[Mapping[str, Any]],
        evaluate_condition: Callable[[Any, str, Mapping[str, Any]], bool],
        reset_pc: Callable[[str, Any], None],
    ) -> list[FiredHandler]:
        """Evaluate handlers of *class_name* against post-update *rows*.

        ``evaluate_condition(condition, class_name, row)`` abstracts over
        SGL-expression vs. callable conditions (the world supplies it);
        ``reset_pc(script_name, object_id)`` performs interrupt resets.
        Returns the handlers that fired; their produced effects are appended
        to :attr:`pending_effects`.
        """
        fired: list[FiredHandler] = []
        for handler in self.handlers_for(class_name):
            for row in rows:
                try:
                    triggered = evaluate_condition(handler.condition, class_name, row)
                except Exception:
                    triggered = False
                if not triggered:
                    continue
                fired.append(FiredHandler(handler, row["id"]))
                if handler.action is not None:
                    self.pending_effects.extend(handler.action(row))
                for script_name in handler.interrupts:
                    reset_pc(script_name, row["id"])
        self.last_fired.extend(fired)
        return fired

    def drain_effects(self) -> list[EffectAssignment]:
        """Return and clear the effects queued for the next tick."""
        effects = self.pending_effects
        self.pending_effects = []
        return effects

    def clear_fired(self) -> None:
        self.last_fired = []
