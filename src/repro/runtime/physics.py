"""A kinematic physics engine packaged as an update component (Section 2.2).

The paper's point about physics is architectural: the physics engine is a
non-scripted subsystem that *owns* position state, consumes the velocity
intentions scripts assign as effects, and may produce outcomes "that were
not mentioned in either script" — for example separating two characters
that tried to move to the same spot.  This component implements exactly
that contract:

1. integrate intended velocities (effect variables, default ``vx``/``vy``)
   scaled by the tick length,
2. clamp positions to the world bounds,
3. resolve pairwise overlaps by pushing colliding objects apart along the
   line between their centres (a single Gauss-Seidel style pass over pairs
   found with a uniform grid), which can leave characters at positions no
   script asked for.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Mapping

from repro.runtime.effects import CombinedEffects
from repro.runtime.updates import StateUpdate, UpdateComponent, WorldStateView

__all__ = ["PhysicsConfig", "PhysicsComponent", "CollisionEvent"]


@dataclass(frozen=True)
class PhysicsConfig:
    """Tuning parameters for the physics component."""

    class_name: str = "Unit"
    x_attribute: str = "x"
    y_attribute: str = "y"
    vx_effect: str = "vx"
    vy_effect: str = "vy"
    tick_seconds: float = 1.0
    world_min_x: float = 0.0
    world_min_y: float = 0.0
    world_max_x: float = 1000.0
    world_max_y: float = 1000.0
    #: Objects closer than this (in both axes) are considered colliding.
    collision_radius: float = 0.0
    #: Maximum speed per tick; intended velocities are clamped to it.
    max_speed: float | None = None
    collision_passes: int = 1


@dataclass(frozen=True)
class CollisionEvent:
    """Two objects that had to be separated during a tick."""

    first_id: Any
    second_id: Any
    overlap: float


class PhysicsComponent(UpdateComponent):
    """Owns the position attributes of one class and integrates motion."""

    name = "physics"

    def __init__(self, config: PhysicsConfig | None = None):
        self.config = config or PhysicsConfig()
        #: Collision events of the most recent tick (for debugging and tests).
        self.last_collisions: list[CollisionEvent] = []

    def owned_attributes(self) -> dict[str, set[str]]:
        cfg = self.config
        return {cfg.class_name: {cfg.x_attribute, cfg.y_attribute}}

    # -- update computation -------------------------------------------------------------------

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        cfg = self.config
        positions: dict[Any, tuple[float, float]] = {}
        for row in state.objects(cfg.class_name):
            vx, vy = self._intended_velocity(row, effects)
            x = float(row[cfg.x_attribute]) + vx * cfg.tick_seconds
            y = float(row[cfg.y_attribute]) + vy * cfg.tick_seconds
            positions[row["id"]] = self._clamp(x, y)
        self.last_collisions = []
        if cfg.collision_radius > 0 and len(positions) > 1:
            for _ in range(max(1, cfg.collision_passes)):
                if not self._resolve_collisions(positions):
                    break
        updates: list[StateUpdate] = []
        for object_id, (x, y) in positions.items():
            updates.append(StateUpdate(cfg.class_name, object_id, cfg.x_attribute, x))
            updates.append(StateUpdate(cfg.class_name, object_id, cfg.y_attribute, y))
        return updates

    def _intended_velocity(
        self, row: Mapping[str, Any], effects: CombinedEffects
    ) -> tuple[float, float]:
        cfg = self.config
        values = effects.for_object(cfg.class_name, row["id"])
        vx = values.get(cfg.vx_effect)
        vy = values.get(cfg.vy_effect)
        vx = 0.0 if vx is None else float(vx)
        vy = 0.0 if vy is None else float(vy)
        if cfg.max_speed is not None:
            speed = math.hypot(vx, vy)
            if speed > cfg.max_speed > 0:
                scale = cfg.max_speed / speed
                vx *= scale
                vy *= scale
        return vx, vy

    def _clamp(self, x: float, y: float) -> tuple[float, float]:
        cfg = self.config
        return (
            min(max(x, cfg.world_min_x), cfg.world_max_x),
            min(max(y, cfg.world_min_y), cfg.world_max_y),
        )

    # -- collision handling ----------------------------------------------------------------------

    def _resolve_collisions(self, positions: dict[Any, tuple[float, float]]) -> bool:
        """Separate overlapping pairs; returns whether anything moved."""
        cfg = self.config
        radius = cfg.collision_radius
        cell = max(radius * 2.0, 1e-9)
        grid: dict[tuple[int, int], list[Any]] = defaultdict(list)
        for object_id, (x, y) in positions.items():
            grid[(int(x // cell), int(y // cell))].append(object_id)
        moved = False
        for (cx, cy), members in list(grid.items()):
            neighbourhood: list[Any] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    neighbourhood.extend(grid.get((cx + dx, cy + dy), ()))
            for i, first in enumerate(members):
                for second in neighbourhood:
                    if second == first:
                        continue
                    if not self._ordered(first, second):
                        continue
                    x1, y1 = positions[first]
                    x2, y2 = positions[second]
                    dx = x2 - x1
                    dy = y2 - y1
                    distance = math.hypot(dx, dy)
                    min_distance = 2 * radius
                    if distance >= min_distance:
                        continue
                    overlap = min_distance - distance
                    if distance < 1e-12:
                        # Perfectly stacked: separate along x deterministically.
                        dx, dy, distance = 1.0, 0.0, 1.0
                    push = overlap / 2.0
                    positions[first] = self._clamp(
                        x1 - push * dx / distance, y1 - push * dy / distance
                    )
                    positions[second] = self._clamp(
                        x2 + push * dx / distance, y2 + push * dy / distance
                    )
                    self.last_collisions.append(CollisionEvent(first, second, overlap))
                    moved = True
        return moved

    @staticmethod
    def _ordered(first: Any, second: Any) -> bool:
        """Process each unordered pair once, deterministically."""
        try:
            return first < second
        except TypeError:
            return repr(first) < repr(second)
