"""Grid pathfinding (A*) packaged as an update component (Section 2.2).

Pathfinding is the paper's second example of "AI planning" functionality
that lives outside SGL but owns state attributes.  The component owns the
position attributes of its class: each tick it reads the object's pathfind
goal (state attributes ``goal_x``/``goal_y`` by default, or ``move_to_x``/
``move_to_y`` effects when scripts steer dynamically), plans a path around
static obstacles on a uniform grid with A*, and advances the object by at
most ``speed`` cells along it.

Two classes of grid queries are expressed differently:

* **Point-to-point paths** stay on :func:`astar` — a goal-directed search
  with a heuristic is the right tool and nothing here beats it.
* **Set-valued queries** — "which cells can this unit reach at all?",
  "how strong is the influence of these sources on every cell?" — are
  *transitive closures*, and those are declarative :class:`~repro.engine.
  algebra.Fixpoint` plans over an edges table derived from the grid
  (:func:`grid_edges_table`).  Running them through the engine buys
  semi-naive iteration, version-vector caching across repeated calls, and
  warm restarts when obstacles are cleared (insert-only edge churn).
  :class:`GridReachability` packages the catalog/executor plumbing.

The module also exposes :func:`astar` directly so tests and examples can
exercise the planner in isolation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.engine.algebra import Fixpoint, Join, LogicalPlan, Project, RecursiveRef, TableScan, Values
from repro.engine.catalog import Catalog
from repro.engine.config import EngineConfig
from repro.engine.executor import Executor
from repro.engine.expressions import BinaryOp, ColumnRef, Literal
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.runtime.effects import CombinedEffects
from repro.runtime.updates import StateUpdate, UpdateComponent, WorldStateView

__all__ = [
    "GridMap",
    "astar",
    "grid_edges_table",
    "reachability_plan",
    "influence_plan",
    "GridReachability",
    "PathfindingConfig",
    "PathfindingComponent",
]


@dataclass
class GridMap:
    """A uniform grid world: dimensions plus a set of blocked cells."""

    width: int
    height: int
    obstacles: set[tuple[int, int]] = field(default_factory=set)

    def in_bounds(self, cell: tuple[int, int]) -> bool:
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def passable(self, cell: tuple[int, int]) -> bool:
        return self.in_bounds(cell) and cell not in self.obstacles

    def neighbours(self, cell: tuple[int, int]) -> Iterable[tuple[int, int]]:
        x, y = cell
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            candidate = (x + dx, y + dy)
            if self.passable(candidate):
                yield candidate

    def add_obstacle_rect(self, x0: int, y0: int, x1: int, y1: int) -> None:
        """Block every cell in the inclusive rectangle [x0..x1] × [y0..y1]."""
        for x in range(x0, x1 + 1):
            for y in range(y0, y1 + 1):
                self.obstacles.add((x, y))

    # -- relational view ----------------------------------------------------------------

    def cell_id(self, cell: tuple[int, int]) -> int:
        """Dense integer id of a cell (row-major), used in the edges table."""
        x, y = cell
        return y * self.width + x

    def cell_at(self, cell_id: int) -> tuple[int, int]:
        """Inverse of :meth:`cell_id`."""
        return (cell_id % self.width, cell_id // self.width)

    def edge_rows(self, cells: Iterable[tuple[int, int]] | None = None) -> list[dict[str, int]]:
        """The grid's passable 4-adjacency as directed ``{src, dst}`` rows.

        With *cells* given, only edges incident to those cells are emitted
        (both directions) — the insert set for unblocking exactly those
        cells.
        """
        if cells is None:
            sources: Iterable[tuple[int, int]] = (
                (x, y) for y in range(self.height) for x in range(self.width)
            )
            rows = [
                {"src": self.cell_id(cell), "dst": self.cell_id(neighbour)}
                for cell in sources
                if self.passable(cell)
                for neighbour in self.neighbours(cell)
            ]
            return rows
        pairs: set[tuple[int, int]] = set()
        for cell in cells:
            if not self.passable(cell):
                continue
            for neighbour in self.neighbours(cell):
                pairs.add((self.cell_id(cell), self.cell_id(neighbour)))
                pairs.add((self.cell_id(neighbour), self.cell_id(cell)))
        return [{"src": src, "dst": dst} for src, dst in sorted(pairs)]


def astar(
    grid: GridMap, start: tuple[int, int], goal: tuple[int, int]
) -> list[tuple[int, int]] | None:
    """A* over 4-connected grid cells with Manhattan-distance heuristic.

    Returns the list of cells from *start* to *goal* inclusive, or ``None``
    when the goal is unreachable.  If the goal cell itself is blocked the
    search targets the nearest passable neighbour of the goal.
    """
    if not grid.passable(start):
        return None
    if not grid.passable(goal):
        candidates = [c for c in grid.neighbours(goal)]
        if not candidates:
            return None
        goal = min(candidates, key=lambda c: abs(c[0] - start[0]) + abs(c[1] - start[1]))

    def heuristic(cell: tuple[int, int]) -> int:
        return abs(cell[0] - goal[0]) + abs(cell[1] - goal[1])

    frontier: list[tuple[int, int, tuple[int, int]]] = [(heuristic(start), 0, start)]
    came_from: dict[tuple[int, int], tuple[int, int] | None] = {start: None}
    cost_so_far: dict[tuple[int, int], int] = {start: 0}
    counter = 0
    while frontier:
        _, _, current = heapq.heappop(frontier)
        if current == goal:
            break
        for neighbour in grid.neighbours(current):
            new_cost = cost_so_far[current] + 1
            if neighbour not in cost_so_far or new_cost < cost_so_far[neighbour]:
                cost_so_far[neighbour] = new_cost
                counter += 1
                heapq.heappush(frontier, (new_cost + heuristic(neighbour), counter, neighbour))
                came_from[neighbour] = current
    if goal not in came_from:
        return None
    path = [goal]
    while came_from[path[-1]] is not None:
        path.append(came_from[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def grid_edges_table(grid: GridMap, name: str = "grid_edges") -> Table:
    """Materialize the grid's passable adjacency as an engine table."""
    table = Table(name, Schema([Column("src"), Column("dst")]))
    table.insert_many(grid.edge_rows())
    return table


def reachability_plan(
    start_id: int,
    edges: str = "grid_edges",
    max_rounds: int | None = None,
    with_distance: bool = False,
) -> LogicalPlan:
    """All cells reachable from *start_id*: the transitive closure of the
    edges table seeded with one row, as a semi-naive Fixpoint plan.

    The default shape is one ``{node}`` row per reachable cell — plain set
    semantics, which terminates on cyclic grids and stays warm-restartable
    under insert-only edge churn.  With ``with_distance=True`` the rows
    carry a ``dist`` hop count and ``distinct_on=("node",)`` keeps the
    first (breadth-first = shortest) derivation; that variant trades warm
    restarts for distances.  ``max_rounds`` bounds the radius (``None`` =
    close fully).
    """
    if with_distance:
        schema = Schema([Column("node"), Column("dist")])
        base = Values(schema, [{"node": start_id, "dist": 0}])
        step = Project(
            Join(
                RecursiveRef(schema),
                TableScan(edges),
                BinaryOp("==", ColumnRef("node"), ColumnRef("src")),
                how="inner",
            ),
            {"node": ColumnRef("dst"), "dist": BinaryOp("+", ColumnRef("dist"), Literal(1))},
        )
        return Fixpoint(base, step, max_rounds=max_rounds, distinct_on=("node",))
    schema = Schema([Column("node")])
    base = Values(schema, [{"node": start_id}])
    step = Project(
        Join(
            RecursiveRef(schema),
            TableScan(edges),
            BinaryOp("==", ColumnRef("node"), ColumnRef("src")),
            how="inner",
        ),
        {"node": ColumnRef("dst")},
    )
    return Fixpoint(base, step, max_rounds=max_rounds)


def influence_plan(
    seeds: Iterable[tuple[int, float]], radius: int, edges: str = "grid_edges"
) -> LogicalPlan:
    """A multi-source influence map as a bounded Fixpoint plan.

    *seeds* are ``(cell_id, strength)`` sources; influence decays by one
    per hop and propagation stops after *radius* rounds.  First-derivation
    wins per cell, so each cell ends up with the strength contributed by
    its nearest source (ties broken by round order) — the standard
    influence-map shape used for threat/control overlays.
    """
    schema = Schema([Column("node"), Column("strength")])
    base = Values(schema, [{"node": node, "strength": strength} for node, strength in seeds])
    step = Project(
        Join(
            RecursiveRef(schema),
            TableScan(edges),
            BinaryOp("==", ColumnRef("node"), ColumnRef("src")),
            how="inner",
        ),
        {
            "node": ColumnRef("dst"),
            "strength": BinaryOp("-", ColumnRef("strength"), Literal(1)),
        },
    )
    return Fixpoint(base, step, max_rounds=radius, distinct_on=("node",))


class GridReachability:
    """Set-valued grid queries as cached engine plans over one edges table.

    Owns a private catalog + executor holding the grid's adjacency.  Plan
    objects are cached per query signature so repeated calls hit the
    executor's plan cache and the FixpointOp's version-vector result cache
    — a reachability query re-asked on an unchanged grid costs a cache
    probe, not a traversal (the win over re-running A*/BFS imperatively).

    Obstacle *clearing* is incremental: :meth:`clear_obstacles` inserts
    only the new edges, so the next query warm-restarts from the cached
    closure.  Arbitrary edits (adding obstacles) call :meth:`refresh`,
    which rebuilds the edge rows and forces full recomputation.
    """

    def __init__(self, grid: GridMap, config: EngineConfig | None = None):
        self.grid = grid
        self.catalog = Catalog()
        self.edges = grid_edges_table(grid)
        self.catalog.register_table(self.edges)
        self.executor = Executor(self.catalog, config or EngineConfig())
        self._plans: dict[tuple, LogicalPlan] = {}

    def _plan_for(self, key: tuple, build) -> LogicalPlan:
        plan = self._plans.get(key)
        if plan is None:
            plan = build()
            self._plans[key] = plan
        return plan

    def reachable_set(
        self, start: tuple[int, int], max_rounds: int | None = None
    ) -> set[tuple[int, int]]:
        """Every cell reachable from *start* (including itself, if passable)."""
        if not self.grid.passable(start):
            return set()
        start_id = self.grid.cell_id(start)
        plan = self._plan_for(
            ("reach", start_id, max_rounds),
            lambda: reachability_plan(start_id, max_rounds=max_rounds),
        )
        result = self.executor.execute(plan)
        return {self.grid.cell_at(row["node"]) for row in result.rows}

    def distance_map(self, start: tuple[int, int]) -> dict[tuple[int, int], int]:
        """Hop distance from *start* to every reachable cell."""
        if not self.grid.passable(start):
            return {}
        start_id = self.grid.cell_id(start)
        plan = self._plan_for(
            ("dist", start_id), lambda: reachability_plan(start_id, with_distance=True)
        )
        result = self.executor.execute(plan)
        return {self.grid.cell_at(row["node"]): row["dist"] for row in result.rows}

    def influence_map(
        self, seeds: Mapping[tuple[int, int], float], radius: int
    ) -> dict[tuple[int, int], float]:
        """Decayed multi-source influence over the grid, zero-clipped."""
        sources = tuple(
            sorted(
                (self.grid.cell_id(cell), strength)
                for cell, strength in seeds.items()
                if self.grid.passable(cell)
            )
        )
        if not sources:
            return {}
        plan = self._plan_for(
            ("influence", sources, radius), lambda: influence_plan(sources, radius)
        )
        result = self.executor.execute(plan)
        return {
            self.grid.cell_at(row["node"]): row["strength"]
            for row in result.rows
            if row["strength"] > 0
        }

    def clear_obstacles(self, cells: Iterable[tuple[int, int]]) -> int:
        """Unblock *cells* and insert just the edges they open up.

        Insert-only churn: cached closures warm-restart instead of
        recomputing from scratch.  Returns the number of edges added.
        """
        cells = list(cells)
        for cell in cells:
            self.grid.obstacles.discard(cell)
        rows = self.grid.edge_rows(cells)
        if rows:
            self.edges.insert_many(rows)
        return len(rows)

    def refresh(self) -> None:
        """Rebuild the edges table after arbitrary grid edits."""
        self.edges.clear()
        self.edges.insert_many(self.grid.edge_rows())

    def fixpoint_counters(self) -> dict[str, int]:
        """Aggregated FixpointOp counters for benchmarks and tests."""
        return {
            key: value
            for key, value in self.executor.fixpoint_report().items()
            if key != "operators"
        }


@dataclass(frozen=True)
class PathfindingConfig:
    """Configuration of the pathfinding update component."""

    class_name: str = "Unit"
    x_attribute: str = "x"
    y_attribute: str = "y"
    goal_x_attribute: str = "goal_x"
    goal_y_attribute: str = "goal_y"
    #: Optional effects scripts can set to retarget the goal this tick.
    goal_x_effect: str | None = "move_to_x"
    goal_y_effect: str | None = "move_to_y"
    #: Cells moved per tick.
    speed: int = 1
    #: World units per grid cell.
    cell_size: float = 1.0


class PathfindingComponent(UpdateComponent):
    """Owns position attributes and moves objects along A* paths."""

    name = "pathfinding"

    def __init__(
        self,
        grid: GridMap,
        config: PathfindingConfig | None = None,
        reachability: GridReachability | None = None,
    ):
        self.grid = grid
        self.config = config or PathfindingConfig()
        #: Optional closure oracle over the same grid.  When present,
        #: unreachable goals are rejected by one (cached) fixpoint query
        #: instead of letting A* flood the whole connected component every
        #: tick; reachable goals proceed to A* unchanged.
        self.reachability = reachability
        #: Cached paths per object id, invalidated when the goal changes.
        self._paths: dict[Any, tuple[tuple[int, int], list[tuple[int, int]]]] = {}
        #: Number of A* invocations (cache misses) — used by benchmarks.
        self.plans_computed = 0
        #: Unreachable goals rejected without running A*.
        self.unreachable_pruned = 0

    def owned_attributes(self) -> dict[str, set[str]]:
        cfg = self.config
        return {cfg.class_name: {cfg.x_attribute, cfg.y_attribute}}

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        cfg = self.config
        updates: list[StateUpdate] = []
        for row in state.objects(cfg.class_name):
            object_id = row["id"]
            current = self._cell(row[cfg.x_attribute], row[cfg.y_attribute])
            goal = self._goal_for(row, effects)
            if goal is None or goal == current:
                continue
            path = self._path_for(object_id, current, goal)
            if not path or len(path) < 2:
                continue
            steps = min(cfg.speed, len(path) - 1)
            target = path[steps]
            self._paths[object_id] = (goal, path[steps:])
            updates.append(
                StateUpdate(cfg.class_name, object_id, cfg.x_attribute, target[0] * cfg.cell_size)
            )
            updates.append(
                StateUpdate(cfg.class_name, object_id, cfg.y_attribute, target[1] * cfg.cell_size)
            )
        return updates

    # -- helpers ------------------------------------------------------------------------------

    def _cell(self, x: Any, y: Any) -> tuple[int, int]:
        size = self.config.cell_size
        return (int(float(x) // size), int(float(y) // size))

    def _goal_for(
        self, row: Mapping[str, Any], effects: CombinedEffects
    ) -> tuple[int, int] | None:
        cfg = self.config
        values = effects.for_object(cfg.class_name, row["id"])
        gx = values.get(cfg.goal_x_effect) if cfg.goal_x_effect else None
        gy = values.get(cfg.goal_y_effect) if cfg.goal_y_effect else None
        if gx is None:
            gx = row.get(cfg.goal_x_attribute)
        if gy is None:
            gy = row.get(cfg.goal_y_attribute)
        if gx is None or gy is None:
            return None
        return self._cell(gx, gy)

    def _path_for(
        self, object_id: Any, current: tuple[int, int], goal: tuple[int, int]
    ) -> list[tuple[int, int]] | None:
        cached = self._paths.get(object_id)
        if cached is not None:
            cached_goal, cached_path = cached
            if cached_goal == goal and cached_path and cached_path[0] == current:
                return cached_path
        if (
            self.reachability is not None
            and self.grid.passable(goal)
            and goal not in self.reachability.reachable_set(current)
        ):
            self.unreachable_pruned += 1
            return None
        path = astar(self.grid, current, goal)
        self.plans_computed += 1
        if path is not None:
            self._paths[object_id] = (goal, path)
        return path
