"""Grid pathfinding (A*) packaged as an update component (Section 2.2).

Pathfinding is the paper's second example of "AI planning" functionality
that lives outside SGL but owns state attributes.  The component owns the
position attributes of its class: each tick it reads the object's pathfind
goal (state attributes ``goal_x``/``goal_y`` by default, or ``move_to_x``/
``move_to_y`` effects when scripts steer dynamically), plans a path around
static obstacles on a uniform grid with A*, and advances the object by at
most ``speed`` cells along it.

The module also exposes :func:`astar` directly so tests and examples can
exercise the planner in isolation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.runtime.effects import CombinedEffects
from repro.runtime.updates import StateUpdate, UpdateComponent, WorldStateView

__all__ = ["GridMap", "astar", "PathfindingConfig", "PathfindingComponent"]


@dataclass
class GridMap:
    """A uniform grid world: dimensions plus a set of blocked cells."""

    width: int
    height: int
    obstacles: set[tuple[int, int]] = field(default_factory=set)

    def in_bounds(self, cell: tuple[int, int]) -> bool:
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def passable(self, cell: tuple[int, int]) -> bool:
        return self.in_bounds(cell) and cell not in self.obstacles

    def neighbours(self, cell: tuple[int, int]) -> Iterable[tuple[int, int]]:
        x, y = cell
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            candidate = (x + dx, y + dy)
            if self.passable(candidate):
                yield candidate

    def add_obstacle_rect(self, x0: int, y0: int, x1: int, y1: int) -> None:
        """Block every cell in the inclusive rectangle [x0..x1] × [y0..y1]."""
        for x in range(x0, x1 + 1):
            for y in range(y0, y1 + 1):
                self.obstacles.add((x, y))


def astar(
    grid: GridMap, start: tuple[int, int], goal: tuple[int, int]
) -> list[tuple[int, int]] | None:
    """A* over 4-connected grid cells with Manhattan-distance heuristic.

    Returns the list of cells from *start* to *goal* inclusive, or ``None``
    when the goal is unreachable.  If the goal cell itself is blocked the
    search targets the nearest passable neighbour of the goal.
    """
    if not grid.passable(start):
        return None
    if not grid.passable(goal):
        candidates = [c for c in grid.neighbours(goal)]
        if not candidates:
            return None
        goal = min(candidates, key=lambda c: abs(c[0] - start[0]) + abs(c[1] - start[1]))

    def heuristic(cell: tuple[int, int]) -> int:
        return abs(cell[0] - goal[0]) + abs(cell[1] - goal[1])

    frontier: list[tuple[int, int, tuple[int, int]]] = [(heuristic(start), 0, start)]
    came_from: dict[tuple[int, int], tuple[int, int] | None] = {start: None}
    cost_so_far: dict[tuple[int, int], int] = {start: 0}
    counter = 0
    while frontier:
        _, _, current = heapq.heappop(frontier)
        if current == goal:
            break
        for neighbour in grid.neighbours(current):
            new_cost = cost_so_far[current] + 1
            if neighbour not in cost_so_far or new_cost < cost_so_far[neighbour]:
                cost_so_far[neighbour] = new_cost
                counter += 1
                heapq.heappush(frontier, (new_cost + heuristic(neighbour), counter, neighbour))
                came_from[neighbour] = current
    if goal not in came_from:
        return None
    path = [goal]
    while came_from[path[-1]] is not None:
        path.append(came_from[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


@dataclass(frozen=True)
class PathfindingConfig:
    """Configuration of the pathfinding update component."""

    class_name: str = "Unit"
    x_attribute: str = "x"
    y_attribute: str = "y"
    goal_x_attribute: str = "goal_x"
    goal_y_attribute: str = "goal_y"
    #: Optional effects scripts can set to retarget the goal this tick.
    goal_x_effect: str | None = "move_to_x"
    goal_y_effect: str | None = "move_to_y"
    #: Cells moved per tick.
    speed: int = 1
    #: World units per grid cell.
    cell_size: float = 1.0


class PathfindingComponent(UpdateComponent):
    """Owns position attributes and moves objects along A* paths."""

    name = "pathfinding"

    def __init__(self, grid: GridMap, config: PathfindingConfig | None = None):
        self.grid = grid
        self.config = config or PathfindingConfig()
        #: Cached paths per object id, invalidated when the goal changes.
        self._paths: dict[Any, tuple[tuple[int, int], list[tuple[int, int]]]] = {}
        #: Number of A* invocations (cache misses) — used by benchmarks.
        self.plans_computed = 0

    def owned_attributes(self) -> dict[str, set[str]]:
        cfg = self.config
        return {cfg.class_name: {cfg.x_attribute, cfg.y_attribute}}

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        cfg = self.config
        updates: list[StateUpdate] = []
        for row in state.objects(cfg.class_name):
            object_id = row["id"]
            current = self._cell(row[cfg.x_attribute], row[cfg.y_attribute])
            goal = self._goal_for(row, effects)
            if goal is None or goal == current:
                continue
            path = self._path_for(object_id, current, goal)
            if not path or len(path) < 2:
                continue
            steps = min(cfg.speed, len(path) - 1)
            target = path[steps]
            self._paths[object_id] = (goal, path[steps:])
            updates.append(
                StateUpdate(cfg.class_name, object_id, cfg.x_attribute, target[0] * cfg.cell_size)
            )
            updates.append(
                StateUpdate(cfg.class_name, object_id, cfg.y_attribute, target[1] * cfg.cell_size)
            )
        return updates

    # -- helpers ------------------------------------------------------------------------------

    def _cell(self, x: Any, y: Any) -> tuple[int, int]:
        size = self.config.cell_size
        return (int(float(x) // size), int(float(y) // size))

    def _goal_for(
        self, row: Mapping[str, Any], effects: CombinedEffects
    ) -> tuple[int, int] | None:
        cfg = self.config
        values = effects.for_object(cfg.class_name, row["id"])
        gx = values.get(cfg.goal_x_effect) if cfg.goal_x_effect else None
        gy = values.get(cfg.goal_y_effect) if cfg.goal_y_effect else None
        if gx is None:
            gx = row.get(cfg.goal_x_attribute)
        if gy is None:
            gy = row.get(cfg.goal_y_attribute)
        if gx is None or gy is None:
            return None
        return self._cell(gx, gy)

    def _path_for(
        self, object_id: Any, current: tuple[int, int], goal: tuple[int, int]
    ) -> list[tuple[int, int]] | None:
        cached = self._paths.get(object_id)
        if cached is not None:
            cached_goal, cached_path = cached
            if cached_goal == goal and cached_path and cached_path[0] == current:
                return cached_path
        path = astar(self.grid, current, goal)
        self.plans_computed += 1
        if path is not None:
            self._paths[object_id] = (goal, path)
        return path
