"""Multi-tick script scheduling (Section 3.2).

``waitNextTick`` gives scripts an implicit program counter.  The scheduler
is the update component that owns those counters: after the effect step it
advances every object's counter to the next segment (wrapping at the end),
and it exposes :meth:`MultiTickScheduler.reset` so reactive handlers can
interrupt a multi-tick behaviour and restart it — the paper's
"resumable exception" analogy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.runtime.effects import CombinedEffects
from repro.runtime.updates import StateUpdate, UpdateComponent, WorldStateView
from repro.sgl.multitick import SegmentedScript

__all__ = ["MultiTickScheduler"]


@dataclass
class _ScheduledScript:
    segmented: SegmentedScript
    class_name: str
    pc_attribute: str


class MultiTickScheduler(UpdateComponent):
    """Owns the implicit program-counter attributes of multi-tick scripts."""

    name = "multi-tick-scheduler"

    def __init__(self) -> None:
        self._scripts: dict[str, _ScheduledScript] = {}
        #: (class, object id) pairs whose counters must reset to 0 this tick
        #: (set by reactive interrupts), script name -> set of object ids.
        self._pending_resets: dict[str, set[Any]] = {}

    # -- registration ------------------------------------------------------------------------

    def register(self, segmented: SegmentedScript, class_name: str) -> None:
        """Track a multi-tick script; single-segment scripts are ignored."""
        if not segmented.is_multi_tick:
            return
        self._scripts[segmented.script.name] = _ScheduledScript(
            segmented=segmented,
            class_name=class_name,
            pc_attribute=segmented.pc_variable,
        )

    @property
    def script_names(self) -> list[str]:
        return sorted(self._scripts)

    def pc_attribute(self, script_name: str) -> str:
        return self._scripts[script_name].pc_attribute

    # -- interrupts -----------------------------------------------------------------------------

    def reset(self, script_name: str, object_id: Any) -> None:
        """Reset one object's program counter to segment 0 at the next update.

        Used by reactive handlers to interrupt an in-progress multi-tick
        behaviour (Section 3.2's interruptible intentions).
        """
        if script_name in self._scripts:
            self._pending_resets.setdefault(script_name, set()).add(object_id)

    # -- update component protocol -------------------------------------------------------------------

    def owned_attributes(self) -> dict[str, set[str]]:
        owned: dict[str, set[str]] = {}
        for scheduled in self._scripts.values():
            owned.setdefault(scheduled.class_name, set()).add(scheduled.pc_attribute)
        return owned

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        updates: list[StateUpdate] = []
        for script_name, scheduled in self._scripts.items():
            resets = self._pending_resets.get(script_name, set())
            for row in state.objects(scheduled.class_name):
                current = int(row.get(scheduled.pc_attribute, 0) or 0)
                if row["id"] in resets:
                    new_pc = 0
                else:
                    new_pc = scheduled.segmented.next_pc(current)
                if new_pc != current:
                    updates.append(
                        StateUpdate(
                            scheduled.class_name, row["id"], scheduled.pc_attribute, new_pc
                        )
                    )
        self._pending_resets = {}
        return updates
