"""The transaction engine (Section 3.1).

Scripts mark regions ``atomic`` and attach constraints over state
attributes (``account >= 0``).  During the update step the engine "is then
responsible for choosing a subset of the transactions issued during the
tick that do not violate any constraints.  The remaining transactions
abort, and their effect assignments are not applied."

The engine fits the update-component model: it owns the *constrained*
attributes it updates.  Non-transactional effect assignments to those
attributes are applied first (they always succeed, combined with the
declared combinators); transaction requests are then admitted greedily in a
deterministic order, each one validated against the tentative post-update
state including all previously admitted transactions, which prevents the
classic duplication ("duping") and negative-balance bugs the paper calls
out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.runtime.effects import CombinedEffects, EffectStore
from repro.runtime.updates import StateUpdate, UpdateComponent, WorldStateView
from repro.sgl.ast_nodes import ClassDecl, SglExpression
from repro.sgl.ir import EffectAssignment, TransactionRequest

__all__ = ["TransactionOutcome", "TransactionReport", "TransactionEngine"]

#: Signature of a constraint evaluator: (constraint, actor class, actor row
#: overlayed with tentative values, tentative world view) -> bool.
ConstraintEvaluator = Callable[[SglExpression, str, Mapping[str, Any]], bool]


@dataclass(frozen=True)
class TransactionOutcome:
    """The fate of one transaction request."""

    request: TransactionRequest
    committed: bool
    reason: str = ""


@dataclass
class TransactionReport:
    """All outcomes of one tick's transaction processing."""

    outcomes: list[TransactionOutcome] = field(default_factory=list)

    @property
    def committed(self) -> list[TransactionOutcome]:
        return [o for o in self.outcomes if o.committed]

    @property
    def aborted(self) -> list[TransactionOutcome]:
        return [o for o in self.outcomes if not o.committed]

    @property
    def commit_count(self) -> int:
        return len(self.committed)

    @property
    def abort_count(self) -> int:
        return len(self.aborted)

    @property
    def abort_rate(self) -> float:
        total = len(self.outcomes)
        return 0.0 if total == 0 else self.abort_count / total


class _TentativeState:
    """A copy-on-write overlay of the constrained attributes."""

    def __init__(self, state: WorldStateView, classes: Mapping[str, ClassDecl]):
        self._state = state
        self._overlay: dict[tuple[str, Any], dict[str, Any]] = {}
        self._classes = classes

    def value(self, class_name: str, object_id: Any, attribute: str) -> Any:
        overlay = self._overlay.get((class_name, object_id))
        if overlay is not None and attribute in overlay:
            return overlay[attribute]
        row = self._state.get_object(class_name, object_id)
        return None if row is None else row.get(attribute)

    def row(self, class_name: str, object_id: Any) -> dict[str, Any] | None:
        base = self._state.get_object(class_name, object_id)
        if base is None:
            return None
        merged = dict(base)
        merged.update(self._overlay.get((class_name, object_id), {}))
        return merged

    def set(self, class_name: str, object_id: Any, attribute: str, value: Any) -> None:
        self._overlay.setdefault((class_name, object_id), {})[attribute] = value

    def snapshot(self) -> dict[tuple[str, Any], dict[str, Any]]:
        return {key: dict(values) for key, values in self._overlay.items()}

    def restore(self, snapshot: dict[tuple[str, Any], dict[str, Any]]) -> None:
        self._overlay = {key: dict(values) for key, values in snapshot.items()}

    def updates(self) -> list[StateUpdate]:
        out: list[StateUpdate] = []
        for (class_name, object_id), values in self._overlay.items():
            for attribute, value in values.items():
                out.append(StateUpdate(class_name, object_id, attribute, value))
        return out


class TransactionEngine(UpdateComponent):
    """Owns constrained attributes and admits/aborts atomic blocks.

    ``owned`` maps class name -> the constrained attributes this engine
    updates.  It accepts either a set of attribute names (the effect
    variable is assumed to have the same name) or a mapping from the effect
    variable scripts write to the state attribute it updates — state and
    effect names are disjoint in SGL, so resource exchanges typically write
    ``gold_delta`` effects that update the ``gold`` attribute.
    ``apply`` controls how an effect value modifies an owned attribute; the
    default is *delta* semantics (``new = old + value``), the natural
    reading for resources like gold, health or stock.
    ``constraint_evaluator`` is supplied by the game world and evaluates a
    raw SGL constraint expression against a tentative state row.
    """

    name = "transaction-engine"

    def __init__(
        self,
        owned: Mapping[str, "set[str] | Mapping[str, str]"],
        classes: Mapping[str, ClassDecl],
        constraint_evaluator: ConstraintEvaluator | None = None,
        apply: Callable[[Any, Any], Any] | None = None,
    ):
        #: class -> {effect name -> state attribute}
        self._effect_map: dict[str, dict[str, str]] = {}
        for class_name, spec in owned.items():
            if isinstance(spec, Mapping):
                self._effect_map[class_name] = dict(spec)
            else:
                self._effect_map[class_name] = {attr: attr for attr in spec}
        self._classes = dict(classes)
        self._constraint_evaluator = constraint_evaluator
        self._apply = apply or (lambda old, delta: (old or 0) + (delta or 0))
        self._pending: list[TransactionRequest] = []
        #: Report for the most recent tick.
        self.last_report = TransactionReport()

    # -- wiring ---------------------------------------------------------------------------------

    def owned_attributes(self) -> dict[str, set[str]]:
        return {
            cls: set(mapping.values()) for cls, mapping in self._effect_map.items()
        }

    def set_constraint_evaluator(self, evaluator: ConstraintEvaluator) -> None:
        self._constraint_evaluator = evaluator

    def submit(self, requests: Sequence[TransactionRequest]) -> None:
        """Queue transaction requests issued during the current tick."""
        self._pending.extend(requests)

    # -- update computation -----------------------------------------------------------------------

    def compute_updates(
        self, state: WorldStateView, effects: CombinedEffects
    ) -> list[StateUpdate]:
        tentative = _TentativeState(state, self._classes)
        self._apply_plain_effects(state, effects, tentative)
        report = TransactionReport()
        for request in self._ordered(self._pending):
            snapshot = tentative.snapshot()
            self._apply_assignments(request.assignments, tentative)
            ok, reason = self._check_constraints(request, tentative)
            if ok:
                report.outcomes.append(TransactionOutcome(request, True))
            else:
                tentative.restore(snapshot)
                report.outcomes.append(TransactionOutcome(request, False, reason))
        self._pending = []
        self.last_report = report
        return tentative.updates()

    # -- internals -----------------------------------------------------------------------------------

    def _owns_effect(self, class_name: str, effect: str) -> bool:
        return effect in self._effect_map.get(class_name, ())

    def _attribute_for(self, class_name: str, effect: str) -> str:
        return self._effect_map[class_name][effect]

    def _apply_plain_effects(
        self, state: WorldStateView, effects: CombinedEffects, tentative: _TentativeState
    ) -> None:
        """Non-transactional effects on owned attributes always apply."""
        for (class_name, object_id), values in effects.values.items():
            for effect, value in values.items():
                if not self._owns_effect(class_name, effect):
                    continue
                attribute = self._attribute_for(class_name, effect)
                old = tentative.value(class_name, object_id, attribute)
                tentative.set(class_name, object_id, attribute, self._apply(old, value))

    def _apply_assignments(
        self, assignments: Sequence[EffectAssignment], tentative: _TentativeState
    ) -> None:
        # Combine a single transaction's own writes with the declared
        # combinators first (a transaction may assign the same effect twice),
        # then apply the combined value to the tentative state.
        store = EffectStore(self._classes)
        store.add_all(a for a in assignments if self._owns_effect(a.class_name, a.effect))
        combined = store.combine()
        for (class_name, object_id), values in combined.values.items():
            for effect, value in values.items():
                attribute = self._attribute_for(class_name, effect)
                old = tentative.value(class_name, object_id, attribute)
                tentative.set(class_name, object_id, attribute, self._apply(old, value))

    def _check_constraints(
        self, request: TransactionRequest, tentative: _TentativeState
    ) -> tuple[bool, str]:
        if not request.constraints:
            return True, ""
        if self._constraint_evaluator is None:
            return True, ""
        actor_row = tentative.row(request.actor_class, request.actor_id)
        if actor_row is None:
            return False, f"actor {request.actor_id!r} no longer exists"
        # Constraints must also hold for every object the transaction wrote.
        rows_to_check: list[tuple[str, Mapping[str, Any]]] = [(request.actor_class, actor_row)]
        seen = {(request.actor_class, request.actor_id)}
        for assignment in request.assignments:
            key = (assignment.class_name, assignment.target_id)
            if key in seen or not self._owns_effect(assignment.class_name, assignment.effect):
                continue
            seen.add(key)
            row = tentative.row(assignment.class_name, assignment.target_id)
            if row is not None and assignment.class_name == request.actor_class:
                rows_to_check.append((assignment.class_name, row))
        for constraint in request.constraints:
            for class_name, row in rows_to_check:
                try:
                    ok = self._constraint_evaluator(constraint, class_name, row)
                except Exception as exc:
                    return False, f"constraint raised {exc!r}"
                if not ok:
                    return False, f"constraint {constraint!r} violated"
        return True, ""

    @staticmethod
    def _ordered(requests: Sequence[TransactionRequest]) -> list[TransactionRequest]:
        """Deterministic admission order: by class, actor id, then block."""

        def key(request: TransactionRequest):
            return (request.actor_class, repr(request.actor_id), request.block_index)

        return sorted(requests, key=key)
