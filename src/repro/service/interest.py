"""Spatial interest management: area-of-interest subscription routing.

An AOI subscription is the standing query "every row of table *T* whose
spatial columns lie inside an axis-aligned box" — the box either fixed, or
centered on an *observer* row (fog of war: a unit sees what is around it)
and moving with it.  Thousands of such subscriptions over one table is the
paper's "many concurrent players" workload, and re-running each box query
per tick is exactly the fan-out cost the service exists to avoid.

:class:`InterestManager` maintains, per (table, spatial columns), a
uniform cell grid **over subscriptions** (which boxes cover which cells —
the dual of :class:`~repro.engine.indexes.grid_index.GridIndex`, which
buckets rows).  Each flush it

1. polls the table's shared change cursor **once** (not per subscriber),
2. routes every changed row through the cell grid: only subscriptions
   registered on the row's old or new cell are touched, each re-checking
   the exact box predicate and emitting enter/leave/update deltas against
   its keyed result cache,
3. re-fetches only the subscriptions whose observer moved, using the
   table's registered spatial index (:class:`GridIndex` / ``SortedIndex``
   via :meth:`Table.find_index_covering`) to read the new box and diffing
   it against the cached result — a moved observer costs one index range
   probe, not a table scan.

A lost cursor delta (change-log overflow or reset) downgrades the flush to
per-subscription resync snapshots, re-anchoring every stream — the same
snapshot-resync rule the query groups follow.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterable, Mapping, Sequence

from repro.engine.errors import ExecutionError
from repro.engine.indexes.grid_index import GridIndex
from repro.engine.table import ChangeCursor, Table
from repro.service.protocol import Delta, Snapshot, SubscriptionMessage, freeze_rows

__all__ = ["AOISubscription", "InterestManager"]

Cell = tuple[int, ...]


class AOISubscription:
    """One area-of-interest subscription over a spatial table."""

    def __init__(
        self,
        subscription_id: int,
        session_id: int,
        dims: tuple[str, ...],
        radius: tuple[float, ...],
        center: tuple[float, ...] | None = None,
        observer_table: Table | None = None,
        observer_key: Any = None,
    ):
        self.subscription_id = subscription_id
        self.session_id = session_id
        self.dims = dims
        self.radius = radius
        #: Fixed box center; ``None`` for observer-following subscriptions.
        self.center = center
        self.observer_table = observer_table
        self.observer_key = observer_key
        #: Observer position at the last flush (``None`` = no/gone observer).
        self.observer_pos: tuple[float, ...] | None = None
        #: Keyed result cache: row key → row copy currently in the AOI.
        self.current: dict[Any, dict[str, Any]] = {}
        #: Grid cells the box currently covers (registered in the manager).
        self.cells: set[Cell] = set()

    def box(self) -> tuple[tuple[float, float], ...] | None:
        """The current axis-aligned box, or ``None`` (empty result)."""
        center = self.center if self.center is not None else self.observer_pos
        if center is None:
            return None
        return tuple((c - r, c + r) for c, r in zip(center, self.radius))

    def contains(self, row: Mapping[str, Any]) -> bool:
        box = self.box()
        if box is None:
            return False
        for dim, (low, high) in zip(self.dims, box):
            value = row.get(dim)
            if value is None or not (low <= value <= high):
                return False
        return True


class InterestManager:
    """Routes one table's row changes to the AOI subscriptions they affect."""

    def __init__(self, table: Table, dims: Sequence[str], cell_size: float | None = None):
        if table.key is None:
            raise ExecutionError(
                f"AOI subscriptions need a keyed table; {table.name!r} has no key column"
            )
        self.table = table
        self.dims = tuple(table.schema.resolve(d) for d in dims)
        self.key_column = table.schema.resolve(table.key)
        self.cell_size = float(cell_size) if cell_size else self._default_cell_size()
        self._cells: dict[Cell, set[AOISubscription]] = {}
        self._subs: dict[int, AOISubscription] = {}
        self._cursor: ChangeCursor | None = None
        #: Flush statistics (reset each flush; read by the manager).
        self.last_stats: dict[str, int] = {}

    def _default_cell_size(self) -> float:
        """Align with an existing :class:`GridIndex` on the same columns so
        row cells and subscription cells coincide; else a sane default."""
        for index in self.table.indexes.values():
            if isinstance(index, GridIndex) and set(index.columns) >= set(self.dims):
                return index.cell_size
        return 16.0

    # -- subscription lifecycle -------------------------------------------------------

    def subscribe(self, sub: AOISubscription) -> Snapshot:
        """Register *sub* and return its initial snapshot (current box rows)."""
        if self._cursor is None:
            self._cursor = self.table.open_cursor()
        if sub.observer_table is not None:
            sub.observer_pos = self._observer_position(sub)
        rows = self._fetch_box(sub.box())
        sub.current = {row[self.key_column]: dict(row) for row in rows}
        self._register_cells(sub)
        self._subs[sub.subscription_id] = sub
        return Snapshot(
            subscription_id=sub.subscription_id,
            tick=-1,
            rows=freeze_rows(sub.current.values()),
        )

    def unsubscribe(self, subscription_id: int) -> bool:
        sub = self._subs.pop(subscription_id, None)
        if sub is None:
            return False
        for cell in sub.cells:
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(sub)
                if not bucket:
                    del self._cells[cell]
        return True

    def __len__(self) -> int:
        return len(self._subs)

    def subscription(self, subscription_id: int) -> AOISubscription | None:
        return self._subs.get(subscription_id)

    # -- geometry ---------------------------------------------------------------------

    def _cell_of(self, row: Mapping[str, Any]) -> Cell | None:
        coords = []
        for dim in self.dims:
            value = row.get(dim)
            if value is None:
                return None
            coords.append(int(float(value) // self.cell_size))
        return tuple(coords)

    def _cells_of_box(self, box: tuple[tuple[float, float], ...] | None) -> set[Cell]:
        if box is None:
            return set()
        ranges = []
        for low, high in box:
            lo = int(low // self.cell_size)
            hi = int(high // self.cell_size)
            ranges.append(range(lo, hi + 1))
        return set(product(*ranges))

    def _register_cells(self, sub: AOISubscription) -> None:
        new_cells = self._cells_of_box(sub.box())
        for cell in sub.cells - new_cells:
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(sub)
                if not bucket:
                    del self._cells[cell]
        for cell in new_cells - sub.cells:
            self._cells.setdefault(cell, set()).add(sub)
        sub.cells = new_cells

    def _observer_position(self, sub: AOISubscription) -> tuple[float, ...] | None:
        assert sub.observer_table is not None
        row = sub.observer_table.get_by_key(sub.observer_key)
        if row is None:
            return None
        coords = []
        for dim in sub.dims:
            value = row.get(dim)
            if value is None:
                return None
            coords.append(float(value))
        return tuple(coords)

    def _fetch_box(
        self, box: tuple[tuple[float, float], ...] | None
    ) -> list[dict[str, Any]]:
        """Rows currently inside *box* — via a registered spatial index when
        one covers the dimensions, else a table scan; exact bounds are
        always re-checked (indexes return cell-granularity candidates)."""
        if box is None:
            return []
        covering = self.table.find_index_covering(self.dims)
        if covering is not None:
            _, index = covering
            bounds_by_column = dict(zip(self.dims, box))
            bounds = [bounds_by_column.get(c, (None, None)) for c in index.columns]
            candidates: Iterable[dict[str, Any]] = (
                self.table.get(rid) for rid in index.range_search(bounds)
            )
        else:
            candidates = self.table.rows()
        out = []
        for row in candidates:
            ok = True
            for dim, (low, high) in zip(self.dims, box):
                value = row.get(dim)
                if value is None or not (low <= value <= high):
                    ok = False
                    break
            if ok:
                out.append(row)
        return out

    # -- the flush phase --------------------------------------------------------------

    def flush(self, tick: int) -> list[SubscriptionMessage]:
        """Compute this tick's messages for every AOI subscription.

        Outbox-overflow recovery is not handled here: a refused delta is
        converted to a ``resync:outbox`` snapshot by the manager in the
        same flush, straight from the subscription's ``current`` cache.
        """
        stats = {"routed_rows": 0, "touched_subs": 0, "refetched_subs": 0, "resyncs": 0}
        self.last_stats = stats
        if not self._subs:
            return []
        assert self._cursor is not None
        changed = self._cursor.poll()
        messages: list[SubscriptionMessage] = []

        if changed is None:
            # Lost delta: every stream re-anchors from a fresh snapshot.
            for sub in self._subs.values():
                messages.append(self._resync(sub, tick, "resync:change-log"))
            stats["resyncs"] = len(messages)
            return messages

        # Observer moves first: their boxes are stale, so routing skips them
        # and they re-fetch against the post-tick table below.
        refetch: list[AOISubscription] = []
        route_skip: set[int] = set()
        for sub in self._subs.values():
            if sub.observer_table is not None:
                pos = self._observer_position(sub)
                if pos != sub.observer_pos:
                    sub.observer_pos = pos
                    refetch.append(sub)
                    route_skip.add(sub.subscription_id)

        added, removed = changed
        added_by_key = {row[self.key_column]: row for row in added}
        removed_by_key = {row[self.key_column]: row for row in removed}
        pending: dict[int, tuple[list, list]] = {}
        for key in added_by_key.keys() | removed_by_key.keys():
            old = removed_by_key.get(key)
            new = added_by_key.get(key)
            stats["routed_rows"] += 1
            affected: set[AOISubscription] = set()
            for row in (old, new):
                if row is None:
                    continue
                cell = self._cell_of(row)
                if cell is not None:
                    affected |= self._cells.get(cell, set())
            for sub in affected:
                if sub.subscription_id in route_skip:
                    continue
                was_in = key in sub.current
                now_in = new is not None and sub.contains(new)
                if not was_in and not now_in:
                    continue
                adds, removes = pending.setdefault(sub.subscription_id, ([], []))
                if was_in:
                    removes.append(sub.current.pop(key))
                if now_in:
                    copy = dict(new)
                    sub.current[key] = copy
                    adds.append(dict(copy))

        for sub_id, (adds, removes) in pending.items():
            stats["touched_subs"] += 1
            messages.append(
                Delta(
                    subscription_id=sub_id,
                    tick=tick,
                    added=tuple(adds),
                    removed=tuple(removes),
                )
            )

        # Moved observers: one index probe of the new box, diffed against
        # the cached result (the removes carry the exact cached values the
        # client holds, keeping the multiset contract intact).
        for sub in refetch:
            stats["refetched_subs"] += 1
            fresh = {row[self.key_column]: dict(row) for row in self._fetch_box(sub.box())}
            adds = [dict(row) for key, row in fresh.items() if key not in sub.current]
            removes = [row for key, row in sub.current.items() if key not in fresh]
            # Rows present in both but updated this tick were already
            # consumed by nobody (routing skipped this sub) — diff values.
            for key, row in fresh.items():
                stale = sub.current.get(key)
                if stale is not None and stale != row:
                    removes.append(stale)
                    adds.append(dict(row))
            sub.current = fresh
            self._register_cells(sub)
            if adds or removes:
                messages.append(
                    Delta(
                        subscription_id=sub.subscription_id,
                        tick=tick,
                        added=tuple(adds),
                        removed=tuple(removes),
                    )
                )
        return messages

    def _resync(self, sub: AOISubscription, tick: int, reason: str) -> Snapshot:
        if sub.observer_table is not None:
            sub.observer_pos = self._observer_position(sub)
        rows = self._fetch_box(sub.box())
        sub.current = {row[self.key_column]: dict(row) for row in rows}
        self._register_cells(sub)
        return Snapshot(
            subscription_id=sub.subscription_id,
            tick=tick,
            rows=freeze_rows(sub.current.values()),
            reason=reason,
        )
