"""The live subscription service: standing queries served as delta streams.

Clients register **standing queries** over the game state — compiled query
plans, filtered table scans, or spatial area-of-interest boxes — and
receive a **snapshot-then-delta stream**: one initial materialized result,
then per-tick signed row deltas computed *once per distinct query* and
fanned out to every subscriber, instead of re-running each client's query
per tick.  See :mod:`repro.service.subscriptions` for the architecture and
``docs/ARCHITECTURE.md`` ("Subscription service") for the protocol.
"""

from repro.service.interest import AOISubscription, InterestManager
from repro.service.outbox import Outbox, Session
from repro.service.protocol import (
    Delta,
    ResultSet,
    Snapshot,
    SubscriptionMessage,
    decode_message,
    encode_message,
)
from repro.service.subscriptions import StandingQueryGroup, SubscriptionManager

__all__ = [
    "AOISubscription",
    "InterestManager",
    "Outbox",
    "Session",
    "Snapshot",
    "Delta",
    "SubscriptionMessage",
    "ResultSet",
    "StandingQueryGroup",
    "SubscriptionManager",
    "decode_message",
    "encode_message",
]
