"""Asyncio TCP transport for the subscription service (JSON lines).

One :class:`SubscriptionServer` owns a :class:`GameWorld` and its
:class:`~repro.service.subscriptions.SubscriptionManager`.  Clients connect
over TCP and exchange newline-delimited JSON:

Client → server requests::

    {"op": "subscribe_table", "table": "UNIT", "filter": [["player", "==", 1]]}
    {"op": "subscribe_aoi", "table": "UNIT", "radius": 12, "dims": ["x", "y"],
     "observer_id": 3}                      # or "center": [50, 50]
    {"op": "unsubscribe", "id": 7}
    {"op": "ping"}

Server → client responses and stream messages::

    {"type": "subscribed", "id": 7}
    {"type": "snapshot", "id": 7, "tick": 41, "reason": "subscribe", "rows": [...]}
    {"type": "delta", "id": 7, "tick": 42, "added": [...], "removed": [...]}
    {"type": "error", "error": "..."} / {"type": "pong", "tick": 42}

The server drives the world: :meth:`step` runs one tick (whose flush phase
computes every delta once) and then drains each session's outbox to its
socket.  :meth:`run` loops ``step`` at a fixed interval for live demos;
tests and benchmarks call ``step`` directly for determinism.  A slow
client never blocks the tick loop — backpressure is absorbed by the
session's bounded outbox, which degrades to snapshot-resync (see
:mod:`repro.service.outbox`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.engine.expressions import BinaryOp, ColumnRef, Expression, Literal
from repro.service.protocol import ResultSet, decode_message, encode_message
from repro.service.subscriptions import SubscriptionManager

__all__ = ["SubscriptionServer", "SubscriptionClient"]

_FILTER_OPS = {"==", "!=", "<", "<=", ">", ">="}


def _compile_filter(clauses: Any) -> Expression | None:
    """``[["player", "==", 1], ...]`` → an AND-ed predicate expression."""
    if not clauses:
        return None
    predicate: Expression | None = None
    for clause in clauses:
        column, op, value = clause
        if op not in _FILTER_OPS:
            raise ValueError(f"unsupported filter operator {op!r}")
        term = BinaryOp(op, ColumnRef(str(column)), Literal(value))
        predicate = term if predicate is None else BinaryOp("&&", predicate, term)
    return predicate


class SubscriptionServer:
    """Serve a world's subscription streams over TCP."""

    def __init__(
        self,
        world: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_server: Any | None = None,
    ):
        self.world = world
        self.manager: SubscriptionManager = world.subscriptions
        self.host = host
        self.port = port
        #: Optional :class:`~repro.obs.http.MetricsServer` started/stopped
        #: alongside the TCP server so one event loop serves both the
        #: subscription streams and the ``/metrics`` scrape endpoint.
        self.metrics_server = metrics_server
        self._server: asyncio.base_events.Server | None = None
        #: session id → (session, writer); populated per connection.
        self._connections: dict[int, tuple[Any, asyncio.StreamWriter]] = {}

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_server is not None:
            await self.metrics_server.start()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        for session_id in list(self._connections):
            self._drop_connection(session_id)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self.metrics_server is not None:
            await self.metrics_server.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def step(self) -> None:
        """Run one world tick (computing all deltas) and push outboxes."""
        self.world.tick()
        await self._drain_outboxes()

    async def run(self, tick_interval: float = 0.05, ticks: int | None = None) -> None:
        """Tick the world at *tick_interval* until cancelled (or *ticks*)."""
        done = 0
        while ticks is None or done < ticks:
            await self.step()
            done += 1
            await asyncio.sleep(tick_interval)

    async def _drain_outboxes(self) -> None:
        for session_id, (session, writer) in list(self._connections.items()):
            messages = session.take()
            if not messages:
                continue
            try:
                for message in messages:
                    writer.write(encode_message(message).encode() + b"\n")
                await writer.drain()
            except (ConnectionError, RuntimeError):
                self._drop_connection(session_id)

    def _drop_connection(self, session_id: int) -> None:
        record = self._connections.pop(session_id, None)
        if record is None:
            return
        session, writer = record
        self.manager.disconnect(session)
        writer.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self.manager.connect()
        self._connections[session.session_id] = (session, writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = self._handle_request(session, json.loads(line))
                except Exception as exc:  # protocol errors must not kill the server
                    response = {"type": "error", "error": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                # Initial snapshots are enqueued by subscribe; deliver them
                # immediately so clients see snapshot-then-delta ordering.
                for message in session.take():
                    writer.write(encode_message(message).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            # Peer vanished or the loop is shutting down: drop the session.
            pass
        finally:
            self._drop_connection(session.session_id)

    def _handle_request(self, session: Any, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "subscribe_table":
            sub_id = self.manager.subscribe_table(
                session,
                request["table"],
                predicate=_compile_filter(request.get("filter")),
            )
            return {"type": "subscribed", "id": sub_id}
        if op == "subscribe_aoi":
            sub_id = self.manager.subscribe_aoi(
                session,
                request["table"],
                radius=request["radius"],
                dims=tuple(request.get("dims", ("x", "y"))),
                center=request.get("center"),
                observer_id=request.get("observer_id"),
                observer_table=request.get("observer_table"),
            )
            return {"type": "subscribed", "id": sub_id}
        if op == "unsubscribe":
            ok = self.manager.unsubscribe(session, int(request["id"]))
            return {"type": "unsubscribed", "id": int(request["id"]), "ok": ok}
        if op == "ping":
            return {"type": "pong", "tick": self.world.tick_count}
        raise ValueError(f"unknown op {op!r}")


class SubscriptionClient:
    """A minimal asyncio client maintaining one ResultSet per subscription."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: subscription id → client-side materialized result.
        self.results: dict[int, ResultSet] = {}

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None

    async def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            message = json.loads(line)
            if "type" in message and message["type"] in {"snapshot", "delta"}:
                self._apply_line(line)
                continue
            if message.get("type") == "error":
                raise RuntimeError(message["error"])
            return message

    def _apply_line(self, line: bytes | str) -> None:
        message = decode_message(line if isinstance(line, str) else line.decode())
        self.results.setdefault(message.subscription_id, ResultSet()).apply(message)

    async def subscribe_table(self, table: str, filter: list | None = None) -> int:
        response = await self._request(
            {"op": "subscribe_table", "table": table, "filter": filter or []}
        )
        sub_id = int(response["id"])
        self.results.setdefault(sub_id, ResultSet())
        await self.pump()  # collect the initial snapshot
        return sub_id

    async def subscribe_aoi(self, table: str, radius: float, **kwargs: Any) -> int:
        response = await self._request(
            {"op": "subscribe_aoi", "table": table, "radius": radius, **kwargs}
        )
        sub_id = int(response["id"])
        self.results.setdefault(sub_id, ResultSet())
        await self.pump()
        return sub_id

    async def pump(self, timeout: float = 0.25) -> int:
        """Apply every stream message currently readable; returns how many."""
        assert self._reader is not None
        applied = 0
        while True:
            try:
                line = await asyncio.wait_for(self._reader.readline(), timeout)
            except asyncio.TimeoutError:
                return applied
            if not line:
                return applied
            payload = json.loads(line)
            if payload.get("type") in {"snapshot", "delta"}:
                self._apply_line(line)
                applied += 1

    def rows(self, subscription_id: int) -> list[dict[str, Any]]:
        return self.results[subscription_id].rows()
