"""Standing-query subscriptions: compute deltas once, fan out to many.

The paper frames client views as queries over game state; serving "many
concurrent players" then becomes a query-processing problem.  The naive
serving strategy — re-run every client's query every tick — does O(clients)
query executions per tick.  This module does O(distinct queries) delta
computations instead:

* **Dedup.**  Clients registering *equivalent* standing queries (same
  canonical fingerprint, via :func:`repro.engine.optimizer.mqo.fingerprint_plan`
  — the PR-4 subplan fingerprints, so differently-named scan aliases still
  match) share one :class:`StandingQueryGroup`; its per-tick delta is
  computed once and fanned out, with positional alias renames applied per
  subscriber exactly like ``SharedScan`` consumers.

* **Delta sources.**  A group whose plan is a filter over one table
  (``Select*``/``TableScan``) streams straight off the table's change log
  (:meth:`Table.open_cursor`): the tick's net row changes are filtered by
  the standing predicate — no query execution at all.  Any other plan
  re-executes once per tick through the shared
  :class:`~repro.engine.executor.Executor` — served from a registered
  :class:`IncrementalView` when the planner could prove one correct — and
  the result is multiset-diffed against the previous tick's.

* **Resync.**  A lost change-log delta (capacity overflow, ``clear`` /
  ``restore`` / schema replacement) or an outbox overflow breaks a stream;
  the group re-anchors the affected subscribers with a fresh
  :class:`~repro.service.protocol.Snapshot` instead of a delta.

Area-of-interest subscriptions are routed through
:class:`~repro.service.interest.InterestManager` (one per table and
dimension set) and share the same session/outbox/flush machinery.

The manager attaches to :meth:`GameWorld.tick` via the world's
``subscriptions`` property: the tick loop calls :meth:`flush` at the end
of every tick (the *flush phase*, timed in ``TickReport.flush_seconds``).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.engine.algebra import LogicalPlan, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.errors import ExecutionError
from repro.engine.executor import Executor
from repro.engine.expressions import Expression
from repro.engine.operators.scan import _qualify_row
from repro.engine.optimizer.mqo import fingerprint_plan
from repro.engine.table import ChangeCursor, Table
from repro.persistence.replay import net_table_changes
from repro.service.interest import AOISubscription, InterestManager
from repro.service.outbox import DEFAULT_CAPACITY, Session
from repro.service.protocol import (
    Delta,
    Snapshot,
    SubscriptionMessage,
    freeze_rows,
    row_key,
)

__all__ = ["StandingQueryGroup", "SubscriptionManager"]


def _rename_row(row: Mapping[str, Any], renames: Mapping[str, str]) -> dict[str, Any]:
    out = {}
    for name, value in row.items():
        head, dot, tail = name.partition(".")
        if dot and head in renames:
            name = f"{renames[head]}.{tail}"
        out[name] = value
    return out


class _QuerySubscriber:
    """One subscription attached to a (possibly shared) query group."""

    __slots__ = ("subscription_id", "session_id", "renames")

    def __init__(self, subscription_id: int, session_id: int, renames: dict[str, str]):
        self.subscription_id = subscription_id
        self.session_id = session_id
        self.renames = renames


class StandingQueryGroup:
    """All subscribers of one canonical standing query.

    The group computes one signed row delta per tick and owns the delta
    source: a table change cursor for plain filter queries, a previous-
    result multiset for everything else.
    """

    def __init__(
        self,
        fingerprint: str,
        aliases: tuple[str, ...],
        plan: LogicalPlan,
        executor: Executor,
        catalog: Catalog,
    ):
        self.fingerprint = fingerprint
        self.aliases = aliases
        self.plan = plan
        self.executor = executor
        self.subscribers: dict[int, _QuerySubscriber] = {}
        #: Filter-over-one-table groups stream off the change log.
        self._cursor: ChangeCursor | None = None
        self._scan_alias: str | None = None
        self._predicates: tuple[Expression, ...] = ()
        #: Re-query groups diff against the previous result multiset.
        self._prev: dict[tuple, tuple[dict[str, Any], int]] = {}
        self.evaluations = 0
        self.lost_deltas = 0
        #: Whether teardown may release the plan's executor state.  A plan
        #: the executor already knew (cached or registered incremental —
        #: e.g. a client subscribing one of the world's own SGL effect
        #: queries) belongs to that earlier owner, not to this group.
        self.owns_plan = (
            id(plan) not in executor._cache and id(plan) not in executor._incremental
        )

        source = self._filter_chain(plan)
        if source is not None:
            table_name, alias, predicates = source
            table = catalog.table(table_name)
            self._cursor = table.open_cursor()
            self._scan_alias = alias
            self._predicates = predicates
        else:
            # Best effort: a provably delta-maintainable plan is refreshed
            # from table deltas instead of re-executed (the executor serves
            # the view transparently through ``execute``).
            executor.register_incremental(plan)
            self._reset_prev(self._execute())

    @property
    def cursor_mode(self) -> bool:
        return self._cursor is not None

    @staticmethod
    def _filter_chain(
        plan: LogicalPlan,
    ) -> tuple[str, str | None, tuple[Expression, ...]] | None:
        """Match ``Select*``/``TableScan`` — the shapes served cursor-only."""
        predicates: list[Expression] = []
        node = plan
        while isinstance(node, Select):
            predicates.append(node.predicate)
            node = node.child
        if isinstance(node, TableScan):
            return node.table_name, node.alias, tuple(predicates)
        return None

    # -- result materialization -------------------------------------------------------

    def _execute(self) -> list[dict[str, Any]]:
        self.evaluations += 1
        return self.executor.execute(self.plan).rows

    def result_rows(self) -> list[dict[str, Any]]:
        """The standing query's current result (canonical column names)."""
        if self.cursor_mode:
            return self._execute()
        return [dict(row) for row, count in self._prev.values() for _ in range(count)]

    def _reset_prev(self, rows: Iterable[Mapping[str, Any]]) -> None:
        self._prev = {}
        for row in rows:
            key = row_key(row)
            held = self._prev.get(key)
            self._prev[key] = (dict(row), held[1] + 1 if held else 1)

    # -- delta computation ------------------------------------------------------------

    def _qualify(self, row: Mapping[str, Any]) -> dict[str, Any]:
        # The scan operators' qualification rule: delta rows must spell
        # their columns exactly as the executed plan's snapshot rows do.
        return _qualify_row(row, self._scan_alias)

    def _matches(self, row: Mapping[str, Any]) -> bool:
        return all(bool(p.evaluate(row)) for p in self._predicates)

    def _filter_qualified(
        self, rows: Iterable[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        out = []
        for row in rows:
            qualified = self._qualify(row)
            if self._matches(qualified):
                out.append(qualified)
        return out

    def collect(
        self,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]] | None:
        """This tick's ``(added, removed)`` delta, or ``None`` on a lost
        change-log delta (callers must resync every subscriber)."""
        if self._cursor is not None:
            changed = self._cursor.poll()
            if changed is None:
                self.lost_deltas += 1
                return None
            table_added, table_removed = changed
            return self._filter_qualified(table_added), self._filter_qualified(table_removed)
        current = self._execute()
        counts: dict[tuple, tuple[dict[str, Any], int]] = {}
        for row in current:
            key = row_key(row)
            held = counts.get(key)
            counts[key] = (row, held[1] + 1 if held else 1)
        added: list[dict[str, Any]] = []
        removed: list[dict[str, Any]] = []
        for key, (row, count) in counts.items():
            before = self._prev.get(key)
            delta = count - (before[1] if before else 0)
            if delta > 0:
                added.extend(dict(row) for _ in range(delta))
        for key, (row, count) in self._prev.items():
            after = counts.get(key)
            delta = count - (after[1] if after else 0)
            if delta > 0:
                removed.extend(dict(row) for _ in range(delta))
        self._prev = counts
        return added, removed


class SubscriptionManager:
    """Registers standing queries and streams per-tick deltas to sessions.

    Attach to a :class:`~repro.runtime.world.GameWorld` via its
    ``subscriptions`` property (the tick loop then calls :meth:`flush`
    automatically), or drive a bare catalog/executor pair directly (the
    benchmarks do) by calling :meth:`flush` after each round of mutations.
    """

    def __init__(
        self,
        world: Any = None,
        catalog: Catalog | None = None,
        executor: Executor | None = None,
        outbox_capacity: int = DEFAULT_CAPACITY,
    ):
        if world is not None:
            catalog = world.catalog
            executor = world.executor
        if catalog is None or executor is None:
            raise ExecutionError(
                "SubscriptionManager needs a world or an explicit catalog + executor"
            )
        self.world = world
        self.catalog = catalog
        self.executor = executor
        self.outbox_capacity = outbox_capacity
        self._sessions: dict[int, Session] = {}
        self._groups: dict[str, StandingQueryGroup] = {}
        self._interest: dict[tuple[str, tuple[str, ...]], InterestManager] = {}
        #: subscription id → ("query", group) | ("aoi", interest manager)
        self._subs: dict[int, tuple[str, Any]] = {}
        self._next_session_id = 0
        self._next_subscription_id = 0
        self.current_tick = -1
        self.last_flush_stats: dict[str, int] = {}
        #: Durable delta log used for log-offset catch-up (see
        #: :meth:`attach_wal` / :meth:`resume_table_subscription`).
        self._wal = None

    # -- sessions ---------------------------------------------------------------------

    def connect(self, name: str = "", outbox_capacity: int | None = None) -> Session:
        session = Session(
            self._next_session_id,
            name,
            outbox_capacity if outbox_capacity is not None else self.outbox_capacity,
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        return session

    def disconnect(self, session: Session) -> None:
        for sub_id in list(session.subscription_ids):
            self.unsubscribe(session, sub_id)
        session.closed = True
        self._sessions.pop(session.session_id, None)

    @property
    def sessions(self) -> list[Session]:
        return list(self._sessions.values())

    def subscription_count(self) -> int:
        return len(self._subs)

    # -- subscribing ------------------------------------------------------------------

    def _resolve_table(self, name: str) -> Table:
        """Accept either a table name or (with a world) an SGL class name,
        which resolves to the class's primary state table."""
        if self.world is not None and name in getattr(self.world, "schemas", {}):
            return self.catalog.table(self.world.schemas[name].primary_table)
        return self.catalog.table(name)

    def _register_query_subscriber(
        self, session: Session, plan: LogicalPlan
    ) -> tuple[_QuerySubscriber, StandingQueryGroup]:
        """Attach *session* to *plan*'s standing-query group (creating it if
        needed); pushes no message — callers choose snapshot or catch-up."""
        # cache=False: only the group's representative plan should occupy a
        # plan-cache slot — a deduped newcomer's plan object is never
        # executed again, and churning client connections would otherwise
        # grow the executor's id-keyed cache without bound.
        planned = self.executor.prepare(plan, cache=False)
        fingerprint, aliases = fingerprint_plan(planned.optimized)
        group = self._groups.get(fingerprint)
        if group is None:
            group = StandingQueryGroup(
                fingerprint, aliases, plan, self.executor, self.catalog
            )
            self._groups[fingerprint] = group
        else:
            # Align the group's delta source with "now" so the newcomer's
            # snapshot and the existing subscribers' streams agree: pending
            # changes are delivered to current subscribers first.
            self._flush_group(group, self.current_tick)
        renames = {
            rep: mine for rep, mine in zip(group.aliases, aliases) if rep != mine
        }
        sub = _QuerySubscriber(self._next_subscription_id, session.session_id, renames)
        self._next_subscription_id += 1
        group.subscribers[sub.subscription_id] = sub
        self._subs[sub.subscription_id] = ("query", group)
        session.subscription_ids.add(sub.subscription_id)
        return sub, group

    def subscribe_query(self, session: Session, plan: LogicalPlan) -> int:
        """Register *plan* as a standing query; returns the subscription id.

        Equivalent plans (equal canonical fingerprints) join the same
        group: the per-tick delta is computed once regardless of how many
        sessions subscribe it.
        """
        sub, group = self._register_query_subscriber(session, plan)
        rows = group.result_rows()
        if sub.renames:
            rows = [_rename_row(r, sub.renames) for r in rows]
        session.outbox.push(
            Snapshot(
                subscription_id=sub.subscription_id,
                tick=self.current_tick,
                rows=freeze_rows(rows),
            )
        )
        return sub.subscription_id

    def subscribe_table(
        self,
        session: Session,
        table: str,
        predicate: Expression | None = None,
    ) -> int:
        """Subscribe to a table (or SGL class) scan with an optional filter."""
        resolved = self._resolve_table(table)
        plan: LogicalPlan = TableScan(resolved.name)
        if predicate is not None:
            plan = Select(plan, predicate)
        return self.subscribe_query(session, plan)

    # -- log-offset catch-up (restarted nodes) ----------------------------------------

    def attach_wal(self, wal: Any) -> None:
        """Use *wal* (a ``WorldWal`` or bare ``DeltaLog``) for catch-up.

        A manager created from a world with an attached WAL picks it up
        automatically; standalone catalog/executor managers (and tests)
        attach one explicitly.
        """
        self._wal = wal

    def _wal_log(self):
        if self._wal is not None:
            return getattr(self._wal, "log", self._wal)
        world_wal = getattr(self.world, "wal", None) if self.world is not None else None
        return world_wal.log if world_wal is not None else None

    def _table_position_stale(self, table: Table) -> bool:
        """Whether *table* has mutations the WAL has not committed yet.

        Catch-up promises "apply this delta and you are current"; if the
        table drifted past the last commit record the promise would be
        broken, so the caller must fall back to a snapshot.
        """
        wal = self._wal if self._wal is not None else getattr(self.world, "wal", None)
        positions = getattr(wal, "_positions", None)
        if positions is None or table.name not in positions:
            return False  # bare DeltaLog: the caller vouches for alignment
        epoch, version = positions[table.name]
        return table.log_epoch != epoch or table.version != version

    def resume_table_subscription(
        self,
        session: Session,
        table: str,
        predicate: Expression | None = None,
        last_seen_tick: int = -1,
    ) -> int:
        """Re-subscribe a returning client without a full snapshot.

        The restarted-node path: a client that was streaming a table
        subscription before the node went down reconnects and presents the
        last tick it fully applied.  When the delta log still holds every
        commit after that tick (and matches the table's current state), the
        client receives one netted catch-up :class:`Delta` — typically a
        few rows instead of the whole result — and the stream continues as
        usual.  When the log cannot serve the range (the offset was trimmed
        away, a full-table fallback record hides pre-images, or the table
        drifted past the last commit) the client is re-anchored with a
        :class:`Snapshot` carrying reason ``"resync:offset-too-old"``.
        """
        resolved = self._resolve_table(table)
        plan: LogicalPlan = TableScan(resolved.name)
        if predicate is not None:
            plan = Select(plan, predicate)
        sub, group = self._register_query_subscriber(session, plan)
        log = self._wal_log()
        catchup = None
        if log is not None and not self._table_position_stale(resolved):
            catchup = net_table_changes(log, resolved.name, last_seen_tick)
        if catchup is None:
            rows = group.result_rows()
            if sub.renames:
                rows = [_rename_row(r, sub.renames) for r in rows]
            session.outbox.push(
                Snapshot(
                    subscription_id=sub.subscription_id,
                    tick=self.current_tick,
                    rows=freeze_rows(rows),
                    reason="resync:offset-too-old" if log is not None else "subscribe",
                )
            )
            return sub.subscription_id
        added, removed = catchup
        added = group._filter_qualified(added)
        removed = group._filter_qualified(removed)
        if sub.renames:
            added = [_rename_row(r, sub.renames) for r in added]
            removed = [_rename_row(r, sub.renames) for r in removed]
        catchup_tick = log.last_tick if log.last_tick is not None else self.current_tick
        session.outbox.push(
            Delta(
                subscription_id=sub.subscription_id,
                tick=catchup_tick,
                added=freeze_rows(added),
                removed=freeze_rows(removed),
            )
        )
        return sub.subscription_id

    def subscribe_aoi(
        self,
        session: Session,
        table: str,
        radius: float | Sequence[float],
        dims: Sequence[str] = ("x", "y"),
        center: Sequence[float] | None = None,
        observer_id: Any = None,
        observer_table: str | None = None,
        cell_size: float | None = None,
    ) -> int:
        """Subscribe to the rows inside an axis-aligned area of interest.

        Either ``center`` fixes the box, or ``observer_id`` names a row (of
        ``observer_table``, default the watched table itself) whose
        position the box follows — the fog-of-war shape.  ``radius`` is the
        half-extent per dimension (a scalar applies to every dimension).
        """
        if (center is None) == (observer_id is None):
            raise ExecutionError("subscribe_aoi needs exactly one of center / observer_id")
        resolved = self._resolve_table(table)
        dims_tuple = tuple(resolved.schema.resolve(d) for d in dims)
        radii = (
            tuple(float(r) for r in radius)
            if isinstance(radius, (tuple, list))
            else tuple(float(radius) for _ in dims_tuple)
        )
        if len(radii) != len(dims_tuple):
            raise ExecutionError("radius must be scalar or one value per dimension")
        key = (resolved.name, dims_tuple)
        manager = self._interest.get(key)
        if manager is None:
            manager = InterestManager(resolved, dims_tuple, cell_size)
            self._interest[key] = manager
        sub = AOISubscription(
            subscription_id=self._next_subscription_id,
            session_id=session.session_id,
            dims=dims_tuple,
            radius=radii,
            center=tuple(float(c) for c in center) if center is not None else None,
            observer_table=(
                self._resolve_table(observer_table) if observer_table else resolved
            )
            if observer_id is not None
            else None,
            observer_key=observer_id,
        )
        self._next_subscription_id += 1
        snapshot = manager.subscribe(sub)
        self._subs[sub.subscription_id] = ("aoi", manager)
        session.subscription_ids.add(sub.subscription_id)
        session.outbox.push(
            Snapshot(
                subscription_id=snapshot.subscription_id,
                tick=self.current_tick,
                rows=snapshot.rows,
            )
        )
        return sub.subscription_id

    def unsubscribe(self, session: Session, subscription_id: int) -> bool:
        record = self._subs.pop(subscription_id, None)
        session.subscription_ids.discard(subscription_id)
        if record is None:
            return False
        kind, owner = record
        if kind == "query":
            owner.subscribers.pop(subscription_id, None)
            if not owner.subscribers:
                self._groups.pop(owner.fingerprint, None)
                # Release the executor state the group accumulated (cached
                # plan, incremental view) — churning subscribers must not
                # grow the executor monotonically.  Plans the executor knew
                # before the group existed stay: they belong to the world.
                if owner.owns_plan:
                    self.executor.release_plan(owner.plan)
        else:
            owner.unsubscribe(subscription_id)
        return True

    # -- the flush phase --------------------------------------------------------------

    def flush(self, tick: int | None = None) -> dict[str, int]:
        """Compute every group's delta once, fan out to session outboxes.

        Called by ``GameWorld.tick`` after the update and reactive steps
        (so streams reflect post-tick state); standalone users call it
        after each round of table mutations.  Returns flush statistics
        (also kept in :attr:`last_flush_stats`).
        """
        if tick is None:
            tick = self.current_tick + 1
        self.current_tick = tick
        stats = {
            "messages": 0,
            "delta_rows": 0,
            "snapshots": 0,
            "groups": 0,
            "aoi_routed_rows": 0,
        }
        for group in list(self._groups.values()):
            if not group.subscribers:
                continue
            stats["groups"] += 1
            self._flush_group(group, tick, stats)

        for manager in self._interest.values():
            for message in manager.flush(tick):
                self._push(message, stats)
            stats["aoi_routed_rows"] += manager.last_stats.get("routed_rows", 0)
        self.last_flush_stats = stats
        return stats

    def _flush_group(
        self,
        group: StandingQueryGroup,
        tick: int,
        stats: dict[str, int] | None = None,
    ) -> None:
        delta = group.collect()
        if delta is None:
            # Lost change-log delta: snapshot-resync every subscriber.
            rows = group.result_rows()
            for sub in group.subscribers.values():
                out = [_rename_row(r, sub.renames) for r in rows] if sub.renames else rows
                self._push(
                    Snapshot(
                        subscription_id=sub.subscription_id,
                        tick=tick,
                        rows=freeze_rows(out),
                        reason="resync:change-log",
                    ),
                    stats,
                )
            return
        added, removed = delta
        if not added and not removed:
            return
        snapshot_cache: list[list[dict[str, Any]]] = []

        def current_rows(sub: _QuerySubscriber) -> list[dict[str, Any]]:
            if not snapshot_cache:
                snapshot_cache.append(group.result_rows())
            rows = snapshot_cache[0]
            return [_rename_row(r, sub.renames) for r in rows] if sub.renames else rows

        # Freeze the shared delta once: Delta is immutable and every
        # consumer copies rows on apply, so all no-rename subscribers can
        # share the same tuples — the fan-out hot path must not pay
        # O(subscribers x rows) copies.
        frozen_added = freeze_rows(added)
        frozen_removed = freeze_rows(removed)
        for sub in group.subscribers.values():
            if sub.renames:
                message = Delta(
                    subscription_id=sub.subscription_id,
                    tick=tick,
                    added=tuple(_rename_row(r, sub.renames) for r in added),
                    removed=tuple(_rename_row(r, sub.renames) for r in removed),
                )
            else:
                message = Delta(
                    subscription_id=sub.subscription_id,
                    tick=tick,
                    added=frozen_added,
                    removed=frozen_removed,
                )
            self._push(message, stats, lambda sub=sub: current_rows(sub))

    def _push(
        self,
        message: SubscriptionMessage,
        stats: dict[str, int] | None,
        resync_rows: Any = None,
    ) -> None:
        """Deliver *message* to its session's outbox.

        When a delta is refused (outbox overflow — the stream just broke),
        the resync happens *in the same flush*: ``resync_rows()`` supplies
        the subscription's current result and a snapshot is pushed in the
        delta's place (snapshots are always admitted and supersede the
        subscription's buffered messages), so even a chronically slow
        consumer finds current state whenever it drains, never a stale box.
        """
        record = self._subs.get(message.subscription_id)
        session = None
        aoi = None
        if record is not None:
            kind, owner = record
            if kind == "query":
                sub = owner.subscribers.get(message.subscription_id)
                session = self._sessions.get(sub.session_id) if sub else None
            else:
                aoi = owner.subscription(message.subscription_id)
                session = self._sessions.get(aoi.session_id) if aoi else None
        if session is None:
            return
        delivered = session.outbox.push(message)
        if not delivered and isinstance(message, Delta):
            if resync_rows is None and aoi is not None:
                rows = list(aoi.current.values())
            elif resync_rows is not None:
                rows = resync_rows()
            else:
                rows = None
            if rows is not None:
                message = Snapshot(
                    subscription_id=message.subscription_id,
                    tick=message.tick,
                    rows=freeze_rows(rows),
                    reason="resync:outbox",
                )
                session.outbox.push(message)
                delivered = True
        if stats is not None and delivered:
            stats["messages"] += 1
            if isinstance(message, Snapshot):
                stats["snapshots"] += 1
            else:
                stats["delta_rows"] += len(message)

    # -- reporting --------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Manager-level shape: groups, dedup factor, AOI managers, sessions."""
        group_subs = sum(len(g.subscribers) for g in self._groups.values())
        return {
            "sessions": len(self._sessions),
            "subscriptions": len(self._subs),
            "query_groups": len(self._groups),
            "query_subscribers": group_subs,
            "dedup_factor": round(group_subs / len(self._groups), 2) if self._groups else 0.0,
            "aoi_managers": len(self._interest),
            "aoi_subscribers": sum(len(m) for m in self._interest.values()),
            "last_flush": dict(self.last_flush_stats),
        }
