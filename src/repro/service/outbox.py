"""Per-session outboxes: bounded buffers between the tick loop and clients.

The tick loop must never block on (or buffer unboundedly for) a slow
client.  Each :class:`Session` owns one :class:`Outbox` with a fixed
message capacity; the flush phase pushes snapshot/delta messages into it
and the transport (or an in-process consumer) drains it with
:meth:`Session.take`.

When a delta push would overflow the buffer, the outbox refuses it, drops
the subscription's buffered deltas and marks the stream broken: queued
deltas are useless the moment one of them is lost (the stream contract is
"apply every delta in order").  The manager reacts to the refusal *in the
same flush* by pushing a fresh :class:`~repro.service.protocol.Snapshot`
(reason ``"resync:outbox"``).  Snapshots are always accepted and supersede
the subscription's buffered messages — they carry complete state, so
admitting one past the limit strictly reduces future traffic, and a
chronically slow consumer converges to one snapshot per subscription.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.service.protocol import Snapshot, SubscriptionMessage

__all__ = ["Outbox", "Session"]

#: Default outbox capacity (messages).  Generous for in-process consumers
#: that drain every tick; TCP sessions may want it smaller.
DEFAULT_CAPACITY = 1024


class Outbox:
    """A bounded FIFO of subscription messages for one session."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("outbox capacity must be at least 1")
        self.capacity = capacity
        self._messages: deque[SubscriptionMessage] = deque()
        #: Subscriptions whose stream is broken (deltas dropped on
        #: overflow) and not yet re-anchored by a snapshot; push refuses
        #: further deltas for them.
        self.needs_resync: set[int] = set()
        self.pushed = 0
        self.dropped = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._messages)

    def push(self, message: SubscriptionMessage) -> bool:
        """Enqueue *message*; returns ``False`` when it was not enqueued.

        Snapshots are always admitted: one supersedes every older buffered
        message of its subscription (which is dropped), so a permanently
        slow consumer converges to at most one snapshot per subscription —
        never an empty, stale box.  A delta that would overflow the buffer
        (or whose stream is already marked broken) is refused; the
        subscription's buffered *deltas* are dropped — the stream contract
        is "apply every delta in order", so once one is lost the rest are
        useless — and the subscription is marked for snapshot-resync.
        """
        if isinstance(message, Snapshot):
            self._drop(message.subscription_id, deltas_only=False)
            self._messages.append(message)
            self.needs_resync.discard(message.subscription_id)
            self.pushed += 1
            return True
        if message.subscription_id in self.needs_resync:
            self.dropped += 1
            return False
        if len(self._messages) < self.capacity:
            self._messages.append(message)
            self.pushed += 1
            return True
        self.overflows += 1
        self._drop(message.subscription_id, deltas_only=True)
        self.needs_resync.add(message.subscription_id)
        return False

    def _drop(self, subscription_id: int, deltas_only: bool) -> None:
        kept: deque[SubscriptionMessage] = deque()
        for message in self._messages:
            if message.subscription_id == subscription_id and not (
                deltas_only and isinstance(message, Snapshot)
            ):
                self.dropped += 1
            else:
                kept.append(message)
        self._messages = kept

    def take(self) -> list[SubscriptionMessage]:
        """Drain and return every buffered message, oldest first."""
        out = list(self._messages)
        self._messages.clear()
        return out

    def take_resyncs(self) -> set[int]:
        """Subscription ids whose streams are still broken (cleared).

        Normally empty — the manager converts every refused delta into a
        same-flush snapshot, which clears the mark; a transport can use
        this as a diagnostic for streams it failed to repair.
        """
        out = self.needs_resync
        self.needs_resync = set()
        return out


class Session:
    """One connected client: an id, a name and an outbox.

    Subscription bookkeeping (which standing queries the session holds)
    lives in the :class:`~repro.service.subscriptions.SubscriptionManager`;
    the session is deliberately transport-agnostic so the asyncio server,
    the benchmarks and in-process consumers share one implementation.
    """

    def __init__(self, session_id: int, name: str = "", outbox_capacity: int = DEFAULT_CAPACITY):
        self.session_id = session_id
        self.name = name or f"session-{session_id}"
        self.outbox = Outbox(outbox_capacity)
        self.subscription_ids: set[int] = set()
        self.closed = False

    def __repr__(self) -> str:
        return f"Session({self.name!r}, subscriptions={len(self.subscription_ids)})"

    def take(self) -> list[SubscriptionMessage]:
        """Drain this session's outbox (transports call this after flush)."""
        return self.outbox.take()

    def stats(self) -> dict[str, Any]:
        return {
            "session": self.name,
            "subscriptions": len(self.subscription_ids),
            "buffered": len(self.outbox),
            "pushed": self.outbox.pushed,
            "dropped": self.outbox.dropped,
            "overflows": self.outbox.overflows,
        }
