"""Wire protocol of the subscription service: snapshot-then-delta streams.

Every subscription delivers one :class:`Snapshot` (the standing query's
materialized result at subscribe time) followed by a stream of
:class:`Delta` messages — *signed row deltas*: rows entering the result
(``added``) and rows leaving it (``removed``); an updated row appears in
both lists (old values in ``removed``, new values in ``added``), exactly
mirroring :meth:`repro.engine.table.Table.changes_since`.

Applying the deltas in order to the snapshot reproduces, tick for tick,
the result of re-running the standing query from scratch — that is the
service's correctness contract, and :class:`ResultSet` is the reference
applier used by the client, the tests and the benchmarks.  When the
service cannot guarantee the contract cheaply (change-log overflow,
slow-consumer outbox overflow) it re-sends a :class:`Snapshot` with a
``resync`` reason instead of a delta; the client replaces its state and
the stream continues.

Messages serialize to JSON lines for the TCP server
(:mod:`repro.service.server`); in-process consumers use the dataclasses
directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "Snapshot",
    "Delta",
    "SubscriptionMessage",
    "ResultSet",
    "encode_message",
    "decode_message",
    "row_key",
]


@dataclass(frozen=True)
class Snapshot:
    """Full materialized result of a standing query at one tick."""

    subscription_id: int
    tick: int
    rows: tuple[dict[str, Any], ...]
    #: Why the snapshot was sent: ``"subscribe"`` for the initial
    #: materialization, ``"resync:change-log"`` after a change-log
    #: overflow/reset, ``"resync:outbox"`` after a slow consumer's outbox
    #: overflowed and buffered deltas had to be dropped.
    reason: str = "subscribe"


@dataclass(frozen=True)
class Delta:
    """Signed row deltas of one standing query for one tick."""

    subscription_id: int
    tick: int
    added: tuple[dict[str, Any], ...] = ()
    removed: tuple[dict[str, Any], ...] = ()

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)


SubscriptionMessage = Snapshot | Delta


def row_key(row: Mapping[str, Any]) -> tuple:
    """A hashable multiset identity for a result row.

    Result rows are flat column→scalar mappings; the rare unhashable value
    (a set effect materialized into a result) falls back to ``repr``.
    """
    items = []
    for name in sorted(row):
        value = row[name]
        try:
            hash(value)
        except TypeError:
            value = repr(value)
        items.append((name, value))
    return tuple(items)


@dataclass
class ResultSet:
    """Client-side materialization of one subscription's stream.

    Maintains the row *multiset* (standing queries may produce duplicate
    rows, e.g. projections).  ``apply`` consumes messages in stream order;
    ``rows()`` returns the current result.  Removing a row the set does not
    hold raises — the stream protocol guarantees it never happens, so a
    miss is a service bug the tests must surface.
    """

    _counts: dict[tuple, int] = field(default_factory=dict)
    _rows: dict[tuple, dict[str, Any]] = field(default_factory=dict)
    last_tick: int = -1
    snapshots_applied: int = 0
    deltas_applied: int = 0

    def apply(self, message: SubscriptionMessage) -> None:
        if isinstance(message, Snapshot):
            self._counts.clear()
            self._rows.clear()
            for row in message.rows:
                self._add(dict(row))
            self.snapshots_applied += 1
        else:
            for row in message.removed:
                self._remove(row)
            for row in message.added:
                self._add(dict(row))
            self.deltas_applied += 1
        self.last_tick = message.tick

    def _add(self, row: dict[str, Any]) -> None:
        key = row_key(row)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._rows[key] = row

    def _remove(self, row: Mapping[str, Any]) -> None:
        key = row_key(row)
        count = self._counts.get(key, 0)
        if count <= 0:
            raise ValueError(f"delta removes a row the result set does not hold: {dict(row)!r}")
        if count == 1:
            del self._counts[key]
            del self._rows[key]
        else:
            self._counts[key] = count - 1

    def rows(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        for key, count in self._counts.items():
            out.extend(dict(self._rows[key]) for _ in range(count))
        return out

    def counts(self) -> dict[tuple, int]:
        """The multiset as ``row_key → count`` (order-insensitive compare)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return sum(self._counts.values())


# -- JSON-lines codec (the TCP server's wire format) ----------------------------------


def encode_message(message: SubscriptionMessage) -> str:
    """One JSON line (no trailing newline) for *message*."""
    if isinstance(message, Snapshot):
        payload = {
            "type": "snapshot",
            "id": message.subscription_id,
            "tick": message.tick,
            "reason": message.reason,
            "rows": list(message.rows),
        }
    else:
        payload = {
            "type": "delta",
            "id": message.subscription_id,
            "tick": message.tick,
            "added": list(message.added),
            "removed": list(message.removed),
        }
    return json.dumps(payload, sort_keys=True, default=_encode_fallback)


def _encode_fallback(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return repr(value)


def decode_message(line: str) -> SubscriptionMessage:
    """Parse one JSON line back into a message dataclass."""
    payload = json.loads(line)
    kind = payload.get("type")
    if kind == "snapshot":
        return Snapshot(
            subscription_id=payload["id"],
            tick=payload["tick"],
            rows=tuple(payload["rows"]),
            reason=payload.get("reason", "subscribe"),
        )
    if kind == "delta":
        return Delta(
            subscription_id=payload["id"],
            tick=payload["tick"],
            added=tuple(payload["added"]),
            removed=tuple(payload["removed"]),
        )
    raise ValueError(f"unknown message type {kind!r}")


def freeze_rows(rows: Iterable[Mapping[str, Any]]) -> tuple[dict[str, Any], ...]:
    """Copy *rows* into the tuple-of-fresh-dicts form messages carry."""
    return tuple(dict(row) for row in rows)
