"""Per-shard logical plans: handoff detection and halo export.

Both cross-shard queries a worker runs each tick are expressed in the
engine's own algebra and executed through the world's executor, so they
get plan caching, index acceleration (the shard-slice predicate lowers to
an index range scan once the advisor builds an index on the axis) and
``explain`` for free:

* the **handoff plan** is an :class:`~repro.engine.algebra.Exchange` over
  the class's primary table with ``exclude_shard`` set to the local shard
  — its output is exactly the owned rows whose post-update axis value has
  left the shard's range, labelled with their new owner, and
* the **halo plans** are :class:`~repro.engine.algebra.ShardedScan` strips
  hugging each interior boundary — the rows close enough to a cut that a
  band/spatial join on a neighbouring shard may need them as ghosts.

Plan objects are cached per class (the executor's plan cache is keyed by
plan identity) and rebuilt only when the adaptive halo width changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.algebra import Exchange, LogicalPlan, ShardedScan, TableScan
from repro.shard.spec import ShardSpec

__all__ = ["ClassPlans", "ShardPlanSet"]


@dataclass
class ClassPlans:
    """The cached per-class plan objects for one shard."""

    handoff: Exchange
    halo_strips: tuple[LogicalPlan, ...]


@dataclass
class ShardPlanSet:
    """Builds and caches the cross-shard plans for one worker."""

    spec: ShardSpec
    shard_id: int
    n_shards: int
    halo_width: float
    _by_class: dict[tuple[str, str], ClassPlans] = field(default_factory=dict)

    def for_class(self, class_name: str, primary_table: str) -> ClassPlans:
        key = (class_name, primary_table)
        plans = self._by_class.get(key)
        if plans is None:
            plans = self._build(primary_table)
            self._by_class[key] = plans
        return plans

    def set_halo(self, halo_width: float) -> bool:
        """Adopt a new halo width; returns True when plans were rebuilt."""
        if halo_width == self.halo_width:
            return False
        self.halo_width = halo_width
        self._by_class.clear()
        return True

    def _build(self, primary_table: str) -> ClassPlans:
        spec = self.spec
        cuts = spec.cuts(self.n_shards)
        low, high = spec.shard_range(self.shard_id, self.n_shards)
        handoff = Exchange(
            TableScan(primary_table),
            spec.axis_column,
            cuts,
            exclude_shard=self.shard_id,
        )
        strips: list[LogicalPlan] = []
        if self.n_shards > 1 and self.halo_width > 0:
            # Any row whose ±halo reach crosses a boundary sits in one of
            # the two strips hugging this shard's own edges (a reach past a
            # farther cut implies reaching past the nearer one first).
            if low is not None:
                strips.append(
                    ShardedScan(
                        primary_table, spec.axis_column, low, low + self.halo_width
                    )
                )
            if high is not None:
                strip_low = high - self.halo_width
                if low is not None:
                    strip_low = max(strip_low, low + self.halo_width)
                strips.append(
                    ShardedScan(primary_table, spec.axis_column, strip_low, high)
                )
        return ClassPlans(handoff=handoff, halo_strips=tuple(strips))
