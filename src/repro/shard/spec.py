"""Shard layout: how one world is split along a spatial axis.

A :class:`ShardSpec` is the single source of truth shared by the
coordinator and every worker: the partition axis, the world extent, which
classes are partitioned (the rest are replicated), and how wide the halo
strip around each boundary must be.  All ownership decisions go through
:meth:`shard_of` — a binary search over the interior cut positions — so
the coordinator's routing, the workers' :class:`~repro.engine.algebra.Exchange`
plans and the :class:`~repro.engine.algebra.ShardedScan` range predicates
can never disagree about where a row lives.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.engine.distributed.partitioner import SpatialPartitioner

__all__ = ["ShardSpec"]


@dataclass(frozen=True)
class ShardSpec:
    """Static description of a sharded world layout.

    ``halo_width`` must be at least the largest interaction range of any
    script (the widest band-join probe), or boundary actors silently miss
    partners on the far side.  With ``adaptive_halo`` the workers instead
    size the strip from the index advisor's observed probe widths
    (``max probe width × (1 + halo_margin)``, never below ``halo_width``
    as the floor) — see ``IndexAdvisor.probe_width_report``.
    """

    axis_column: str = "x"
    world_min: float = 0.0
    world_max: float = 100.0
    halo_width: float = 12.0
    adaptive_halo: bool = False
    halo_margin: float = 0.25
    partitioned_classes: tuple[str, ...] = ("Unit",)
    replicated_classes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.world_max <= self.world_min:
            raise ValueError("shard spec needs world_max > world_min")
        if self.halo_width < 0:
            raise ValueError("halo width must be non-negative")

    # -- geometry ------------------------------------------------------------------------

    def partitioner(self, n_shards: int) -> SpatialPartitioner:
        """The equal-width strip partitioner this spec describes."""
        return SpatialPartitioner(
            axis_column=self.axis_column,
            n_partitions=n_shards,
            world_min=self.world_min,
            world_max=self.world_max,
        )

    def cuts(self, n_shards: int) -> tuple[float, ...]:
        """Interior shard boundaries, ascending (``n_shards - 1`` values)."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        width = (self.world_max - self.world_min) / n_shards
        return tuple(self.world_min + width * i for i in range(1, n_shards))

    def shard_range(self, shard_id: int, n_shards: int) -> tuple[float | None, float | None]:
        """Half-open ownership range of one shard; ``None`` = unbounded edge.

        Edge shards are unbounded so objects pushed outside the configured
        world extent (clamped physics, scripted teleports) still have
        exactly one owner.
        """
        cuts = self.cuts(n_shards)
        low = None if shard_id == 0 else cuts[shard_id - 1]
        high = None if shard_id == n_shards - 1 else cuts[shard_id]
        return low, high

    def shard_of(self, value: float, n_shards: int) -> int:
        """Owning shard of an axis *value* (authoritative: used everywhere)."""
        return bisect_right(self.cuts(n_shards), value)

    def shards_for_span(self, low: float, high: float, n_shards: int) -> range:
        """Shards whose ranges overlap the closed span ``[low, high]``."""
        cuts = self.cuts(n_shards)
        return range(bisect_right(cuts, low), bisect_right(cuts, high) + 1)

    # -- halo sizing ---------------------------------------------------------------------

    def effective_halo(self, observed_max_probe_width: float | None) -> float:
        """Halo strip width given the advisor's observed probe widths.

        Probe width is the full extent of a band probe (``2 × range``), so
        half of it is the reach past a boundary; the margin buys headroom
        for per-row range spread that per-execution averages hide.
        """
        if not self.adaptive_halo or observed_max_probe_width is None:
            return self.halo_width
        adaptive = (observed_max_probe_width / 2.0) * (1.0 + self.halo_margin)
        return max(self.halo_width, adaptive)
