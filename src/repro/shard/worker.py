"""Shard worker: one process owning one spatial slice of the world.

Each worker runs a full single-process :class:`~repro.runtime.world.GameWorld`
— batch path, incremental views, MQO, index advisor, kernels, fixpoint
and subscriptions all compose unchanged — over the rows it owns plus
short-lived **ghost** replicas of boundary rows received from its
neighbours.  One sharded tick is three phases, driven by the coordinator
(a bulk-synchronous barrier between each):

1. ``TICK`` — install the ghosts buffered at the end of the previous
   tick, run ``world.tick()`` (the effect-step hook removes the ghosts
   between the effect and update steps and drops effects aimed at targets
   this shard does not own — so every (actor, target) effect is applied
   exactly once fleet-wide, on the target's owner), then run the cached
   :class:`~repro.engine.algebra.Exchange` handoff plan and release rows
   whose updated position left the shard.  Replies with the handoff
   frames, one per destination shard.
2. ``ADOPT`` — adopt handoff rows routed from other shards, then run the
   halo-strip plans over the *post-adoption* owned set (a row that just
   arrived near a boundary must be in the export; a row that just left
   must not) and reply with the ghost frames.
3. ``GHOSTS`` — buffer the routed ghost rows for the next tick, drain the
   local subscription outboxes, stamp the exchange counters onto the
   tick's :class:`~repro.runtime.world.TickReport` and reply with the
   per-tick counter dict.

All row shipping uses the zlib+crc32 frames from :mod:`repro.shard.wire`;
the reported ``exchange_bytes`` are the frame bytes this worker *sent*,
so summing over workers counts each byte exactly once.  Per-phase CPU is
measured with ``time.process_time`` — immune to the time-slicing that
wall clocks suffer when more workers than cores run — which is what the
benchmark's critical-path speedup is computed from.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Any, Callable

from repro.runtime.world import GameWorld
from repro.service.subscriptions import Session
from repro.sgl.schema_gen import KEY_COLUMN
from repro.shard.plans import ShardPlanSet
from repro.shard.spec import ShardSpec
from repro.shard.wire import frame_rows, unframe_rows

__all__ = ["ShardWorker", "worker_main"]


class ShardWorker:
    """The in-process half of a shard: owns a world slice, runs tick phases."""

    def __init__(self, world: GameWorld, spec: ShardSpec, shard_id: int, n_shards: int):
        self.world = world
        self.spec = spec
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.cuts = spec.cuts(n_shards)
        self.plans = ShardPlanSet(spec, shard_id, n_shards, spec.halo_width)
        #: Ghost rows received last tick, installed at the next TICK phase.
        self._pending_ghosts: dict[str, list[dict[str, Any]]] = {}
        #: Ids of ghosts currently installed (removed by the hook mid-tick).
        self._ghost_ids: dict[str, set[Any]] = {}
        self._sessions: dict[str, Session] = {}
        self._counters: dict[str, Any] = self._fresh_counters(0)
        self._cpu = 0.0
        self._wall = 0.0
        world.effect_step_hook = self._effect_step_hook

    # -- bootstrap -----------------------------------------------------------------------

    def load(self, rows_by_class: dict[str, list[dict[str, Any]]]) -> int:
        """Adopt pre-assigned rows (ids included) into the local world."""
        adopted = 0
        for class_name, rows in rows_by_class.items():
            for row in rows:
                self.world.adopt(class_name, row)
                adopted += 1
        return adopted

    def subscribe(
        self,
        session_name: str,
        table: str,
        radius: float,
        dims: tuple[str, ...],
        center: tuple[float, ...],
    ) -> int:
        """Register a fixed-center AOI subscription served by this shard."""
        session = self._sessions.get(session_name)
        if session is None:
            session = self.world.subscriptions.connect(session_name)
            self._sessions[session_name] = session
        return self.world.subscriptions.subscribe_aoi(
            session, table, radius=radius, dims=dims, center=center
        )

    def state(self, class_names: list[str] | None = None) -> dict[str, list[dict[str, Any]]]:
        """Merged owned rows per class (no ghosts are installed between ticks)."""
        names = class_names or list(
            self.spec.partitioned_classes + self.spec.replicated_classes
        )
        return {name: self.world.objects(name) for name in names}

    # -- tick phases ---------------------------------------------------------------------

    @staticmethod
    def _fresh_counters(tick: int) -> dict[str, Any]:
        return {
            "tick": tick,
            "halo_rows": 0,
            "handoff_rows": 0,
            "exchange_rows": 0,
            "exchange_bytes": 0,
        }

    def tick_phase(self, tick: int) -> dict[int, bytes]:
        """Phase 1: ghosts in, full local tick, handoffs out."""
        cpu0, wall0 = time.process_time(), time.perf_counter()
        self._counters = self._fresh_counters(tick)
        halo_in = self._install_ghosts()
        self.world.tick()
        handoff_frames, handoff_rows = self._detect_handoffs(tick)
        self._counters["halo_rows"] = halo_in
        self._counters["handoff_rows"] = handoff_rows
        self._counters["exchange_rows"] = handoff_rows
        self._counters["exchange_bytes"] = sum(len(f) for f in handoff_frames.values())
        self._cpu = time.process_time() - cpu0
        self._wall = time.perf_counter() - wall0
        return handoff_frames

    def adopt_phase(self, frames: list[bytes]) -> dict[int, bytes]:
        """Phase 2: adopt routed handoffs, export post-adoption halo strips."""
        cpu0, wall0 = time.process_time(), time.perf_counter()
        adopted = 0
        for frame in frames:
            _tick, rows_by_class = unframe_rows(frame)
            adopted += self.load(rows_by_class)
        self._counters["handoff_in"] = adopted
        halo_frames, halo_rows = self._export_halo(self._counters["tick"])
        self._counters["exchange_rows"] += halo_rows
        self._counters["exchange_bytes"] += sum(len(f) for f in halo_frames.values())
        self._cpu += time.process_time() - cpu0
        self._wall += time.perf_counter() - wall0
        return halo_frames

    def ghost_phase(self, frames: list[bytes]) -> dict[str, Any]:
        """Phase 3: buffer next tick's ghosts, drain outboxes, report counters."""
        cpu0, wall0 = time.process_time(), time.perf_counter()
        pending: dict[str, list[dict[str, Any]]] = {}
        for frame in frames:
            _tick, rows_by_class = unframe_rows(frame)
            for class_name, rows in rows_by_class.items():
                pending.setdefault(class_name, []).extend(rows)
        self._pending_ghosts = pending
        drained = sum(len(session.take()) for session in self._sessions.values())
        self._maybe_resize_halo()
        self._cpu += time.process_time() - cpu0
        self._wall += time.perf_counter() - wall0

        report = self.world.reports[-1] if self.world.reports else None
        counters = dict(self._counters)
        counters.update(
            cpu_seconds=self._cpu,
            wall_seconds=self._wall,
            shard_id=self.shard_id,
            drained_messages=drained,
        )
        if report is not None:
            # Stamp the exchange counters onto the world's own TickReport so
            # the in-worker TickInspector shows them like any other phase.
            report.exchange_bytes = counters["exchange_bytes"]
            report.exchange_rows = counters["exchange_rows"]
            report.halo_rows = counters["halo_rows"]
            report.handoff_rows = counters["handoff_rows"]
            counters.update(
                tick_seconds=report.total_seconds,
                effect_assignments=report.effect_assignments,
                subscription_messages=report.subscription_messages,
                subscription_delta_rows=report.subscription_delta_rows,
                # Per-phase seconds ride along so the coordinator's metrics
                # collector can export shard-labeled phase histograms and
                # the tracer can render one Perfetto track per worker.
                phase_seconds={
                    "effect": report.effect_step_seconds,
                    "update": report.update_step_seconds,
                    "reactive": report.reactive_seconds,
                    "flush": report.flush_seconds,
                    "persist": report.persist_seconds,
                    "advisor": report.advisor_seconds,
                },
            )
        return counters

    # -- internals -----------------------------------------------------------------------

    def _owns_target(self, class_name: str, target_id: Any) -> bool:
        if class_name not in self.spec.partitioned_classes:
            # Replicated classes are reference data; their (rare) effects
            # apply on shard 0 only so they are not multiplied per shard.
            return self.shard_id == 0
        ghosts = self._ghost_ids.get(class_name)
        return not ghosts or target_id not in ghosts

    def _effect_step_hook(self, store, transactions) -> None:
        # Ghosts exist only for the effect step: remove them before the
        # update step, reactive dispatch and the subscription flush, so
        # nothing downstream ever sees a replica.  Their same-tick
        # insert+delete also nets to zero in every change-log cursor.
        for class_name, ids in self._ghost_ids.items():
            for object_id in ids:
                self.world.destroy(class_name, object_id)
        self._ghost_ids = {}
        store.retain(self._owns_target)

    def _install_ghosts(self) -> int:
        installed = 0
        ghost_ids: dict[str, set[Any]] = {}
        for class_name, rows in self._pending_ghosts.items():
            ids = ghost_ids.setdefault(class_name, set())
            for row in rows:
                object_id = row[KEY_COLUMN]
                if self.world.get_object(class_name, object_id) is not None:
                    continue  # raced with a handoff: already owned here
                self.world.adopt(class_name, row)
                ids.add(object_id)
                installed += 1
        self._ghost_ids = ghost_ids
        self._pending_ghosts = {}
        return installed

    def _detect_handoffs(self, tick: int) -> tuple[dict[int, bytes], int]:
        """Run the Exchange plan per class; release and frame leavers."""
        outgoing: dict[int, dict[str, list[dict[str, Any]]]] = {}
        moved = 0
        for class_name in self.spec.partitioned_classes:
            generated = self.world._generated(class_name)
            plans = self.plans.for_class(class_name, generated.primary_table)
            result = self.world.executor.execute(plans.handoff)
            for row in result.rows:
                dest = row[plans.handoff.shard_column]
                released = self.world.release(class_name, row[KEY_COLUMN])
                if released is None:
                    continue
                outgoing.setdefault(dest, {}).setdefault(class_name, []).append(released)
                moved += 1
        frames = {
            dest: frame_rows(tick, rows_by_class)
            for dest, rows_by_class in outgoing.items()
        }
        return frames, moved

    def _export_halo(self, tick: int) -> tuple[dict[int, bytes], int]:
        """Rows near this shard's boundaries, routed to every reachable shard."""
        halo = self.plans.halo_width
        outgoing: dict[int, dict[str, list[dict[str, Any]]]] = {}
        exported = 0
        for class_name in self.spec.partitioned_classes:
            generated = self.world._generated(class_name)
            plans = self.plans.for_class(class_name, generated.primary_table)
            seen: set[Any] = set()
            for strip in plans.halo_strips:
                result = self.world.executor.execute(strip)
                for row in result.rows:
                    object_id = row[KEY_COLUMN]
                    if object_id in seen:
                        continue
                    seen.add(object_id)
                    value = row[self.spec.axis_column]
                    low_shard = bisect_right(self.cuts, value - halo)
                    high_shard = bisect_right(self.cuts, value + halo)
                    full_row = None
                    for dest in range(low_shard, high_shard + 1):
                        if dest == self.shard_id:
                            continue
                        if full_row is None:
                            full_row = self.world.get_object(class_name, object_id)
                        outgoing.setdefault(dest, {}).setdefault(class_name, []).append(
                            full_row
                        )
                        exported += 1
        frames = {
            dest: frame_rows(tick, rows_by_class)
            for dest, rows_by_class in outgoing.items()
        }
        return frames, exported

    def _maybe_resize_halo(self) -> None:
        if not self.spec.adaptive_halo:
            return
        advisor = self.world.index_advisor
        if advisor is None:
            return
        widest = 0.0
        for entry in advisor.probe_width_report().values():
            widest = max(widest, entry["max_width"])
        target = self.spec.effective_halo(widest if widest > 0 else None)
        self.plans.set_halo(target)


def worker_main(
    conn: Any,
    factory: Callable[[], GameWorld],
    spec: ShardSpec,
    shard_id: int,
    n_shards: int,
) -> None:
    """Process entry point: build the local world, serve coordinator messages.

    The message loop is strictly request/reply — the coordinator is the
    only peer — so any exception is reported back as an ``("ERR", ...)``
    reply instead of killing the process silently mid-barrier.
    """
    worker = ShardWorker(factory(), spec, shard_id, n_shards)
    while True:
        message = conn.recv()
        command = message[0]
        try:
            if command == "TICK":
                conn.send(("HANDOFFS", worker.tick_phase(message[1])))
            elif command == "ADOPT":
                conn.send(("HALO", worker.adopt_phase(message[1])))
            elif command == "GHOSTS":
                conn.send(("DONE", worker.ghost_phase(message[1])))
            elif command == "LOAD":
                conn.send(("OK", worker.load(message[1])))
            elif command == "SUBSCRIBE":
                conn.send(("OK", worker.subscribe(*message[1:])))
            elif command == "STATE":
                conn.send(("STATE", worker.state(message[1])))
            elif command == "STOP":
                conn.send(("BYE", shard_id))
                return
            else:
                conn.send(("ERR", f"unknown command {command!r}"))
        except Exception as exc:  # pragma: no cover - transported to coordinator
            import traceback

            conn.send(("ERR", f"{exc!r}\n{traceback.format_exc()}"))
