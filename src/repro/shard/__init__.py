"""Sharded multi-process tick execution.

One logical tick plan, N worker processes: the world's spatial tables are
partitioned into axis strips (:class:`~repro.shard.spec.ShardSpec`), each
worker runs a complete single-process engine over its slice, and the
coordinator (:class:`~repro.shard.coordinator.ShardedWorld`) drives a
bulk-synchronous barrier that ships only boundary rows — ownership
handoffs and halo ghost replicas — as measured zlib+crc32 frames.
"""

from repro.shard.coordinator import ShardError, ShardTickReport, ShardedWorld
from repro.shard.plans import ClassPlans, ShardPlanSet
from repro.shard.spec import ShardSpec
from repro.shard.wire import decode_frame, encode_frame, frame_rows, unframe_rows
from repro.shard.worker import ShardWorker, worker_main

__all__ = [
    "ClassPlans",
    "ShardError",
    "ShardPlanSet",
    "ShardSpec",
    "ShardTickReport",
    "ShardWorker",
    "ShardedWorld",
    "decode_frame",
    "encode_frame",
    "frame_rows",
    "unframe_rows",
    "worker_main",
]
