"""Sharded world coordinator: N worker processes, one BSP tick barrier.

:class:`ShardedWorld` is the drop-in multi-process counterpart of a
single :class:`~repro.runtime.world.GameWorld`: ``load`` distributes rows
(ids assigned in row order, exactly matching what ``spawn_many`` would
mint in one process, so a sharded run and a single-process run of the
same scenario are row-for-row comparable), ``tick`` drives the three-phase
shard protocol, ``gather_state`` reassembles the fleet-wide state for
equivalence checks, and ``subscribe_aoi`` routes a fixed-center area
subscription to every shard whose range the box overlaps (the existing
outbox/resync machinery serves it on each).

The coordinator is deliberately thin: it never touches row contents, it
only forwards opaque zlib+crc32 frames between pipes and charges each
forwarded frame to a real-byte :class:`~repro.engine.distributed.network.NetworkModel`
(zero latency, unmetered bandwidth — the *bytes* are measured, the
physics is left to the E7 simulation).  Tick cost accounting follows the
E7 precedent (``simulated_tick_seconds = max per-node compute + network``):
:attr:`ShardTickReport.critical_path_seconds` is the slowest worker's CPU
seconds plus the coordinator's own routing CPU, which is what a
multi-core deployment's wall clock converges to and what the gated
benchmark measures — CPU seconds are scheduling-invariant, so the gate
holds even on single-core CI runners where the workers time-slice.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine.distributed.network import NetworkModel
from repro.runtime.world import GameWorld
from repro.sgl.schema_gen import KEY_COLUMN
from repro.shard.spec import ShardSpec
from repro.shard.worker import worker_main

__all__ = ["ShardError", "ShardTickReport", "ShardedWorld"]


class ShardError(RuntimeError):
    """A worker reported an error or died mid-barrier."""


@dataclass
class ShardTickReport:
    """Fleet-wide accounting for one sharded tick."""

    tick: int
    wall_seconds: float = 0.0
    #: Coordinator CPU spent routing frames and (un)pickling pipe traffic.
    coordinator_cpu_seconds: float = 0.0
    #: Per-worker CPU (``time.process_time``) and wall seconds for all
    #: three phases, indexed by shard id.
    worker_cpu_seconds: tuple[float, ...] = ()
    worker_wall_seconds: tuple[float, ...] = ()
    #: Wire traffic: frame bytes sent across shards this tick (each byte
    #: counted once, at its sender), the rows those frames carried, ghosts
    #: installed from halo exports, and ownership transfers.
    exchange_bytes: int = 0
    exchange_rows: int = 0
    halo_rows: int = 0
    handoff_rows: int = 0
    subscription_messages: int = 0
    subscription_delta_rows: int = 0
    per_worker: tuple[dict[str, Any], ...] = ()

    @property
    def critical_path_seconds(self) -> float:
        """Slowest worker's CPU plus routing CPU — the BSP tick's length."""
        slowest = max(self.worker_cpu_seconds, default=0.0)
        return slowest + self.coordinator_cpu_seconds


@dataclass
class _Shard:
    process: multiprocessing.process.BaseProcess
    conn: Any
    shard_id: int


class ShardedWorld:
    """Coordinator owning N shard worker processes over one :class:`ShardSpec`."""

    def __init__(
        self,
        factory: Callable[[], GameWorld],
        spec: ShardSpec,
        n_shards: int,
        network: NetworkModel | None = None,
        start_method: str | None = None,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.spec = spec
        self.n_shards = n_shards
        #: Real-byte meter: latency/bandwidth are not simulated here.
        self.network = network or NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=None)
        self.tick_count = 0
        self.reports: list[ShardTickReport] = []
        #: Observers called with the finished :class:`ShardTickReport` at
        #: the end of every :meth:`tick` (metrics collectors, tracers).
        self.tick_observers: list[Callable[[ShardTickReport], None]] = []
        #: The attached :class:`~repro.obs.collector.ShardMetrics`, if any.
        self.metrics = None
        self._closed = False
        context = multiprocessing.get_context(start_method) if start_method else multiprocessing.get_context()
        self._shards: list[_Shard] = []
        for shard_id in range(n_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(child_conn, factory, spec, shard_id, n_shards),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._shards.append(_Shard(process=process, conn=parent_conn, shard_id=shard_id))

    # -- lifecycle -----------------------------------------------------------------------

    def __enter__(self) -> "ShardedWorld":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.conn.send(("STOP",))
            except (BrokenPipeError, OSError):
                pass
        for shard in self._shards:
            try:
                if shard.conn.poll(2.0):
                    shard.conn.recv()
            except (EOFError, OSError):
                pass
            shard.conn.close()
            shard.process.join(timeout=5.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2.0)

    def _request(self, shard: _Shard, message: tuple) -> tuple:
        shard.conn.send(message)
        try:
            reply = shard.conn.recv()
        except EOFError as exc:
            raise ShardError(f"shard {shard.shard_id} died mid-request") from exc
        if reply[0] == "ERR":
            raise ShardError(f"shard {shard.shard_id}: {reply[1]}")
        return reply

    def _broadcast(self, messages: Sequence[tuple]) -> list[tuple]:
        """Send one message per shard, then collect every reply (barrier)."""
        for shard, message in zip(self._shards, messages):
            shard.conn.send(message)
        replies = []
        for shard in self._shards:
            try:
                reply = shard.conn.recv()
            except EOFError as exc:
                raise ShardError(f"shard {shard.shard_id} died mid-barrier") from exc
            if reply[0] == "ERR":
                raise ShardError(f"shard {shard.shard_id}: {reply[1]}")
            replies.append(reply)
        return replies

    # -- bootstrap -----------------------------------------------------------------------

    def load(self, rows_by_class: dict[str, Sequence[dict[str, Any]]]) -> int:
        """Assign ids in row order and distribute rows to their owners.

        Partitioned classes go to the shard owning their axis value;
        replicated classes are loaded identically everywhere (static
        reference data — effects on them apply on shard 0 only).
        """
        per_shard: list[dict[str, list[dict[str, Any]]]] = [
            {} for _ in range(self.n_shards)
        ]
        total = 0
        for class_name, rows in rows_by_class.items():
            partitioned = class_name in self.spec.partitioned_classes
            for object_id, row in enumerate(rows):
                stamped = {KEY_COLUMN: object_id, **row}
                total += 1
                if partitioned:
                    owner = self.spec.shard_of(
                        float(stamped[self.spec.axis_column]), self.n_shards
                    )
                    per_shard[owner].setdefault(class_name, []).append(stamped)
                else:
                    for shard_rows in per_shard:
                        shard_rows.setdefault(class_name, []).append(stamped)
        self._broadcast([("LOAD", per_shard[s.shard_id]) for s in self._shards])
        # Bootstrap one halo exchange so the *first* tick already sees
        # ghosts of boundary rows — without it, cross-boundary interactions
        # would be silently missed once at startup.
        replies = self._broadcast([("ADOPT", [])] * self.n_shards)
        ghost_inbox: list[list[bytes]] = [[] for _ in range(self.n_shards)]
        for reply in replies:
            for dest, frame in reply[1].items():
                self.network.send(len(frame))
                ghost_inbox[dest].append(frame)
        self._broadcast([("GHOSTS", ghost_inbox[s.shard_id]) for s in self._shards])
        return total

    def subscribe_aoi(
        self,
        name: str,
        table: str,
        radius: float,
        center: tuple[float, float],
        dims: tuple[str, str] = ("x", "y"),
    ) -> list[int]:
        """Route a fixed-center AOI subscription to every overlapping shard.

        The axis extent of the box decides the serving shards (via the
        spec's strip partitioning); a box spanning a boundary is simply
        registered on both sides — each shard streams deltas for the rows
        *it* owns, and a handoff shows up as a delete from one stream plus
        an insert on the other, which is exactly what the client would see
        from a single-process world too.
        """
        axis_index = dims.index(self.spec.axis_column) if self.spec.axis_column in dims else 0
        low = center[axis_index] - radius
        high = center[axis_index] + radius
        owners = self.spec.partitioner(self.n_shards).partitions_for_range([(low, high)])
        subscription_ids = []
        for shard_id in owners:
            shard = self._shards[shard_id]
            reply = self._request(
                shard, ("SUBSCRIBE", name, table, radius, tuple(dims), tuple(center))
            )
            subscription_ids.append(reply[1])
        return subscription_ids

    # -- observability -------------------------------------------------------------------

    def attach_metrics(self, registry=None):
        """Attach a shard-aware metrics collector fed from every sharded tick.

        Creates a :class:`~repro.obs.collector.ShardMetrics` over
        *registry* and registers it as a tick observer.  Fleet-level
        series (critical path, coordinator CPU, wall clock) carry no
        labels; every per-worker counter from
        :attr:`ShardTickReport.per_worker` — exchange bytes/rows, halo and
        handoff rows, worker CPU, per-phase seconds — exports under a
        ``shard`` label, so a single scrape of the coordinator's registry
        reconstructs (and can be cross-checked against) the fleet totals.
        Idempotent: calling again returns the same collector.
        """
        if self.metrics is not None:
            return self.metrics
        from repro.obs.collector import ShardMetrics

        self.metrics = ShardMetrics(registry)
        self.tick_observers.append(self.metrics.observe)
        return self.metrics

    def attach_tracer(self, tracer=None):
        """Attach a tracer: one Perfetto track per worker + the coordinator."""
        if tracer is None:
            from repro.obs.tracing import TickTracer

            tracer = TickTracer()
        self.tick_observers.append(tracer.observe_shard)
        return tracer

    # -- the sharded tick ----------------------------------------------------------------

    def tick(self) -> ShardTickReport:
        """One BSP tick: TICK → route handoffs → route halo → counters."""
        self.tick_count += 1
        tick = self.tick_count
        wall0 = time.perf_counter()
        cpu0 = time.process_time()

        # Phase 1: everyone ticks; replies carry handoff frames by dest.
        replies = self._broadcast([("TICK", tick)] * self.n_shards)
        handoff_inbox: list[list[bytes]] = [[] for _ in range(self.n_shards)]
        for reply in replies:
            for dest, frame in reply[1].items():
                self.network.send(len(frame))
                handoff_inbox[dest].append(frame)

        # Phase 2: adopt handoffs, collect halo exports.
        replies = self._broadcast(
            [("ADOPT", handoff_inbox[s.shard_id]) for s in self._shards]
        )
        ghost_inbox: list[list[bytes]] = [[] for _ in range(self.n_shards)]
        for reply in replies:
            for dest, frame in reply[1].items():
                self.network.send(len(frame))
                ghost_inbox[dest].append(frame)

        # Phase 3: deliver ghosts, collect per-worker counters.
        replies = self._broadcast(
            [("GHOSTS", ghost_inbox[s.shard_id]) for s in self._shards]
        )
        counters = sorted((reply[1] for reply in replies), key=lambda c: c["shard_id"])

        report = ShardTickReport(
            tick=tick,
            wall_seconds=time.perf_counter() - wall0,
            coordinator_cpu_seconds=time.process_time() - cpu0,
            worker_cpu_seconds=tuple(c["cpu_seconds"] for c in counters),
            worker_wall_seconds=tuple(c["wall_seconds"] for c in counters),
            exchange_bytes=sum(c["exchange_bytes"] for c in counters),
            exchange_rows=sum(c["exchange_rows"] for c in counters),
            halo_rows=sum(c["halo_rows"] for c in counters),
            handoff_rows=sum(c["handoff_rows"] for c in counters),
            subscription_messages=sum(c.get("subscription_messages", 0) for c in counters),
            subscription_delta_rows=sum(
                c.get("subscription_delta_rows", 0) for c in counters
            ),
            per_worker=tuple(counters),
        )
        self.reports.append(report)
        for observer in self.tick_observers:
            observer(report)
        return report

    # -- inspection ----------------------------------------------------------------------

    def gather_state(self) -> dict[str, dict[Any, dict[str, Any]]]:
        """Fleet-wide state keyed ``class -> id -> merged row``.

        Partitioned classes merge every shard's owned rows (disjoint by
        construction); replicated classes come from shard 0.
        """
        replies = self._broadcast([("STATE", None)] * self.n_shards)
        merged: dict[str, dict[Any, dict[str, Any]]] = {}
        for shard_id, reply in enumerate(replies):
            for class_name, rows in reply[1].items():
                if class_name in self.spec.replicated_classes and shard_id != 0:
                    continue
                by_id = merged.setdefault(class_name, {})
                for row in rows:
                    by_id[row[KEY_COLUMN]] = row
        return merged
