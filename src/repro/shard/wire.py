"""Wire format for cross-shard row shipping.

Reuses the WAL's record codec (:mod:`repro.persistence.segment`): a frame
is a length + crc32 header over a compact-JSON payload, zlib-deflated
when it pays.  Reuse is the point — the codec already round-trips every
value the engine stores (floats via ``repr``, frozensets via a tagged
list), so a row crossing a process boundary decodes *exactly* equal to
the row that was sent, which is what the per-tick state-equivalence tests
rely on.  ``len(frame)`` is the measured wire cost charged to the
coordinator's :class:`~repro.engine.distributed.network.NetworkModel`.
"""

from __future__ import annotations

from typing import Any

from repro.persistence.segment import (
    RECORD_HEADER,
    decode_payload,
    encode_payload,
    frame_record,
    iter_records,
)

__all__ = ["encode_frame", "decode_frame", "frame_rows", "unframe_rows"]


def encode_frame(document: Any) -> bytes:
    """One framed record carrying *document* (any codec-supported value)."""
    return frame_record(encode_payload(document))


def decode_frame(data: bytes) -> Any:
    """Decode a frame produced by :func:`encode_frame`.

    Raises ``ValueError`` on truncation or CRC mismatch — a corrupt
    cross-process frame is a bug, not a condition to limp through.
    """
    for offset, payload in iter_records(data):
        if offset == 0:
            expected = RECORD_HEADER.size + len(payload)
            if expected != len(data):
                raise ValueError(
                    f"frame carries {len(data) - expected} trailing bytes"
                )
            return decode_payload(payload)
    raise ValueError("invalid frame: truncated or CRC mismatch")


def frame_rows(tick: int, rows_by_class: dict[str, list[dict[str, Any]]]) -> bytes:
    """Frame one shipment of rows grouped by class for *tick*."""
    return encode_frame({"tick": tick, "classes": rows_by_class})


def unframe_rows(data: bytes) -> tuple[int, dict[str, list[dict[str, Any]]]]:
    """Inverse of :func:`frame_rows`."""
    document = decode_frame(data)
    return document["tick"], document["classes"]
