"""On-disk record framing for the delta log's segment files.

A segment file is a flat sequence of records, each framed as::

    +----------------+----------------+------------------+
    | length (4, BE) | crc32 (4, BE)  | payload (length) |
    +----------------+----------------+------------------+

The CRC covers the payload bytes only; the length field is implicitly
validated by the CRC (a corrupted length mis-frames the payload, and the
checksum over the mis-framed bytes fails).  Readers stop at the first
record that does not validate — a short header, a short payload (the
classic torn write: the process died mid-``write``) or a checksum mismatch
(bit rot, or a torn write that happened to leave enough bytes).  Everything
before that point is trustworthy; everything after it is garbage by
definition, because records are written strictly sequentially.

Payloads are JSON documents (UTF-8) behind a one-byte codec marker:
``0x00`` for raw JSON, ``0x01`` for zlib-deflated JSON.  Large payloads
(commit and checkpoint records) compress 4-6x, which matters because the
persist phase's cost is dominated by bytes pushed through ``write`` —
the marker is covered by the CRC like every other payload byte.  Values
that JSON cannot represent directly — the engine's ``SET``-typed column
values are frozensets — are tagged via a ``json`` default/object-hook
pair (see :func:`encode_value` / :func:`decode_value` for the scalar
form); floats round-trip exactly (``json`` serializes ``repr``-faithful
shortest forms).

This module knows nothing about record *semantics* (commits, checkpoints,
segment headers) — that is :mod:`repro.persistence.log`'s job.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, BinaryIO, Iterator

__all__ = [
    "RECORD_HEADER",
    "SEGMENT_PREFIX",
    "SEGMENT_SUFFIX",
    "SegmentWriter",
    "decode_payload",
    "decode_value",
    "encode_payload",
    "encode_value",
    "frame_record",
    "iter_records",
    "scan_segment",
    "segment_base",
    "segment_file_name",
]

#: ``(length, crc32)`` — both unsigned 32-bit big-endian.
RECORD_HEADER = struct.Struct(">II")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"


# -- value / payload codec ---------------------------------------------------------

_SET_KEY = "__set__"


def encode_value(value: Any) -> Any:
    """Make one column value JSON-safe (sets become tagged lists)."""
    if isinstance(value, (set, frozenset)):
        return {_SET_KEY: sorted((encode_value(v) for v in value), key=repr)}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and _SET_KEY in value and len(value) == 1:
        return frozenset(decode_value(v) for v in value[_SET_KEY])
    return value


def _json_default(value: Any) -> Any:
    # Only reached for values json cannot serialize itself, so plain rows
    # (the overwhelmingly common case) pay nothing for set support.
    if isinstance(value, (set, frozenset)):
        return {_SET_KEY: sorted((encode_value(v) for v in value), key=repr)}
    raise TypeError(f"cannot log value of type {type(value).__name__}")


def _json_object_hook(obj: dict[str, Any]) -> Any:
    if _SET_KEY in obj and len(obj) == 1:
        return frozenset(obj[_SET_KEY])
    return obj


#: Codec marker bytes (first payload byte, covered by the CRC).
_RAW = b"\x00"
_DEFLATE = b"\x01"

#: Deflate payloads past this size; tiny ones (segment headers, idle
#: commits) are not worth the round-trip.
COMPRESS_THRESHOLD = 256


def encode_payload(document: Any) -> bytes:
    """Serialize one record payload (compact separators, stable key order)."""
    # No sort_keys: record payloads are built with deterministic key order
    # already (same code path every tick), and sorting is measurable on the
    # hot persist path.
    data = json.dumps(
        document, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    if len(data) >= COMPRESS_THRESHOLD:
        return _DEFLATE + zlib.compress(data, 1)
    return _RAW + data


def decode_payload(data: bytes) -> Any:
    body = zlib.decompress(data[1:]) if data[:1] == _DEFLATE else data[1:]
    return json.loads(body.decode("utf-8"), object_hook=_json_object_hook)


# -- record framing ----------------------------------------------------------------


def frame_record(payload: bytes) -> bytes:
    """Frame *payload* as one on-disk record (header + bytes)."""
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_records(data: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(offset_in_data, payload)`` for every *valid* record.

    Stops — silently — at the first record that fails validation: a
    truncated header, a truncated payload, or a CRC mismatch.  The offset
    of the first invalid byte is therefore ``offset + header + len(payload)``
    of the last yielded record (or 0 if nothing validated); callers that
    repair files use :func:`scan_segment`, which reports it directly.
    """
    position = 0
    total = len(data)
    while position + RECORD_HEADER.size <= total:
        length, crc = RECORD_HEADER.unpack_from(data, position)
        start = position + RECORD_HEADER.size
        end = start + length
        if end > total:
            return  # torn tail: payload extends past the file
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt record: everything after it is untrustworthy
        yield position, payload
        position = end


def scan_segment(path: str) -> tuple[list[bytes], int, int]:
    """Read one segment file; returns ``(payloads, valid_bytes, total_bytes)``.

    ``valid_bytes`` is the length of the longest validating prefix — the
    truncation point a repair pass should cut the file to.  A fully healthy
    segment has ``valid_bytes == total_bytes``.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    payloads: list[bytes] = []
    valid = 0
    for offset, payload in iter_records(data):
        payloads.append(payload)
        valid = offset + RECORD_HEADER.size + len(payload)
    return payloads, valid, len(data)


# -- segment naming ----------------------------------------------------------------


def segment_file_name(base_offset: int) -> str:
    """The file name of the segment whose first record has *base_offset*."""
    return f"{SEGMENT_PREFIX}{base_offset:016d}{SEGMENT_SUFFIX}"


def segment_base(file_name: str) -> int | None:
    """Parse a segment file name back to its base record offset."""
    if not file_name.startswith(SEGMENT_PREFIX) or not file_name.endswith(SEGMENT_SUFFIX):
        return None
    digits = file_name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class SegmentWriter:
    """Appends framed records to one segment file.

    The writer always appends; ``flush`` pushes Python and OS buffers, and
    with ``fsync=True`` forces the bytes to stable storage (the durability
    knob: cheap-and-buffered by default, paranoid on request).
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        self.fsync = fsync
        exists = os.path.exists(path)
        self._handle: BinaryIO = open(path, "ab")
        self.bytes_written = os.path.getsize(path) if exists else 0

    def append(self, payload: bytes) -> int:
        """Append one record; returns the bytes added to the file."""
        framed = frame_record(payload)
        self._handle.write(framed)
        self.bytes_written += len(framed)
        return len(framed)

    def flush(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
