"""Durable persistence for the game-as-database: the segmented delta log.

The engine already computes signed per-tick deltas (the incremental
execution path) and streams them to subscribers (the service layer); this
package makes those deltas *durable*.  A :class:`~repro.persistence.log.DeltaLog`
is an append-only sequence of checksummed records split across segment
files — the Redis-streams shape: append at the tail, trim whole segments
at the head, replay from any offset.  Two record kinds matter:

* **commit** — one per tick: every state table's netted row changes
  (rowid → old row, new row) plus the world's id counters.  The commit for
  tick *t* is the exact difference between the state at tick *t-1* and the
  state at tick *t*.
* **checkpoint** — a periodic full snapshot of every state table, so
  replay never has to walk the log from the beginning.

:mod:`~repro.persistence.segment` owns the on-disk framing (length-prefixed,
CRC-checksummed records; torn or corrupt tails are detected and cut),
:mod:`~repro.persistence.log` owns the log structure and the
:class:`~repro.persistence.log.WorldWal` writer that hooks into
``GameWorld.tick``, and :mod:`~repro.persistence.replay` reconstructs any
tick's world state by loading the nearest checkpoint and applying commits
forward — the basis of crash recovery, time-travel debugging and
restarted-node catch-up.
"""

from repro.persistence.log import DeltaLog, WalError, WorldWal
from repro.persistence.replay import (
    RecoveredState,
    ReplayError,
    net_table_changes,
    recover_world,
    replay_tables,
)

__all__ = [
    "DeltaLog",
    "WalError",
    "WorldWal",
    "RecoveredState",
    "ReplayError",
    "net_table_changes",
    "recover_world",
    "replay_tables",
]
