"""Time-travel replay: reconstruct any tick's world state from the log.

Replay is the read side of the delta log and the heart of both crash
recovery and time-travel debugging: pick the newest checkpoint at or
before the target tick, then apply every commit record between the
checkpoint and the target, in order.  Because a commit record is the
*exact* netted difference between two tick boundaries, the reconstruction
is bit-for-bit the state the live world held at that boundary — the
replay-determinism suite asserts precisely that.

Reading is deliberately side-effect free: :func:`replay_tables` accepts a
log *directory path* and never repairs or mutates files, so the
crash-injection tests can corrupt a log and observe exactly what a
recovering process would see.  Only the longest validating prefix of the
record stream is considered — everything after the first torn or corrupt
record is garbage by construction (records are written sequentially).

:func:`recover_world` pushes a replayed state back into a live
:class:`~repro.runtime.world.GameWorld` (tables, rowid counters, object-id
counters, tick counter).  :func:`net_table_changes` serves the service
layer: the netted ``(added, removed)`` row sets of one table across a tick
range, which is what a restarted subscription node sends to a client
catching up from a log offset instead of a full snapshot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.persistence import segment as seg
from repro.persistence.log import DeltaLog, _row_dict

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.runtime.world import GameWorld

__all__ = [
    "ReplayError",
    "RecoveredState",
    "available_from_tick",
    "committed_ticks",
    "iter_log_records",
    "net_table_changes",
    "recover_world",
    "replay_tables",
]


class ReplayError(Exception):
    """Raised when a log cannot produce the requested state."""


@dataclass
class RecoveredState:
    """A fully materialized world state at one tick boundary.

    ``tick`` is the last tick whose effects are included; ``-1`` is the
    initial state (before tick 0) captured by the baseline checkpoint.
    """

    tick: int
    #: table name → rowid → row (decoded, plain dicts).
    tables: dict[str, dict[int, dict[str, Any]]] = field(default_factory=dict)
    #: table name → next rowid to assign.
    next_rowids: dict[str, int] = field(default_factory=dict)
    #: class name → next object id to assign.
    next_ids: dict[str, int] = field(default_factory=dict)
    epoch: str | None = None
    checkpoint_tick: int | None = None
    commits_applied: int = 0


def iter_log_records(source: str | DeltaLog) -> Iterator[dict[str, Any]]:
    """Decoded records of *source*'s valid prefix, oldest first.

    *source* may be an open :class:`DeltaLog` or a log directory path; the
    path form reads segments directly and never repairs them.
    """
    if isinstance(source, DeltaLog):
        yield from source.records()
        return
    names = sorted(n for n in os.listdir(source) if seg.segment_base(n) is not None)
    epoch: str | None = None
    expected_base: int | None = None
    for name in names:
        payloads, valid, total = seg.scan_segment(os.path.join(source, name))
        header = seg.decode_payload(payloads[0]) if payloads else None
        if header is None or header.get("k") != "seg":
            return
        if epoch is None:
            epoch = header.get("epoch")
        elif header.get("epoch") != epoch or header.get("base") != expected_base:
            return
        expected_base = header["base"] + len(payloads)
        for payload in payloads:
            yield seg.decode_payload(payload)
        if valid < total:
            return


def replay_tables(source: str | DeltaLog, tick: int | None = None) -> RecoveredState:
    """Reconstruct the state at tick boundary *tick* (default: last durable).

    Loads the newest valid checkpoint at or before the target and applies
    the commits after it, in order.  Raises :class:`ReplayError` when the
    log's valid prefix holds no usable checkpoint (a virgin log, or one
    whose head was corrupted away) or when the target tick is not covered
    by the surviving records.
    """
    records = list(iter_log_records(source))
    epoch = next(
        (r.get("epoch") for r in records if r.get("k") == "seg"), None
    )
    boundary_ticks = [r["t"] for r in records if r.get("k") in ("c", "cp")]
    if not boundary_ticks:
        raise ReplayError("log holds no durable tick (no valid commit or checkpoint)")
    target = max(boundary_ticks) if tick is None else tick
    checkpoint: dict[str, Any] | None = None
    for record in records:
        if record.get("k") == "cp" and record["t"] <= target:
            if checkpoint is None or record["t"] >= checkpoint["t"]:
                checkpoint = record
    if checkpoint is None:
        raise ReplayError(f"no checkpoint at or before tick {target}")

    state = RecoveredState(
        tick=checkpoint["t"],
        epoch=epoch,
        checkpoint_tick=checkpoint["t"],
        next_ids={name: int(n) for name, n in checkpoint["ids"].items()},
    )
    for name, entry in checkpoint["tables"].items():
        cols = entry["cols"]
        state.tables[name] = {
            int(rowid): _row_dict(values, cols) for rowid, values in entry["rows"]
        }
        state.next_rowids[name] = int(entry["nr"])

    for record in records:
        if record.get("k") != "c" or not checkpoint["t"] < record["t"] <= target:
            continue
        for name, entry in record["tables"].items():
            cols = entry.get("cols", ())
            if "f" in entry:
                state.tables[name] = {
                    int(rowid): _row_dict(values, cols) for rowid, values in entry["f"]
                }
            else:
                rows = state.tables.setdefault(name, {})
                for rowid, _old, new in entry.get("d", ()):
                    if new is None:
                        rows.pop(int(rowid), None)
                    else:
                        rows[int(rowid)] = _row_dict(new, cols)
            state.next_rowids[name] = int(entry["nr"])
        state.next_ids = {name: int(n) for name, n in record["ids"].items()}
        state.tick = record["t"]
        state.commits_applied += 1

    if state.tick != target and tick is not None:
        raise ReplayError(
            f"log cannot reach tick {target}: replay stopped at tick {state.tick}"
        )
    return state


def recover_world(
    world: "GameWorld", source: str | DeltaLog, tick: int | None = None
) -> RecoveredState:
    """Replay *source* to *tick* and install the state into *world*.

    The world must have been built from the same program (same schemas and
    table names) as the one that wrote the log — the standard WAL
    contract.  Restores every state table (rows, rowid counters), the
    per-class object-id counters and the tick counter; raises
    :class:`ReplayError` when the log names a table the world lacks.
    """
    state = replay_tables(source, tick)
    for name, rows in state.tables.items():
        if not world.catalog.has_table(name):
            raise ReplayError(
                f"log names table {name!r} which this world does not define "
                "(was the world built from the same program?)"
            )
        table = world.catalog.table(name)
        table.restore(rows)
        table.set_next_rowid(state.next_rowids[name])
    world.tick_count = state.tick + 1
    world._next_ids.update(state.next_ids)
    return state


def net_table_changes(
    source: str | DeltaLog,
    table_name: str,
    after_tick: int,
    upto_tick: int | None = None,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]] | None:
    """Netted ``(added, removed)`` rows of one table across a tick range.

    Covers commits with ``after_tick < t <= upto_tick`` (default: through
    the last commit present).  Returns ``None`` when the log cannot serve
    the range exactly — a commit in the range is missing (trimmed away, or
    past the log's tail), or a full-table fallback record hides the old
    row values — in which case the caller must fall back to a snapshot.

    The netting mirrors :meth:`repro.engine.table.Table.changes_since`:
    per row, the *oldest* pre-image and the *newest* post-image in the
    range; a row whose images are equal nets to nothing.  ``removed``
    rows are exactly what a consumer current through ``after_tick`` holds,
    so the pair applies cleanly to a client-side
    :class:`~repro.service.protocol.ResultSet`.
    """
    records = list(iter_log_records(source))
    commits = [r for r in records if r.get("k") == "c"]
    # "Now" is the last durable boundary of any kind: a trimmed log may
    # hold a checkpoint newer than every surviving commit, and treating
    # that as "no changes" would silently skip the trimmed-away history.
    last_boundary = max(
        (r["t"] for r in records if r.get("k") in ("c", "cp")), default=None
    )
    if upto_tick is None:
        if last_boundary is None:
            return None
        upto_tick = last_boundary
    if upto_tick <= after_tick:
        return [], []
    in_range = [c for c in commits if after_tick < c["t"] <= upto_tick]
    # One commit per tick: any gap means part of the history is gone.
    if len(in_range) != upto_tick - after_tick:
        return None
    first_old: dict[int, Any] = {}
    last_new: dict[int, Any] = {}
    for commit in in_range:
        entry = commit["tables"].get(table_name)
        if entry is None:
            continue
        if "f" in entry:
            return None  # full-table record: pre-images unknown
        cols = entry.get("cols", ())
        for rowid, old, new in entry.get("d", ()):
            rowid = int(rowid)
            if rowid not in first_old:
                first_old[rowid] = _row_dict(old, cols)
            last_new[rowid] = _row_dict(new, cols)
    added: list[dict[str, Any]] = []
    removed: list[dict[str, Any]] = []
    for rowid, old in first_old.items():
        new = last_new[rowid]
        if old == new:
            continue
        if old is not None:
            removed.append(old)
        if new is not None:
            added.append(new)
    return added, removed


def committed_ticks(source: str | DeltaLog) -> list[int]:
    """Every commit tick in the valid prefix, in append order (tooling)."""
    return [r["t"] for r in iter_log_records(source) if r.get("k") == "c"]


def available_from_tick(source: str | DeltaLog) -> int | None:
    """The earliest ``after_tick`` :func:`net_table_changes` can serve, i.e.
    ``first commit tick - 1``; ``None`` when the log holds no commits."""
    for record in iter_log_records(source):
        if record.get("k") == "c":
            return record["t"] - 1
    return None
