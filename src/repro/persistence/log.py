"""The segmented delta log and the per-world WAL writer.

:class:`DeltaLog` is the storage structure: an append-only sequence of
records (framed by :mod:`repro.persistence.segment`) split across segment
files in one directory.  Appends go to the tail segment and roll into a
new segment past a size threshold; :meth:`DeltaLog.trim` drops whole
segments from the head once a newer checkpoint makes them unnecessary for
recovery — the Redis-streams shape (append / trim / replay from an
offset) applied to game ticks.

Record kinds (JSON payloads):

``seg``
    First record of every segment: the log's **epoch** (a random token
    minted when the log is created — offsets from a different log or a
    rebuilt one can never be confused with this one's), the segment's base
    record offset, and the last tick committed before the segment started.
``c`` (commit)
    One per tick: for every state table its netted row changes
    ``[rowid, old values, new values]`` (insert → old ``null``; delete →
    new ``null``; update → both) plus the table's next-rowid counter, and
    the world's per-class id counters.  Row values are arrays aligned with
    the entry's ``cols`` list — the schema-aware framing that keeps column
    names out of the hot path (the persist phase's cost is dominated by
    JSON bytes).  When a table cannot serve a netted delta (bulk rewrite,
    change-log overflow) the commit carries the full table instead
    (``f``) — fatter, but the log stays replayable.
``cp`` (checkpoint)
    A full snapshot of every state table (same columnar row form), written
    every ``checkpoint_interval`` ticks so replay cost is bounded by the
    interval, not the log length.

:class:`WorldWal` is the writer side: attached to a
:class:`~repro.runtime.world.GameWorld` (via ``GameWorld.attach_wal``), it
consolidates each table's change log once per tick
(:meth:`~repro.engine.table.Table.consolidate_changes`) and appends the
commit record — the timed *persist phase* of the tick.  On attach to a
non-empty log it recovers: torn tails are truncated, the last durable
tick is replayed into the world, and appending resumes where the log left
off.
"""

from __future__ import annotations

import os
import secrets
from typing import TYPE_CHECKING, Any, Iterator

from repro.persistence import segment as seg

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.runtime.world import GameWorld

__all__ = ["WalError", "DeltaLog", "WorldWal", "DEFAULT_SEGMENT_BYTES"]

#: Roll to a new segment once the active one exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 1 << 20


class WalError(Exception):
    """Raised on unusable logs or invalid WAL operations."""


def _row_values(row: Any, cols: list[str]) -> list[Any] | None:
    """A row as a value array aligned with *cols* (``None`` stays ``None``)."""
    if row is None:
        return None
    return [row.get(name) for name in cols]


def _row_dict(values: list[Any] | None, cols: list[str]) -> dict[str, Any] | None:
    """Inverse of :func:`_row_values` (the replay side)."""
    if values is None:
        return None
    return dict(zip(cols, values))


class DeltaLog:
    """An append-only, segmented, checksummed record log in one directory.

    Opening an existing log validates it front to back: the longest prefix
    of intact records wins, a torn or corrupt tail is truncated in place
    (``repair=True``, the default) or merely ignored (``repair=False`` —
    the read-only mode the crash-injection tests use so they can corrupt a
    log without the reader healing it).
    """

    def __init__(
        self,
        path: str,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
        repair: bool = True,
    ):
        self.path = path
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        os.makedirs(path, exist_ok=True)
        #: Ordered segment file names (not full paths).
        self._segments: list[str] = []
        #: Epoch token minted at creation, stable across reopens.
        self.epoch: str = ""
        #: Total records in the log, including segment headers — the next
        #: record's offset.
        self.record_count = 0
        #: Tick of the last commit/checkpoint, or ``None`` for a virgin log.
        self.last_tick: int | None = None
        #: Smallest commit tick still present (advances on :meth:`trim`).
        self.first_commit_tick: int | None = None
        #: ``(tick, segment_index)`` of every checkpoint still present.
        self.checkpoints: list[tuple[int, int]] = []
        self.records_appended = 0
        self.bytes_appended = 0
        self._writer: seg.SegmentWriter | None = None
        self._load(repair)
        if not self._segments:
            self.epoch = secrets.token_hex(8)
            self._start_segment()

    # -- opening / validation ------------------------------------------------------

    def _segment_path(self, name: str) -> str:
        return os.path.join(self.path, name)

    def _load(self, repair: bool) -> None:
        names = sorted(
            n for n in os.listdir(self.path) if seg.segment_base(n) is not None
        )
        broken_from: int | None = None
        for index, name in enumerate(names):
            if broken_from is not None:
                break
            payloads, valid, total = seg.scan_segment(self._segment_path(name))
            header = seg.decode_payload(payloads[0]) if payloads else None
            if (
                header is None
                or header.get("k") != "seg"
                or (self.epoch and header.get("epoch") != self.epoch)
                or (self._segments and header.get("base") != self.record_count)
            ):
                # Unreadable, alien, or discontinuous header: this segment
                # and everything after it are not part of the valid prefix.
                # (The first segment may start at any base — trimming
                # removes head segments — but each further segment must
                # begin exactly where the previous one ended.)
                broken_from = index
                break
            if not self.epoch:
                self.epoch = header["epoch"]
            self._segments.append(name)
            self.record_count = header["base"]
            for payload in payloads:
                record = seg.decode_payload(payload)
                self._index_record(record, len(self._segments) - 1)
                self.record_count += 1
            if valid < total:
                if repair:
                    with open(self._segment_path(name), "r+b") as handle:
                        handle.truncate(valid)
                broken_from = index + 1
        if broken_from is not None and repair:
            for name in names[broken_from:]:
                if name not in self._segments:
                    os.remove(self._segment_path(name))
        if self._segments:
            self._writer = seg.SegmentWriter(
                self._segment_path(self._segments[-1]), fsync=self.fsync
            )

    def _index_record(self, record: dict[str, Any], segment_index: int) -> None:
        kind = record.get("k")
        if kind == "c":
            self.last_tick = record["t"]
            if self.first_commit_tick is None:
                self.first_commit_tick = record["t"]
        elif kind == "cp":
            self.last_tick = record["t"]
            self.checkpoints.append((record["t"], segment_index))

    # -- appending -----------------------------------------------------------------

    def _start_segment(self) -> None:
        if self._writer is not None:
            self._writer.close()
        name = seg.segment_file_name(self.record_count)
        self._segments.append(name)
        self._writer = seg.SegmentWriter(self._segment_path(name), fsync=self.fsync)
        header = {
            "k": "seg",
            "epoch": self.epoch,
            "base": self.record_count,
            "pt": self.last_tick,
        }
        self._append_payload(seg.encode_payload(header))

    def _append_payload(self, payload: bytes) -> int:
        assert self._writer is not None
        written = self._writer.append(payload)
        self.record_count += 1
        self.records_appended += 1
        self.bytes_appended += written
        return written

    def append(self, record: dict[str, Any]) -> int:
        """Append one commit/checkpoint record; returns bytes written.

        Rolls to a fresh segment first when the active one is over the
        size threshold, so a record (plus its segment header) always lands
        whole in one file.
        """
        if record.get("k") not in ("c", "cp"):
            raise WalError(f"cannot append record kind {record.get('k')!r}")
        if self._writer is None or self._writer.bytes_written >= self.segment_max_bytes:
            self._start_segment()
        written = self._append_payload(seg.encode_payload(record))
        self._index_record(record, len(self._segments) - 1)
        assert self._writer is not None
        self._writer.flush()
        return written

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reading -------------------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Decoded records of the valid prefix, oldest first (re-read from
        disk, so an external reader sees exactly what survives a crash)."""
        self.flush()
        epoch: str | None = None
        for name in sorted(
            n for n in os.listdir(self.path) if seg.segment_base(n) is not None
        ):
            payloads, valid, total = seg.scan_segment(self._segment_path(name))
            header = seg.decode_payload(payloads[0]) if payloads else None
            if header is None or header.get("k") != "seg":
                return
            if epoch is None:
                epoch = header.get("epoch")
            elif header.get("epoch") != epoch:
                return
            for payload in payloads:
                yield seg.decode_payload(payload)
            if valid < total:
                return

    def commits_after(self, tick: int) -> Iterator[dict[str, Any]]:
        """Commit records with tick strictly greater than *tick*, in order."""
        for record in self.records():
            if record.get("k") == "c" and record["t"] > tick:
                yield record

    @property
    def byte_size(self) -> int:
        self.flush()
        return sum(
            os.path.getsize(self._segment_path(name)) for name in self._segments
        )

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # -- trimming ------------------------------------------------------------------

    def trim(self) -> int:
        """Drop head segments made redundant by the newest checkpoint.

        A segment is removable when a checkpoint lives in a *later*
        segment: recovery starts at the newest checkpoint, so nothing
        before its segment is ever read again.  Catch-up readers lose the
        trimmed ticks — that is the offset-too-old path subscribers resync
        around.  Returns the number of segments removed.
        """
        if not self.checkpoints:
            return 0
        keep_from = max(index for _, index in self.checkpoints)
        if keep_from == 0:
            return 0
        dropped = self._segments[:keep_from]
        for name in dropped:
            os.remove(self._segment_path(name))
        self._segments = self._segments[keep_from:]
        self.checkpoints = [
            (tick, index - keep_from)
            for tick, index in self.checkpoints
            if index >= keep_from
        ]
        # The earliest surviving commit tick must be re-derived from disk.
        self.first_commit_tick = None
        for record in self.records():
            if record.get("k") == "c":
                self.first_commit_tick = record["t"]
                break
        return len(dropped)


class WorldWal:
    """The per-world WAL writer: one commit record per tick.

    Created by ``GameWorld.attach_wal``.  Holds a consolidation position
    ``(log epoch, version)`` per state table; :meth:`commit_tick` nets
    everything since the previous commit — tick-loop updates *and*
    out-of-tick churn (spawns, destroys, ``set_state``) alike — into one
    commit record.  Every ``checkpoint_interval`` commits it also writes a
    full checkpoint, and with ``auto_trim`` drops the segments the new
    checkpoint obsoleted.
    """

    def __init__(
        self,
        world: "GameWorld",
        log: DeltaLog,
        checkpoint_interval: int = 50,
        auto_trim: bool = False,
    ):
        if checkpoint_interval < 1:
            raise WalError("checkpoint_interval must be at least 1")
        self.world = world
        self.log = log
        self.checkpoint_interval = checkpoint_interval
        self.auto_trim = auto_trim
        self.commits = 0
        self.full_table_records = 0
        #: table name → (log epoch, version) consolidated up to.
        self._positions: dict[str, tuple[int, int]] = {}
        for _, table in self._tables():
            table.enable_change_log()
        self._anchor_positions()

    # -- plumbing ------------------------------------------------------------------

    def _tables(self):
        """The world's state tables, in stable (schema declaration) order."""
        for generated in self.world.schemas.values():
            for table_name in generated.state_table_names():
                yield table_name, self.world.catalog.table(table_name)

    def _anchor_positions(self) -> None:
        self._positions = {
            name: (table.log_epoch, table.version) for name, table in self._tables()
        }

    def _full_entry(self, table) -> dict[str, Any]:
        self.full_table_records += 1
        cols = [column.name for column in table.schema]
        return {
            "nr": table.next_rowid,
            "cols": cols,
            "f": [
                [rowid, _row_values(table.get(rowid), cols)]
                for rowid in sorted(table.row_ids())
            ],
        }

    # -- the persist phase ---------------------------------------------------------

    def commit_tick(self, tick: int) -> dict[str, int]:
        """Append the commit record for *tick*; returns append statistics."""
        tables: dict[str, Any] = {}
        delta_rows = 0
        for name, table in self._tables():
            epoch, version = self._positions[name]
            changes = table.consolidate_changes(version, epoch)
            if changes is None:
                # Bulk rewrite or change-log overflow: delta unknowable,
                # fall back to the full table so the log stays replayable.
                tables[name] = self._full_entry(table)
            else:
                entry: dict[str, Any] = {"nr": table.next_rowid}
                if changes:
                    cols = [column.name for column in table.schema]
                    entry["cols"] = cols
                    entry["d"] = [
                        [rowid, _row_values(old, cols), _row_values(new, cols)]
                        for rowid, old, new in changes
                    ]
                    delta_rows += len(changes)
                tables[name] = entry
            self._positions[name] = (table.log_epoch, table.version)
        record = {
            "k": "c",
            "t": tick,
            "ids": dict(self.world._next_ids),
            "tables": tables,
        }
        bytes_written = self.log.append(record)
        self.commits += 1
        if self.commits % self.checkpoint_interval == 0:
            bytes_written += self.checkpoint(tick)
            if self.auto_trim:
                self.log.trim()
        return {"bytes": bytes_written, "delta_rows": delta_rows}

    def checkpoint(self, tick: int | None = None) -> int:
        """Write a full-snapshot checkpoint record; returns bytes written."""
        if tick is None:
            tick = self.world.tick_count - 1
        record = {
            "k": "cp",
            "t": tick,
            "ids": dict(self.world._next_ids),
            "tables": {
                name: {
                    "nr": table.next_rowid,
                    "cols": (cols := [column.name for column in table.schema]),
                    "rows": [
                        [rowid, _row_values(table.get(rowid), cols)]
                        for rowid in sorted(table.row_ids())
                    ],
                }
                for name, table in self._tables()
            },
        }
        return self.log.append(record)

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> int | None:
        """Replay the log's last durable tick into the attached world.

        Returns the recovered tick (``-1`` means "initial state, before
        any tick") or ``None`` when the log holds nothing recoverable (a
        virgin log).  Afterwards the consolidation positions re-anchor at
        the restored state, so the next :meth:`commit_tick` continues the
        log seamlessly.
        """
        from repro.persistence.replay import ReplayError, recover_world

        try:
            state = recover_world(self.world, self.log)
        except ReplayError:
            return None
        self._anchor_positions()
        return state.tick

    def stats(self) -> dict[str, Any]:
        return {
            "commits": self.commits,
            "full_table_records": self.full_table_records,
            "segments": self.log.segment_count,
            "bytes": self.log.byte_size,
            "last_tick": self.log.last_tick,
            "first_commit_tick": self.log.first_commit_tick,
            "checkpoints": len(self.log.checkpoints),
            "epoch": self.log.epoch,
        }

    def close(self) -> None:
        self.log.close()
