"""Semantic analysis for SGL programs.

Static checks enforce the state-effect discipline the whole execution model
rests on (Sections 2 and 3 of the paper):

* state fields are **read-only** inside scripts; effect fields are
  **write-only** (assigned with ``<-`` / ``<=``),
* the accum variable of an accum-loop is write-only inside the first block
  and read-only inside the second block,
* ``waitNextTick`` may not appear inside the first block of an accum-loop
  or inside an ``atomic`` block (both restrictions are stated in the
  paper); this implementation additionally restricts it to the top level of
  a script body so the implicit program counter stays a plain integer,
* effect combinators must be known, referenced classes/fields must exist,
  locals must be declared before use.

The analyzer also produces the symbol information (:class:`ScriptInfo`)
that the compiler and the interpreter share, so name resolution happens in
exactly one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.engine.aggregates import AGGREGATE_NAMES
from repro.engine.expressions import FunctionCall
from repro.sgl.ast_nodes import (
    AccumLoop,
    AtomicBlock,
    Binary,
    Block,
    BoolLiteral,
    Call,
    ClassDecl,
    EffectAssign,
    FieldAccess,
    Identifier,
    IfStatement,
    LetStatement,
    LocalAssign,
    NullLiteral,
    NumberLiteral,
    Program,
    ReachLoop,
    ScriptDecl,
    SetConstructor,
    SetInsert,
    SglExpression,
    Statement,
    StringLiteral,
    Unary,
    WaitNextTick,
)
from repro.sgl.errors import SGLSemanticError

__all__ = [
    "SymbolKind",
    "Symbol",
    "ScriptInfo",
    "AnalyzedProgram",
    "analyze_program",
    "resolve_combinator",
]

#: Effect combinators accepted in class declarations, mapped to the engine
#: aggregate that implements them.  ``or``/``and`` are aliases game scripts
#: commonly use for boolean effects.
COMBINATOR_ALIASES: Mapping[str, str] = {
    "or": "any",
    "and": "all",
    **{name: name for name in AGGREGATE_NAMES},
}


def resolve_combinator(class_decl, effect: str, set_insert: bool = False) -> str:
    """The resolved ⊕ combinator for one effect assignment.

    The single source of truth shared by the runtime effect store and the
    compiler's sink-fusion metadata — they must never disagree, or the
    engine would combine a query's rows with one combinator and the store
    would merge the partial under another.  Set-inserts (``<=``) always
    combine with union regardless of the declaration, matching the
    paper's container semantics; an unknown effect (e.g. synthetic
    effects used by update components) defaults to ``choose`` so a single
    writer behaves like plain assignment.  ``class_decl`` may be ``None``.
    """
    if set_insert:
        return "union"
    effect_decl = class_decl.effect_field(effect) if class_decl is not None else None
    if effect_decl is None:
        return "choose"
    return COMBINATOR_ALIASES.get(effect_decl.combinator, effect_decl.combinator)

_TYPE_NAMES = ("number", "bool", "string", "ref", "set")


class SymbolKind(enum.Enum):
    """What a bare identifier refers to inside a script."""

    STATE_FIELD = "state_field"
    EFFECT_FIELD = "effect_field"
    LOCAL = "local"
    ACCUM_VAR = "accum_var"
    LOOP_VAR = "loop_var"
    SELF = "self"
    CLASS = "class"


@dataclass(frozen=True)
class Symbol:
    """Resolution result for one name in one scope."""

    name: str
    kind: SymbolKind
    type_name: str | None = None
    class_name: str | None = None
    combinator: str | None = None


@dataclass
class ScriptInfo:
    """Per-script facts the compiler and interpreter need."""

    script: ScriptDecl
    class_decl: ClassDecl
    #: Object variables in scope anywhere in the script: name -> class name
    #: (always includes the self name).
    object_vars: dict[str, str] = field(default_factory=dict)
    #: Names of locals declared with ``let`` anywhere in the script.
    locals: set[str] = field(default_factory=set)
    #: Accum variable name -> canonical combinator.
    accum_vars: dict[str, str] = field(default_factory=dict)
    #: Whether the script contains waitNextTick (is multi-tick).
    multi_tick: bool = False
    #: Whether the script contains atomic blocks (issues transactions).
    transactional: bool = False


@dataclass
class AnalyzedProgram:
    """A validated program plus derived symbol information."""

    program: Program
    scripts: dict[str, ScriptInfo] = field(default_factory=dict)

    def class_named(self, name: str) -> ClassDecl:
        decl = self.program.class_named(name)
        if decl is None:
            raise SGLSemanticError(f"unknown class {name!r}")
        return decl

    def info_for(self, script_name: str) -> ScriptInfo:
        try:
            return self.scripts[script_name]
        except KeyError:
            raise SGLSemanticError(f"unknown script {script_name!r}") from None


def analyze_program(program: Program) -> AnalyzedProgram:
    """Validate *program* and return the analyzed form.

    Raises :class:`SGLSemanticError` on the first violation found.
    """
    _check_classes(program)
    analyzed = AnalyzedProgram(program)
    for script in program.scripts:
        if script.name in analyzed.scripts:
            raise SGLSemanticError(f"duplicate script name {script.name!r}", script.line)
        class_decl = program.class_named(script.class_name)
        if class_decl is None:
            raise SGLSemanticError(
                f"script {script.name!r} is declared over unknown class {script.class_name!r}",
                script.line,
            )
        checker = _ScriptChecker(program, script, class_decl)
        analyzed.scripts[script.name] = checker.check()
    return analyzed


# ---------------------------------------------------------------------------
# class-level checks
# ---------------------------------------------------------------------------


def _check_classes(program: Program) -> None:
    seen_classes: set[str] = set()
    for decl in program.classes:
        if decl.name in seen_classes:
            raise SGLSemanticError(f"duplicate class name {decl.name!r}", decl.line)
        seen_classes.add(decl.name)
    for decl in program.classes:
        field_names: set[str] = set()
        for state in decl.state_fields:
            if state.name in field_names:
                raise SGLSemanticError(
                    f"duplicate field {state.name!r} in class {decl.name!r}", state.line
                )
            field_names.add(state.name)
            if state.type_name not in _TYPE_NAMES:
                raise SGLSemanticError(
                    f"unknown type {state.type_name!r} for field {state.name!r}", state.line
                )
            if state.ref_class is not None and program.class_named(state.ref_class) is None:
                raise SGLSemanticError(
                    f"field {state.name!r} references unknown class {state.ref_class!r}",
                    state.line,
                )
        for effect in decl.effect_fields:
            if effect.name in field_names:
                raise SGLSemanticError(
                    f"duplicate field {effect.name!r} in class {decl.name!r}", effect.line
                )
            field_names.add(effect.name)
            if effect.type_name not in _TYPE_NAMES:
                raise SGLSemanticError(
                    f"unknown type {effect.type_name!r} for effect {effect.name!r}", effect.line
                )
            if effect.combinator not in COMBINATOR_ALIASES:
                raise SGLSemanticError(
                    f"unknown combinator {effect.combinator!r} for effect {effect.name!r} "
                    f"(known: {', '.join(sorted(COMBINATOR_ALIASES))})",
                    effect.line,
                )


# ---------------------------------------------------------------------------
# script-level checks
# ---------------------------------------------------------------------------


@dataclass
class _Scope:
    """One lexical scope while walking a script."""

    #: Object-valued variables: name -> class name.
    object_vars: dict[str, str]
    #: Locals declared with let.
    locals: set[str]
    #: Accum variables visible for *writing* (inside their body).
    writable_accums: dict[str, str]
    #: Accum variables visible for *reading* (inside their follow block).
    readable_accums: dict[str, str]

    def child(self) -> "_Scope":
        return _Scope(
            dict(self.object_vars),
            set(self.locals),
            dict(self.writable_accums),
            dict(self.readable_accums),
        )


class _ScriptChecker:
    """Walks one script enforcing the static rules."""

    def __init__(self, program: Program, script: ScriptDecl, class_decl: ClassDecl):
        self.program = program
        self.script = script
        self.class_decl = class_decl
        self.info = ScriptInfo(script=script, class_decl=class_decl)
        self.info.object_vars[script.self_name] = script.class_name

    def check(self) -> ScriptInfo:
        scope = _Scope(
            object_vars={self.script.self_name: self.script.class_name},
            locals=set(),
            writable_accums={},
            readable_accums={},
        )
        self._check_block(self.script.body, scope, top_level=True, in_accum_body=False, in_atomic=False)
        return self.info

    # -- statements ---------------------------------------------------------------------

    def _check_block(
        self,
        block: Block,
        scope: _Scope,
        top_level: bool,
        in_accum_body: bool,
        in_atomic: bool,
    ) -> None:
        for statement in block.statements:
            self._check_statement(statement, scope, top_level, in_accum_body, in_atomic)

    def _check_statement(
        self,
        statement: Statement,
        scope: _Scope,
        top_level: bool,
        in_accum_body: bool,
        in_atomic: bool,
    ) -> None:
        if isinstance(statement, LetStatement):
            self._check_expression(statement.value, scope, reading=True)
            scope.locals.add(statement.name)
            self.info.locals.add(statement.name)
            return
        if isinstance(statement, LocalAssign):
            if statement.name not in scope.locals:
                declared = self.class_decl.state_field(statement.name) or self.class_decl.effect_field(
                    statement.name
                )
                if declared is not None:
                    raise SGLSemanticError(
                        f"cannot assign to {statement.name!r} with '='; state is read-only "
                        "and effects must use '<-'",
                        statement.line,
                    )
                raise SGLSemanticError(
                    f"assignment to undeclared local {statement.name!r}", statement.line
                )
            self._check_expression(statement.value, scope, reading=True)
            return
        if isinstance(statement, (EffectAssign, SetInsert)):
            self._check_effect_target(statement.target, scope, statement.line)
            self._check_expression(statement.value, scope, reading=True)
            return
        if isinstance(statement, IfStatement):
            self._check_expression(statement.condition, scope, reading=True)
            self._check_block(statement.then_block, scope.child(), False, in_accum_body, in_atomic)
            if statement.else_block is not None:
                self._check_block(statement.else_block, scope.child(), False, in_accum_body, in_atomic)
            return
        if isinstance(statement, AccumLoop):
            self._check_accum(statement, scope, in_atomic)
            return
        if isinstance(statement, ReachLoop):
            self._check_reach(statement, scope, in_accum_body, in_atomic)
            return
        if isinstance(statement, WaitNextTick):
            if in_accum_body:
                raise SGLSemanticError(
                    "waitNextTick is not allowed inside the first block of an accum-loop",
                    statement.line,
                )
            if in_atomic:
                raise SGLSemanticError(
                    "waitNextTick is not allowed inside an atomic block", statement.line
                )
            if not top_level:
                raise SGLSemanticError(
                    "this implementation only supports waitNextTick at the top level of a "
                    "script body",
                    statement.line,
                )
            self.info.multi_tick = True
            return
        if isinstance(statement, AtomicBlock):
            for constraint in statement.constraints:
                self._check_expression(constraint, scope, reading=True)
            self.info.transactional = True
            self._check_block(statement.body, scope.child(), False, in_accum_body, True)
            return
        raise SGLSemanticError(f"unsupported statement {type(statement).__name__}")

    def _check_accum(self, loop: AccumLoop, scope: _Scope, in_atomic: bool) -> None:
        combinator = COMBINATOR_ALIASES.get(loop.combinator)
        if combinator is None:
            raise SGLSemanticError(
                f"unknown combinator {loop.combinator!r} in accum-loop", loop.line
            )
        extent_class = self._extent_class_name(loop.extent)
        if extent_class is None:
            raise SGLSemanticError(
                "the 'from' clause of an accum-loop must name a class extent", loop.line
            )
        if loop.loop_type not in _TYPE_NAMES and self.program.class_named(loop.loop_type) is None:
            raise SGLSemanticError(
                f"unknown loop element type {loop.loop_type!r} in accum-loop", loop.line
            )
        self.info.accum_vars[loop.accum_var] = combinator
        self.info.object_vars[loop.loop_var] = extent_class

        body_scope = scope.child()
        body_scope.object_vars[loop.loop_var] = extent_class
        body_scope.writable_accums[loop.accum_var] = combinator
        self._check_block(loop.body, body_scope, False, True, in_atomic)

        follow_scope = scope.child()
        follow_scope.readable_accums[loop.accum_var] = combinator
        self._check_block(loop.follow, follow_scope, False, False, in_atomic)

    def _check_reach(
        self, loop: ReachLoop, scope: _Scope, in_accum_body: bool, in_atomic: bool
    ) -> None:
        node_class = self._resolve_class_name(loop.node_type)
        if node_class is None:
            raise SGLSemanticError(
                f"unknown node class {loop.node_type!r} in reach-loop", loop.line
            )
        via_class = self._resolve_class_name(loop.via_type)
        if via_class is None:
            raise SGLSemanticError(
                f"unknown via class {loop.via_type!r} in reach-loop", loop.line
            )
        if node_class != via_class:
            raise SGLSemanticError(
                f"reach-loop node and via classes must match ({loop.node_type!r} vs "
                f"{loop.via_type!r}): the reached set and the expansion frontier "
                "range over one extent",
                loop.line,
            )
        self._check_expression(loop.seed, scope, reading=True)
        self.info.object_vars[loop.node_var] = node_class
        self.info.object_vars[loop.via_var] = via_class

        # The condition relates the current frontier object to a candidate
        # next object — both are in scope, alongside everything outer.
        cond_scope = scope.child()
        cond_scope.object_vars[loop.via_var] = via_class
        cond_scope.object_vars[loop.node_var] = node_class
        self._check_expression(loop.condition, cond_scope, reading=True)

        # The body runs once per *reached* object; only the node variable is
        # bound there (the frontier variable exists only in the condition).
        body_scope = scope.child()
        body_scope.object_vars[loop.node_var] = node_class
        self._check_block(loop.body, body_scope, False, in_accum_body, in_atomic)

    def _resolve_class_name(self, name: str) -> str | None:
        """Case-insensitive class-name lookup (Figure 2 writes ``from UNIT``)."""
        for decl in self.program.classes:
            if decl.name == name or decl.name.lower() == name.lower():
                return decl.name
        return None

    def _extent_class_name(self, extent: SglExpression) -> str | None:
        if isinstance(extent, Identifier):
            return self._resolve_class_name(extent.name)
        return None

    # -- effect targets ---------------------------------------------------------------------

    def _check_effect_target(self, target: SglExpression, scope: _Scope, line: int) -> None:
        if isinstance(target, Identifier):
            name = target.name
            if name in scope.writable_accums:
                return
            if name in scope.readable_accums:
                raise SGLSemanticError(
                    f"accum variable {name!r} is read-only in the 'in' block", line
                )
            effect = self.class_decl.effect_field(name)
            if effect is not None:
                return
            if self.class_decl.state_field(name) is not None:
                raise SGLSemanticError(
                    f"cannot assign to state field {name!r}: state variables are read-only "
                    "during a tick",
                    line,
                )
            raise SGLSemanticError(f"{name!r} is not an effect variable", line)
        if isinstance(target, FieldAccess):
            owner_class = self._class_of_object_expression(target.target, scope)
            if owner_class is None:
                raise SGLSemanticError(
                    "effect assignment target must be an effect of self, a loop variable, "
                    "or a reference field",
                    line,
                )
            class_decl = self.program.class_named(owner_class)
            assert class_decl is not None
            if class_decl.effect_field(target.field_name) is not None:
                return
            if class_decl.state_field(target.field_name) is not None:
                raise SGLSemanticError(
                    f"cannot assign to state field {owner_class}.{target.field_name!r}", line
                )
            raise SGLSemanticError(
                f"{owner_class}.{target.field_name!r} is not an effect variable", line
            )
        raise SGLSemanticError("invalid effect assignment target", line)

    def _class_of_object_expression(self, expr: SglExpression, scope: _Scope) -> str | None:
        """Class of an object-valued expression: self, a loop var, or a ref field."""
        if isinstance(expr, Identifier):
            if expr.name in scope.object_vars:
                return scope.object_vars[expr.name]
            state = self.class_decl.state_field(expr.name)
            if state is not None and state.type_name == "ref":
                return state.ref_class or self._only_class_name()
            return None
        if isinstance(expr, FieldAccess):
            owner = self._class_of_object_expression(expr.target, scope)
            if owner is None:
                return None
            owner_decl = self.program.class_named(owner)
            if owner_decl is None:
                return None
            state = owner_decl.state_field(expr.field_name)
            if state is not None and state.type_name == "ref":
                return state.ref_class or self._only_class_name()
        return None

    def _only_class_name(self) -> str | None:
        if len(self.program.classes) == 1:
            return self.program.classes[0].name
        return None

    # -- expressions -----------------------------------------------------------------------------

    def _check_expression(self, expr: SglExpression, scope: _Scope, reading: bool) -> None:
        if isinstance(expr, (NumberLiteral, BoolLiteral, StringLiteral, NullLiteral)):
            return
        if isinstance(expr, Identifier):
            self._check_identifier_read(expr, scope)
            return
        if isinstance(expr, FieldAccess):
            self._check_field_read(expr, scope)
            return
        if isinstance(expr, Binary):
            self._check_expression(expr.left, scope, reading)
            self._check_expression(expr.right, scope, reading)
            return
        if isinstance(expr, Unary):
            self._check_expression(expr.operand, scope, reading)
            return
        if isinstance(expr, Call):
            if expr.name not in FunctionCall.known_functions():
                raise SGLSemanticError(f"unknown function {expr.name!r}", expr.line)
            for arg in expr.args:
                self._check_expression(arg, scope, reading)
            return
        if isinstance(expr, SetConstructor):
            for element in expr.elements:
                self._check_expression(element, scope, reading)
            return
        raise SGLSemanticError(f"unsupported expression {type(expr).__name__}", expr.line)

    def _check_identifier_read(self, expr: Identifier, scope: _Scope) -> None:
        name = expr.name
        if name in scope.object_vars or name in scope.locals:
            return
        if name in scope.readable_accums:
            return
        if name in scope.writable_accums:
            raise SGLSemanticError(
                f"accum variable {name!r} may not be read inside the accum-loop body", expr.line
            )
        state = self.class_decl.state_field(name)
        if state is not None:
            return
        effect = self.class_decl.effect_field(name)
        if effect is not None:
            raise SGLSemanticError(
                f"effect variable {name!r} is write-only and cannot be read during a tick",
                expr.line,
            )
        if self._extent_class_name(expr) is not None:
            return
        raise SGLSemanticError(f"unknown identifier {name!r}", expr.line)

    def _check_field_read(self, expr: FieldAccess, scope: _Scope) -> None:
        owner_class = self._class_of_object_expression(expr.target, scope)
        if owner_class is None:
            # Not an object expression we understand — validate the inner
            # expression and accept (e.g. set-valued locals used with size()).
            self._check_expression(expr.target, scope, reading=True)
            return
        class_decl = self.program.class_named(owner_class)
        assert class_decl is not None
        if class_decl.state_field(expr.field_name) is not None:
            return
        if class_decl.effect_field(expr.field_name) is not None:
            raise SGLSemanticError(
                f"effect variable {owner_class}.{expr.field_name!r} is write-only and cannot "
                "be read during a tick",
                expr.line,
            )
        raise SGLSemanticError(
            f"class {owner_class!r} has no field {expr.field_name!r}", expr.line
        )
