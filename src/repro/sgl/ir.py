"""Intermediate representation shared by the SGL interpreter, compiler and
the game runtime.

Both execution strategies — the object-at-a-time interpreter and the
compiled set-at-a-time plans — reduce a tick's worth of script execution to
the same artefacts:

* :class:`EffectAssignment` — "write value *v* into effect *e* of object
  *o*"; the tick engine groups these by target and combines them with the
  effect's declared combinator (the ⊕ of the paper).
* :class:`TransactionRequest` — the effect assignments of one ``atomic``
  block issued by one acting object, plus the constraints that must hold
  after the update step for the block to commit (Section 3.1).
* :class:`EffectQuery` — the compiled form: a relational plan whose result
  rows each denote one effect assignment (produced only by the compiler).

Keeping this IR identical across strategies is what makes the equivalence
tests (compiled results == interpreted results) and experiment E2 (their
relative performance) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.algebra import LogicalPlan
from repro.sgl.ast_nodes import SglExpression

__all__ = [
    "EffectAssignment",
    "TransactionRequest",
    "EffectQuery",
    "TARGET_COLUMN",
    "VALUE_COLUMN",
    "ACTOR_COLUMN",
]

#: Column names used by compiled effect queries for their output rows.
TARGET_COLUMN = "__target__"
VALUE_COLUMN = "__value__"
ACTOR_COLUMN = "__actor__"


@dataclass(frozen=True)
class EffectAssignment:
    """One value written into one effect variable of one object."""

    class_name: str
    target_id: Any
    effect: str
    value: Any
    #: True when the assignment came from ``<=`` (insert into a set effect).
    set_insert: bool = False


@dataclass(frozen=True)
class TransactionRequest:
    """An atomic block instance: its writes and its commit constraints."""

    actor_class: str
    actor_id: Any
    assignments: tuple[EffectAssignment, ...]
    #: Raw SGL constraint expressions, evaluated against post-update state.
    constraints: tuple[SglExpression, ...] = ()
    #: Which script and atomic block produced the request (for debugging).
    script_name: str = ""
    block_index: int = 0


@dataclass
class EffectQuery:
    """A compiled effect computation.

    Executing ``plan`` yields rows with at least ``TARGET_COLUMN`` (the key
    of the object receiving the effect) and ``VALUE_COLUMN`` (the value
    assigned).  Transactional queries additionally carry ``ACTOR_COLUMN``
    so the runtime can group a tick's rows back into per-actor
    :class:`TransactionRequest` objects.
    """

    script_name: str
    class_name: str
    target_class: str
    effect: str
    plan: LogicalPlan
    set_insert: bool = False
    #: Segment of a multi-tick script this query belongs to.
    segment: int = 0
    #: Non-empty when the effect assignment sits inside an atomic block.
    constraints: tuple[SglExpression, ...] = ()
    transactional: bool = False
    block_index: int = 0
    #: Human-readable provenance used by the debugger (Section 3.3).
    description: str = ""
    #: Stable identity ``script/segment/site`` assigned by the compiler.
    #: Unlike ``id(query)`` it survives garbage collection and recompiles,
    #: so the runtime can memoize per-query decisions (incremental
    #: registration, tick-pipeline membership) without id-reuse hazards.
    query_id: str = ""
    #: Resolved ⊕ combinator of the target effect (aliases normalized;
    #: ``union`` for set-inserts).  Lets the engine fuse effect
    #: aggregation into the plan without consulting SGL declarations.
    combinator: str = "choose"
