"""Tokenizer for the SGL scripting language.

The surface syntax follows the fragments in the paper: C-style class
declarations with ``state:`` and ``effects:`` sections (Figure 1),
imperative scripts with ``<-`` effect assignment and ``<=`` set-effect
insertion, ``accum`` loops (Figure 2), ``waitNextTick`` and ``atomic``
blocks.  Comments are ``//`` to end of line and ``/* ... */``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.sgl.errors import SGLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved words of the language.
KEYWORDS = frozenset(
    {
        "class",
        "state",
        "effects",
        "script",
        "number",
        "bool",
        "string",
        "ref",
        "set",
        "if",
        "else",
        "let",
        "accum",
        "with",
        "over",
        "from",
        "in",
        "reach",
        "via",
        "on",
        "iterate",
        "waitNextTick",
        "atomic",
        "require",
        "true",
        "false",
        "null",
        "and",
        "or",
        "not",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = [
    "<-",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ":",
    ",",
    ".",
]


@dataclass(frozen=True)
class Token:
    """A lexical token: kind, text, and source position (1-based)."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    text: str
    line: int
    column: int

    def is_op(self, *texts: str) -> bool:
        return self.kind == "op" and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind == "keyword" and self.text in texts

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a list ending with an ``eof`` token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # Whitespace.
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise SGLSyntaxError("unterminated block comment", line, column)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        # String literals.
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise SGLSyntaxError("unterminated string literal", line, column)
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j + 1])
                    j += 2
                    continue
                buf.append(source[j])
                j += 1
            if j >= n:
                raise SGLSyntaxError("unterminated string literal", line, column)
            text = "".join(buf)
            yield Token("string", text, line, column)
            column += j + 1 - i
            i = j + 1
            continue
        # Numbers.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # A trailing '.' followed by a non-digit belongs to field access.
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token("number", source[i:j], line, column)
            column += j - i
            i = j
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, column)
            column += j - i
            i = j
            continue
        # Operators and punctuation.
        matched = None
        for op in _OPERATORS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None:
            raise SGLSyntaxError(f"unexpected character {ch!r}", line, column)
        yield Token("op", matched, line, column)
        column += len(matched)
        i += len(matched)
    yield Token("eof", "", line, column)
