"""Multi-tick scripts: ``waitNextTick`` segmentation (Section 3.2).

The paper adds ``waitNextTick`` so that a sequence of behaviours spanning
several ticks can be written linearly instead of as an explicit state
machine: *"Note that waitNextTick essentially serves as a program counter
… there is a direct translation between multi-tick programs using
waitNextTick and standard single-tick SGL programs.  We can simply
reintroduce state variables and conditions to indicate where the script
should begin."*

This module performs exactly that translation: a script body is split into
*segments* at top-level ``waitNextTick`` statements, and an implicit
program-counter state variable (``__pc_<script>``) selects which segment an
object executes during a tick.  The runtime scheduler
(:mod:`repro.runtime.scheduler`) stores and advances the counter; reactive
interrupts (Section 3.2) reset it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sgl.ast_nodes import Block, ScriptDecl, Statement, WaitNextTick

__all__ = ["ScriptSegment", "SegmentedScript", "segment_script", "pc_variable_name"]


def pc_variable_name(script_name: str) -> str:
    """The name of the implicit program-counter variable for a script."""
    return f"__pc_{script_name}"


@dataclass(frozen=True)
class ScriptSegment:
    """One contiguous run of statements between waitNextTick boundaries."""

    index: int
    statements: tuple[Statement, ...]
    #: Whether a waitNextTick follows this segment (False only for the last).
    waits_after: bool

    def as_block(self) -> Block:
        return Block(self.statements)


@dataclass(frozen=True)
class SegmentedScript:
    """A script split into per-tick segments plus its pc variable name."""

    script: ScriptDecl
    segments: tuple[ScriptSegment, ...]

    @property
    def pc_variable(self) -> str:
        return pc_variable_name(self.script.name)

    @property
    def is_multi_tick(self) -> bool:
        return len(self.segments) > 1

    def next_pc(self, current: int) -> int:
        """The program counter after executing segment *current*.

        The last segment wraps around to 0, so a multi-tick behaviour
        repeats — matching how game loops re-issue idle behaviours.  Scripts
        that should not repeat can simply make their first segment a no-op
        guard.
        """
        if current + 1 < len(self.segments):
            return current + 1
        return 0

    def segment_for(self, pc: int) -> ScriptSegment:
        if not self.segments:
            return ScriptSegment(0, (), False)
        return self.segments[max(0, min(pc, len(self.segments) - 1))]


def segment_script(script: ScriptDecl) -> SegmentedScript:
    """Split *script* into segments at top-level ``waitNextTick`` statements."""
    segments: list[ScriptSegment] = []
    current: list[Statement] = []
    for statement in script.body.statements:
        if isinstance(statement, WaitNextTick):
            segments.append(ScriptSegment(len(segments), tuple(current), waits_after=True))
            current = []
        else:
            current.append(statement)
    segments.append(ScriptSegment(len(segments), tuple(current), waits_after=False))
    return SegmentedScript(script=script, segments=tuple(segments))
