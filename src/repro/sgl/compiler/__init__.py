"""The SGL-to-relational-algebra compiler."""

from repro.sgl.compiler.expr_lower import LoweringContext, ObjectBinding, lower_expression
from repro.sgl.compiler.script_compiler import CompiledProgram, CompiledScript, SGLCompiler

__all__ = [
    "LoweringContext",
    "ObjectBinding",
    "lower_expression",
    "CompiledProgram",
    "CompiledScript",
    "SGLCompiler",
]
