"""Lowering SGL expressions to engine expressions.

The compiler rewrites script expressions — written against a single acting
object — into relational expressions over the columns of the compiled
plan's row, using a :class:`LoweringContext` that records what each name
means at the current program point:

* fields of ``self`` become ``<self alias>.<field>`` column references,
* loop variables of enclosing accum-loops become ``<loop alias>.<field>``,
* script locals are substituted inline (they were lowered when declared),
* readable accum variables become references to the aggregate output column
  joined back into the plan,
* reads through a reference field of ``self`` (``self.target.x``) become
  columns of a dereference join added by the script compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Conditional,
    Expression,
    FunctionCall,
    Literal,
    SetLiteral,
    UnaryOp,
)
from repro.sgl.ast_nodes import (
    Binary,
    BoolLiteral,
    Call,
    ClassDecl,
    FieldAccess,
    Identifier,
    NullLiteral,
    NumberLiteral,
    Program,
    SetConstructor,
    SglExpression,
    StringLiteral,
    Unary,
)
from repro.sgl.errors import SGLCompileError

__all__ = ["ObjectBinding", "LoweringContext", "lower_expression"]


@dataclass(frozen=True)
class ObjectBinding:
    """An object-valued name bound to a plan alias (self, loop variables)."""

    class_name: str
    alias: str

    def column(self, field_name: str) -> ColumnRef:
        return ColumnRef(f"{self.alias}.{field_name}")

    def key_column(self) -> ColumnRef:
        return self.column("id")


@dataclass
class LoweringContext:
    """Everything name resolution needs at one point of the compilation."""

    program: Program
    class_decl: ClassDecl
    self_name: str
    #: Object variables in scope: name -> binding.
    objects: dict[str, ObjectBinding] = field(default_factory=dict)
    #: Script locals already lowered: name -> engine expression.
    locals: dict[str, Expression] = field(default_factory=dict)
    #: Readable accum variables: name -> engine expression (coalesced column).
    accums: dict[str, Expression] = field(default_factory=dict)
    #: Reference fields of self that have a dereference join: field -> binding.
    ref_joins: dict[str, ObjectBinding] = field(default_factory=dict)

    def child(self) -> "LoweringContext":
        return LoweringContext(
            program=self.program,
            class_decl=self.class_decl,
            self_name=self.self_name,
            objects=dict(self.objects),
            locals=dict(self.locals),
            accums=dict(self.accums),
            ref_joins=dict(self.ref_joins),
        )

    @property
    def self_binding(self) -> ObjectBinding:
        return self.objects[self.self_name]


def lower_expression(expr: SglExpression, context: LoweringContext) -> Expression:
    """Lower one SGL expression to an engine expression."""
    if isinstance(expr, NumberLiteral):
        return Literal(expr.value)
    if isinstance(expr, BoolLiteral):
        return Literal(expr.value)
    if isinstance(expr, StringLiteral):
        return Literal(expr.value)
    if isinstance(expr, NullLiteral):
        return Literal(None)
    if isinstance(expr, Identifier):
        return _lower_identifier(expr, context)
    if isinstance(expr, FieldAccess):
        return _lower_field_access(expr, context)
    if isinstance(expr, Binary):
        left = lower_expression(expr.left, context)
        right = lower_expression(expr.right, context)
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, Unary):
        operand = lower_expression(expr.operand, context)
        return UnaryOp(expr.op, operand)
    if isinstance(expr, Call):
        args = [lower_expression(a, context) for a in expr.args]
        try:
            return FunctionCall(expr.name, args)
        except Exception as exc:  # unknown function
            raise SGLCompileError(f"cannot compile call to {expr.name!r}", expr.line) from exc
    if isinstance(expr, SetConstructor):
        return SetLiteral([lower_expression(e, context) for e in expr.elements])
    raise SGLCompileError(f"cannot compile expression {type(expr).__name__}", expr.line)


def _lower_identifier(expr: Identifier, context: LoweringContext) -> Expression:
    name = expr.name
    if name in context.objects:
        return context.objects[name].key_column()
    if name in context.locals:
        return context.locals[name]
    if name in context.accums:
        return context.accums[name]
    state = context.class_decl.state_field(name)
    if state is not None:
        return context.self_binding.column(name)
    if context.class_decl.effect_field(name) is not None:
        raise SGLCompileError(
            f"effect variable {name!r} cannot be read during a tick", expr.line
        )
    raise SGLCompileError(f"unknown identifier {name!r}", expr.line)


def _lower_field_access(expr: FieldAccess, context: LoweringContext) -> Expression:
    target = expr.target
    # <object var>.<field>
    if isinstance(target, Identifier) and target.name in context.objects:
        binding = context.objects[target.name]
        owner = context.program.class_named(binding.class_name)
        if owner is not None and owner.effect_field(expr.field_name) is not None:
            raise SGLCompileError(
                f"effect variable {binding.class_name}.{expr.field_name!r} cannot be read",
                expr.line,
            )
        return binding.column(expr.field_name)
    # self.<ref field>.<field> or <ref field>.<field>: go through the deref join.
    ref_field = _ref_field_name(target, context)
    if ref_field is not None:
        binding = context.ref_joins.get(ref_field)
        if binding is None:
            raise SGLCompileError(
                f"reading through reference field {ref_field!r} requires a dereference join "
                "that was not planned (nested references are not supported by the compiler)",
                expr.line,
            )
        return binding.column(expr.field_name)
    raise SGLCompileError(
        f"cannot compile field access {expr.field_name!r} on {target!r}", expr.line
    )


def _ref_field_name(target: SglExpression, context: LoweringContext) -> str | None:
    """If *target* denotes a ref-typed state field of self, return its name."""
    if isinstance(target, Identifier):
        state = context.class_decl.state_field(target.name)
        if state is not None and state.type_name == "ref":
            return target.name
        return None
    if isinstance(target, FieldAccess) and isinstance(target.target, Identifier):
        if target.target.name == context.self_name:
            state = context.class_decl.state_field(target.field_name)
            if state is not None and state.type_name == "ref":
                return target.field_name
    return None


def collect_ref_reads(expr_or_node, context: LoweringContext, out: set[str]) -> None:
    """Collect names of ref fields of self that are read through in *expr_or_node*.

    Used by the script compiler as a prepass so it can add the dereference
    joins before lowering.  Accepts any AST node with child expressions.
    """
    if isinstance(expr_or_node, FieldAccess):
        ref_field = _ref_field_name(expr_or_node.target, context)
        if ref_field is not None:
            out.add(ref_field)
        collect_ref_reads(expr_or_node.target, context, out)
        return
    for attr in ("left", "right", "operand", "condition", "value", "target", "extent"):
        child = getattr(expr_or_node, attr, None)
        if isinstance(child, SglExpression):
            collect_ref_reads(child, context, out)
    for attr in ("args", "elements", "constraints"):
        children = getattr(expr_or_node, attr, None)
        if children:
            for child in children:
                if isinstance(child, SglExpression):
                    collect_ref_reads(child, context, out)


def coalesce(expression: Expression, default: object) -> Expression:
    """``expression`` if it is not null, else ``default`` (engine-level)."""
    return Conditional(BinaryOp("==", expression, Literal(None)), Literal(default), expression)
