"""Compiling SGL scripts to relational algebra (Section 2 of the paper).

The compiler turns the *query step* and *effect step* of a script into
logical plans: one :class:`~repro.sgl.ir.EffectQuery` per effect-assignment
site.  Executing all of a tick's effect queries set-at-a-time and combining
the produced assignments with the declared combinators is equivalent to
running the object-at-a-time interpreter over every object — that is the
core claim the reproduction verifies and benchmarks (experiment E2).

Lowering rules:

* the acting object's extent becomes a scan aliased with the script's
  ``self`` name; every ``if`` contributes its condition to a path predicate,
* an accum-loop becomes (a) effect queries over the join ``self × extent``
  for assignments inside its body, and (b) an aggregate sub-plan grouping
  the body's accum contributions by the acting object, left-joined back so
  the follow block can read the combined value (missing groups coalesce to
  the combinator's identity),
* reads through a reference field of ``self`` become a dereference left
  join against the referenced class's extent,
* atomic blocks mark their effect queries transactional and attach the
  block's constraints; the rows additionally carry the acting object's key
  so the runtime can reassemble per-actor transaction requests,
* multi-tick scripts compile per segment, guarded by a predicate on the
  implicit program-counter column.

Unsupported constructs (nested reference reads, conditionally re-assigned
locals) raise :class:`SGLCompileError`; the interpreter remains the
fallback execution strategy for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.aggregates import make_accumulator
from repro.engine.algebra import (
    Aggregate,
    AggregateSpec,
    Fixpoint,
    Join,
    LogicalPlan,
    Project,
    RecursiveRef,
    Select,
    Union,
)
from repro.engine.expressions import BinaryOp, ColumnRef, Expression, Literal, UnaryOp
from repro.engine.schema import Column, Schema
from repro.sgl.ast_nodes import (
    AccumLoop,
    AtomicBlock,
    Block,
    EffectAssign,
    FieldAccess,
    Identifier,
    IfStatement,
    LetStatement,
    LocalAssign,
    ReachLoop,
    ScriptDecl,
    SetInsert,
    SglExpression,
    Statement,
    WaitNextTick,
)
from repro.sgl.compiler.expr_lower import (
    LoweringContext,
    ObjectBinding,
    coalesce,
    collect_ref_reads,
    lower_expression,
)
from repro.sgl.errors import SGLCompileError
from repro.sgl.ir import ACTOR_COLUMN, EffectQuery, TARGET_COLUMN, VALUE_COLUMN
from repro.sgl.multitick import SegmentedScript, pc_variable_name, segment_script
from repro.sgl.schema_gen import GeneratedSchema, SchemaGenerator
from repro.sgl.semantics import AnalyzedProgram, COMBINATOR_ALIASES, resolve_combinator

__all__ = ["CompiledScript", "CompiledProgram", "SGLCompiler"]

#: Internal column names of a reach-loop's closure relation.  Fixed — not
#: derived from the loop's variable names — so two scripts that spell their
#: variables differently still produce identical MQO fingerprints and share
#: one closure materialization per tick.
_REACH_ACTOR = "__actor__"
_REACH_NODE = "__node__"
_REACH_SRC = "__src__"
_REACH_DST = "__dst__"

#: Combinator identities used when an accum-loop's aggregate has no rows for
#: an acting object (the left join produced a null).
_COMBINATOR_IDENTITY = {
    "sum": 0,
    "count": 0,
    "any": False,
    "all": True,
    "union": frozenset(),
}


@dataclass
class CompiledScript:
    """All effect queries of one script, grouped by multi-tick segment."""

    script: ScriptDecl
    segmented: SegmentedScript
    #: segment index -> effect queries for that segment.
    queries_by_segment: dict[int, list[EffectQuery]] = field(default_factory=dict)

    @property
    def is_multi_tick(self) -> bool:
        return self.segmented.is_multi_tick

    def all_queries(self) -> list[EffectQuery]:
        out: list[EffectQuery] = []
        for segment in sorted(self.queries_by_segment):
            out.extend(self.queries_by_segment[segment])
        return out


@dataclass
class CompiledProgram:
    """Compiled form of every script in a program."""

    scripts: dict[str, CompiledScript] = field(default_factory=dict)

    def script(self, name: str) -> CompiledScript:
        try:
            return self.scripts[name]
        except KeyError:
            raise SGLCompileError(f"script {name!r} was not compiled") from None


class SGLCompiler:
    """Compiles analyzed SGL programs against generated schemas."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        schemas: dict[str, GeneratedSchema],
        schema_generator: SchemaGenerator,
    ):
        self.analyzed = analyzed
        self.program = analyzed.program
        self.schemas = schemas
        self.schema_generator = schema_generator

    # -- public API ------------------------------------------------------------------------

    def compile_program(self) -> CompiledProgram:
        compiled = CompiledProgram()
        for script in self.program.scripts:
            compiled.scripts[script.name] = self.compile_script(script.name)
        return compiled

    def compile_script(self, script_name: str) -> CompiledScript:
        script = self.program.script_named(script_name)
        if script is None:
            raise SGLCompileError(f"unknown script {script_name!r}")
        segmented = segment_script(script)
        compiled = CompiledScript(script=script, segmented=segmented)
        for segment in segmented.segments:
            walker = _SegmentCompiler(self, script, segment.index, segmented)
            compiled.queries_by_segment[segment.index] = walker.compile(segment.statements)
        return compiled

    # -- helpers used by the segment walker ---------------------------------------------------

    def extent_plan(self, class_name: str, alias: str) -> LogicalPlan:
        generated = self.schemas.get(class_name)
        if generated is None:
            raise SGLCompileError(f"no generated schema for class {class_name!r}")
        return self.schema_generator.extent_plan(generated, alias)

    def resolve_extent_class(self, extent: SglExpression) -> str:
        if isinstance(extent, Identifier):
            for decl in self.program.classes:
                if decl.name == extent.name or decl.name.lower() == extent.name.lower():
                    return decl.name
        raise SGLCompileError(f"accum-loop extent must name a class, got {extent!r}")

    def resolve_class_name(self, name: str) -> str:
        for decl in self.program.classes:
            if decl.name == name or decl.name.lower() == name.lower():
                return decl.name
        raise SGLCompileError(f"unknown class {name!r}")


class _SegmentCompiler:
    """Walks one script segment, producing effect queries."""

    def __init__(
        self,
        compiler: SGLCompiler,
        script: ScriptDecl,
        segment_index: int,
        segmented: SegmentedScript,
    ):
        self.compiler = compiler
        self.program = compiler.program
        self.script = script
        self.class_decl = compiler.analyzed.class_named(script.class_name)
        self.segment_index = segment_index
        self.segmented = segmented
        self.queries: list[EffectQuery] = []
        self._accum_counter = 0
        self._atomic_counter = 0
        self._in_reach_body = False

    # -- entry point -----------------------------------------------------------------------

    def compile(self, statements: Sequence[Statement]) -> list[EffectQuery]:
        context = LoweringContext(
            program=self.program,
            class_decl=self.class_decl,
            self_name=self.script.self_name,
        )
        self_binding = ObjectBinding(self.script.class_name, self.script.self_name)
        context.objects[self.script.self_name] = self_binding

        base_plan = self.compiler.extent_plan(self.script.class_name, self.script.self_name)
        base_plan = self._add_ref_joins(base_plan, statements, context)

        condition: Expression = Literal(True)
        if self.segmented.is_multi_tick:
            pc_column = ColumnRef(f"{self.script.self_name}.{pc_variable_name(self.script.name)}")
            condition = BinaryOp("==", pc_column, Literal(self.segment_index))

        self._walk(statements, base_plan, condition, context, atomic=None)
        return self.queries

    # -- reference dereference joins ------------------------------------------------------------

    def _add_ref_joins(
        self,
        base_plan: LogicalPlan,
        statements: Sequence[Statement],
        context: LoweringContext,
    ) -> LogicalPlan:
        ref_fields: set[str] = set()
        self._collect_refs(statements, context, ref_fields)
        plan = base_plan
        for ref_field in sorted(ref_fields):
            state = self.class_decl.state_field(ref_field)
            assert state is not None
            ref_class = state.ref_class
            if ref_class is None:
                if len(self.program.classes) == 1:
                    ref_class = self.program.classes[0].name
                else:
                    raise SGLCompileError(
                        f"reference field {ref_field!r} needs an explicit class in a "
                        "multi-class program"
                    )
            alias = f"__ref_{ref_field}"
            binding = ObjectBinding(ref_class, alias)
            context.ref_joins[ref_field] = binding
            join_condition = BinaryOp(
                "==",
                ColumnRef(f"{self.script.self_name}.{ref_field}"),
                ColumnRef(f"{alias}.id"),
            )
            plan = Join(plan, self.compiler.extent_plan(ref_class, alias), join_condition, how="left")
        return plan

    def _collect_refs(
        self, statements: Sequence[Statement], context: LoweringContext, out: set[str]
    ) -> None:
        for statement in statements:
            collect_ref_reads(statement, context, out)
            if isinstance(statement, IfStatement):
                collect_ref_reads(statement.condition, context, out)
                self._collect_refs(statement.then_block.statements, context, out)
                if statement.else_block is not None:
                    self._collect_refs(statement.else_block.statements, context, out)
            elif isinstance(statement, AccumLoop):
                self._collect_refs(statement.body.statements, context, out)
                self._collect_refs(statement.follow.statements, context, out)
            elif isinstance(statement, ReachLoop):
                collect_ref_reads(statement.seed, context, out)
                self._collect_refs(statement.body.statements, context, out)
            elif isinstance(statement, AtomicBlock):
                self._collect_refs(statement.body.statements, context, out)

    # -- statement walking -------------------------------------------------------------------------

    def _walk(
        self,
        statements: Sequence[Statement],
        plan: LogicalPlan,
        condition: Expression,
        context: LoweringContext,
        atomic: AtomicBlock | None,
    ) -> tuple[LogicalPlan, LoweringContext]:
        """Walk statements; returns the (possibly extended) plan and context
        so accum-loop follow blocks see the aggregate join."""
        for statement in statements:
            if isinstance(statement, LetStatement):
                context.locals[statement.name] = lower_expression(statement.value, context)
                continue
            if isinstance(statement, LocalAssign):
                context.locals[statement.name] = lower_expression(statement.value, context)
                continue
            if isinstance(statement, (EffectAssign, SetInsert)):
                set_insert = isinstance(statement, SetInsert)
                self._emit_effect_query(statement, plan, condition, context, atomic, set_insert)
                continue
            if isinstance(statement, IfStatement):
                lowered = lower_expression(statement.condition, context)
                then_condition = BinaryOp("&&", condition, lowered)
                self._walk(
                    statement.then_block.statements, plan, then_condition, context.child(), atomic
                )
                if statement.else_block is not None:
                    else_condition = BinaryOp("&&", condition, UnaryOp("!", lowered))
                    self._walk(
                        statement.else_block.statements, plan, else_condition, context.child(), atomic
                    )
                continue
            if isinstance(statement, AccumLoop):
                plan, context = self._compile_accum(statement, plan, condition, context, atomic)
                continue
            if isinstance(statement, ReachLoop):
                self._compile_reach(statement, plan, condition, context, atomic)
                continue
            if isinstance(statement, WaitNextTick):
                # Removed by segmentation; reaching one here means the script
                # was compiled without segmentation, which is a bug.
                raise SGLCompileError("waitNextTick encountered inside a segment", statement.line)
            if isinstance(statement, AtomicBlock):
                if atomic is not None:
                    raise SGLCompileError("nested atomic blocks are not supported", statement.line)
                self._atomic_counter += 1
                self._walk(
                    statement.body.statements, plan, condition, context.child(), statement
                )
                continue
            raise SGLCompileError(f"cannot compile statement {type(statement).__name__}")
        return plan, context

    # -- effect assignment sites -------------------------------------------------------------------

    def _emit_effect_query(
        self,
        statement: EffectAssign | SetInsert,
        plan: LogicalPlan,
        condition: Expression,
        context: LoweringContext,
        atomic: AtomicBlock | None,
        set_insert: bool,
    ) -> None:
        target = statement.target
        # Writes to a writable accum variable are handled by _compile_accum.
        if isinstance(target, Identifier) and target.name.startswith("__accum_placeholder__"):
            raise SGLCompileError("internal error: accum placeholder leaked")
        target_class, target_key = self._resolve_target(target, context)
        value = lower_expression(statement.value, context)
        projections: dict[str, Expression] = {
            TARGET_COLUMN: target_key,
            VALUE_COLUMN: value,
        }
        if atomic is not None:
            projections[ACTOR_COLUMN] = context.self_binding.key_column()
        query_plan: LogicalPlan = Project(Select(plan, condition), projections)
        effect_name = target.field_name if isinstance(target, FieldAccess) else target.name
        self.queries.append(
            EffectQuery(
                script_name=self.script.name,
                class_name=self.script.class_name,
                target_class=target_class,
                effect=effect_name,
                plan=query_plan,
                set_insert=set_insert,
                segment=self.segment_index,
                constraints=atomic.constraints if atomic is not None else (),
                transactional=atomic is not None,
                block_index=self._atomic_counter if atomic is not None else 0,
                description=f"{self.script.name}:{getattr(statement, 'line', 0)} "
                f"{effect_name} <- ...",
                query_id=f"{self.script.name}/{self.segment_index}/{len(self.queries)}",
                combinator=self._effect_combinator(target_class, effect_name, set_insert),
            )
        )

    def _effect_combinator(self, target_class: str, effect: str, set_insert: bool) -> str:
        """The resolved ⊕ combinator of the target effect, via the same
        :func:`~repro.sgl.semantics.resolve_combinator` the runtime effect
        store uses, so the engine-side effect sink and the store can never
        disagree."""
        return resolve_combinator(
            self.compiler.analyzed.class_named(target_class), effect, set_insert
        )

    def _resolve_target(
        self, target: SglExpression, context: LoweringContext
    ) -> tuple[str, Expression]:
        """Return (target class, expression computing the target object key)."""
        if isinstance(target, Identifier):
            effect = self.class_decl.effect_field(target.name)
            if effect is None:
                raise SGLCompileError(
                    f"{target.name!r} is not an effect of class {self.class_decl.name!r}",
                    target.line,
                )
            return self.script.class_name, context.self_binding.key_column()
        if isinstance(target, FieldAccess):
            owner = target.target
            # <loop var>.<effect> or <self>.<effect>
            if isinstance(owner, Identifier) and owner.name in context.objects:
                binding = context.objects[owner.name]
                return binding.class_name, binding.key_column()
            # <ref field>.<effect> / self.<ref field>.<effect>
            ref_field = self._ref_field(owner)
            if ref_field is not None:
                state = self.class_decl.state_field(ref_field)
                assert state is not None
                ref_class = state.ref_class or (
                    self.program.classes[0].name if len(self.program.classes) == 1 else None
                )
                if ref_class is None:
                    raise SGLCompileError(
                        f"reference field {ref_field!r} needs an explicit class", target.line
                    )
                return ref_class, ColumnRef(f"{self.script.self_name}.{ref_field}")
            raise SGLCompileError(
                f"unsupported effect target {target.field_name!r}", target.line
            )
        raise SGLCompileError("invalid effect target", getattr(target, "line", 0))

    def _ref_field(self, owner: SglExpression) -> str | None:
        if isinstance(owner, Identifier):
            state = self.class_decl.state_field(owner.name)
            if state is not None and state.type_name == "ref":
                return owner.name
        if isinstance(owner, FieldAccess) and isinstance(owner.target, Identifier):
            if owner.target.name == self.script.self_name:
                state = self.class_decl.state_field(owner.field_name)
                if state is not None and state.type_name == "ref":
                    return owner.field_name
        return None

    # -- reach-loops --------------------------------------------------------------------------------

    def _compile_reach(
        self,
        loop: ReachLoop,
        plan: LogicalPlan,
        condition: Expression,
        context: LoweringContext,
        atomic: AtomicBlock | None,
    ) -> None:
        """Lower a reach-loop to a :class:`Fixpoint` plan.

        The closure relation holds ``(actor id, reached node id)`` pairs.
        Its base seeds every acting object on this path with its seed node;
        its step joins the accumulating closure against an *edge relation*
        derived once from ``via × node`` pairs satisfying the condition.
        Deriving the edges outside the recursion keeps the step linear —
        the physical planner hashes the edge side once per execution and
        probes it with each round's frontier — and makes the edge subplan
        itself MQO-shareable.  Body effect queries then join the actor
        extent back to the closure and the node extent, one row per
        (actor, reached node) pair.
        """
        if self._in_reach_body:
            raise SGLCompileError(
                "nested reach-loops are not supported by the set-at-a-time "
                "compiler; use the interpreter for this script",
                loop.line,
            )
        node_class = self.compiler.resolve_class_name(loop.node_type)
        self_key = context.self_binding.key_column()

        seed_value = lower_expression(loop.seed, context)
        base = Project(
            Select(plan, condition),
            {_REACH_ACTOR: self_key, _REACH_NODE: seed_value},
        )

        # The condition may reference only the via/node variables: the edge
        # relation is derived once for all actors, so a condition over the
        # acting object would have to re-derive edges per actor.
        edge_context = LoweringContext(
            program=self.program,
            class_decl=self.class_decl,
            self_name=self.script.self_name,
        )
        edge_context.objects[loop.via_var] = ObjectBinding(node_class, loop.via_var)
        edge_context.objects[loop.node_var] = ObjectBinding(node_class, loop.node_var)
        cond = lower_expression(loop.condition, edge_context)
        prefixes = (f"{loop.via_var}.", f"{loop.node_var}.")
        for column in cond.columns():
            if not column.startswith(prefixes):
                raise SGLCompileError(
                    "a reach-loop condition may only reference its via/node "
                    f"variables, found {column!r}; use the interpreter for "
                    "conditions over the acting object",
                    loop.line,
                )
        edges = Project(
            Select(
                Join(
                    self.compiler.extent_plan(node_class, loop.via_var),
                    self.compiler.extent_plan(node_class, loop.node_var),
                    None,
                    how="cross",
                ),
                cond,
            ),
            {
                _REACH_SRC: ColumnRef(f"{loop.via_var}.id"),
                _REACH_DST: ColumnRef(f"{loop.node_var}.id"),
            },
        )

        closure_schema = Schema([Column(_REACH_ACTOR), Column(_REACH_NODE)])
        step = Project(
            Join(
                RecursiveRef(closure_schema),
                edges,
                BinaryOp("==", ColumnRef(_REACH_NODE), ColumnRef(_REACH_SRC)),
                how="inner",
            ),
            {
                _REACH_ACTOR: ColumnRef(_REACH_ACTOR),
                _REACH_NODE: ColumnRef(_REACH_DST),
            },
        )
        closure = Fixpoint(base, step, max_rounds=loop.max_rounds)

        node_alias = loop.node_var
        body_plan = Join(
            Join(
                plan,
                closure,
                BinaryOp("==", self_key, ColumnRef(_REACH_ACTOR)),
                how="inner",
            ),
            self.compiler.extent_plan(node_class, node_alias),
            BinaryOp("==", ColumnRef(_REACH_NODE), ColumnRef(f"{node_alias}.id")),
            how="inner",
        )
        body_context = context.child()
        body_context.objects[loop.node_var] = ObjectBinding(node_class, node_alias)
        self._in_reach_body = True
        try:
            self._walk(loop.body.statements, body_plan, condition, body_context, atomic)
        finally:
            self._in_reach_body = False

    # -- accum-loops --------------------------------------------------------------------------------

    def _compile_accum(
        self,
        loop: AccumLoop,
        plan: LogicalPlan,
        condition: Expression,
        context: LoweringContext,
        atomic: AtomicBlock | None,
    ) -> tuple[LogicalPlan, LoweringContext]:
        combinator = COMBINATOR_ALIASES.get(loop.combinator, loop.combinator)
        make_accumulator(combinator)  # validate the name early
        extent_class = self.compiler.resolve_extent_class(loop.extent)
        self._accum_counter += 1
        loop_alias = f"{loop.loop_var}"
        join_plan = Join(plan, self.compiler.extent_plan(extent_class, loop_alias), None, how="cross")

        body_context = context.child()
        body_context.objects[loop.loop_var] = ObjectBinding(extent_class, loop_alias)

        # (a) contributions to the accum variable, one sub-plan per assignment site.
        contributions = self._collect_accum_contributions(
            loop.accum_var, loop.body.statements, join_plan, condition, body_context, atomic
        )

        # (b) effect assignments inside the body targeting real effect variables
        #     were emitted by _collect_accum_contributions as it walked.

        self_key = context.self_binding.key_column()
        accum_column_plan: LogicalPlan | None = None
        if contributions:
            union_plan = contributions[0]
            for extra in contributions[1:]:
                union_plan = Union(union_plan, extra)
            aggregate = Aggregate(
                union_plan,
                group_by=["__key__"],
                aggregates=[AggregateSpec(loop.accum_var, combinator, ColumnRef("__value__"))],
            )
            key_alias = f"__accum_key_{loop.accum_var}_{self._accum_counter}"
            accum_column_plan = Project(
                aggregate,
                {key_alias: ColumnRef("__key__"), loop.accum_var: ColumnRef(loop.accum_var)},
            )
            joined = Join(
                plan,
                accum_column_plan,
                BinaryOp("==", self_key, ColumnRef(key_alias)),
                how="left",
            )
        else:
            joined = plan

        follow_context = context.child()
        accum_expr: Expression = ColumnRef(loop.accum_var)
        identity = _COMBINATOR_IDENTITY.get(combinator)
        if contributions:
            if identity is not None:
                accum_expr = coalesce(ColumnRef(loop.accum_var), identity)
        else:
            # No contribution sites at all: the accum value is the identity.
            accum_expr = Literal(identity)
        follow_context.accums[loop.accum_var] = accum_expr

        joined_plan, follow_context = self._walk(
            loop.follow.statements, joined, condition, follow_context, atomic
        )
        # Subsequent statements of the enclosing block continue to see the
        # aggregate join (the accum variable stays readable), matching the
        # interpreter, where the value remains in scope only inside the
        # follow block — scripts that need it later simply keep code in the
        # follow block, so returning the joined plan is a superset that stays
        # semantically equivalent for valid programs.
        return joined_plan, follow_context

    def _collect_accum_contributions(
        self,
        accum_var: str,
        statements: Sequence[Statement],
        join_plan: LogicalPlan,
        condition: Expression,
        context: LoweringContext,
        atomic: AtomicBlock | None,
    ) -> list[LogicalPlan]:
        """Walk an accum body: emit effect queries for real effects and return
        one projection plan per assignment to the accum variable."""
        contributions: list[LogicalPlan] = []

        def walk(stmts: Sequence[Statement], cond: Expression, ctx: LoweringContext) -> None:
            for statement in stmts:
                if isinstance(statement, LetStatement):
                    ctx.locals[statement.name] = lower_expression(statement.value, ctx)
                    continue
                if isinstance(statement, LocalAssign):
                    ctx.locals[statement.name] = lower_expression(statement.value, ctx)
                    continue
                if isinstance(statement, (EffectAssign, SetInsert)):
                    target = statement.target
                    if isinstance(target, Identifier) and target.name == accum_var:
                        value = lower_expression(statement.value, ctx)
                        contributions.append(
                            Project(
                                Select(join_plan, cond),
                                {
                                    "__key__": ctx.objects[self.script.self_name].key_column(),
                                    "__value__": value,
                                },
                            )
                        )
                        continue
                    self._emit_effect_query(
                        statement,
                        join_plan,
                        cond,
                        ctx,
                        atomic,
                        isinstance(statement, SetInsert),
                    )
                    continue
                if isinstance(statement, IfStatement):
                    lowered = lower_expression(statement.condition, ctx)
                    walk(statement.then_block.statements, BinaryOp("&&", cond, lowered), ctx.child())
                    if statement.else_block is not None:
                        walk(
                            statement.else_block.statements,
                            BinaryOp("&&", cond, UnaryOp("!", lowered)),
                            ctx.child(),
                        )
                    continue
                if isinstance(statement, AccumLoop):
                    raise SGLCompileError(
                        "nested accum-loops are not supported by the set-at-a-time compiler; "
                        "use the interpreter for this script",
                        statement.line,
                    )
                if isinstance(statement, (WaitNextTick, AtomicBlock)):
                    raise SGLCompileError(
                        f"{type(statement).__name__} is not allowed inside an accum-loop body",
                        statement.line,
                    )
                raise SGLCompileError(
                    f"cannot compile statement {type(statement).__name__} in accum body"
                )

        walk(statements, condition, context)
        return contributions
