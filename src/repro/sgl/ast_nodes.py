"""Abstract syntax tree for SGL programs.

An SGL *program* is a set of class declarations (Figure 1 of the paper) and
scripts.  Scripts are imperative — sequences of statements over the acting
object (``self``) — but restricted by the state-effect pattern: state
attributes are read-only, effect attributes are write-only (``<-`` / ``<=``),
and aggregation happens through declared combinators and accum-loops
(Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    # program structure
    "Program",
    "ClassDecl",
    "StateFieldDecl",
    "EffectFieldDecl",
    "ScriptDecl",
    # statements
    "Statement",
    "LetStatement",
    "LocalAssign",
    "EffectAssign",
    "SetInsert",
    "IfStatement",
    "AccumLoop",
    "ReachLoop",
    "WaitNextTick",
    "AtomicBlock",
    "Block",
    # expressions
    "SglExpression",
    "NumberLiteral",
    "BoolLiteral",
    "StringLiteral",
    "NullLiteral",
    "Identifier",
    "FieldAccess",
    "Binary",
    "Unary",
    "Call",
    "SetConstructor",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SglExpression:
    """Base class for SGL expressions (position info on every node)."""

    line: int = field(default=0, compare=False, kw_only=True)


@dataclass(frozen=True)
class NumberLiteral(SglExpression):
    value: float


@dataclass(frozen=True)
class BoolLiteral(SglExpression):
    value: bool


@dataclass(frozen=True)
class StringLiteral(SglExpression):
    value: str


@dataclass(frozen=True)
class NullLiteral(SglExpression):
    pass


@dataclass(frozen=True)
class Identifier(SglExpression):
    """A bare name: a field of ``self``, a script local, an accum variable,
    a loop variable, or a class name (in ``from`` clauses)."""

    name: str


@dataclass(frozen=True)
class FieldAccess(SglExpression):
    """``target.field`` — reading a field of some object-valued expression."""

    target: SglExpression
    field_name: str


@dataclass(frozen=True)
class Binary(SglExpression):
    op: str
    left: SglExpression
    right: SglExpression


@dataclass(frozen=True)
class Unary(SglExpression):
    op: str
    operand: SglExpression


@dataclass(frozen=True)
class Call(SglExpression):
    """A call to a built-in function (``distance``, ``min``, ``size`` …)."""

    name: str
    args: tuple[SglExpression, ...]


@dataclass(frozen=True)
class SetConstructor(SglExpression):
    """``{ e1, e2, ... }`` — a set literal."""

    elements: tuple[SglExpression, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    line: int = field(default=0, compare=False, kw_only=True)


@dataclass(frozen=True)
class Block:
    """A brace-delimited sequence of statements."""

    statements: tuple[Statement, ...]


@dataclass(frozen=True)
class LetStatement(Statement):
    """``let name = expr;`` — introduce a script-local binding."""

    name: str
    value: SglExpression


@dataclass(frozen=True)
class LocalAssign(Statement):
    """``name = expr;`` — re-assign a script-local variable."""

    name: str
    value: SglExpression


@dataclass(frozen=True)
class EffectAssign(Statement):
    """``target <- expr;`` — assign a value into an effect variable.

    ``target`` is an :class:`Identifier` (an effect of ``self`` or an accum
    variable) or a :class:`FieldAccess` (an effect of another object, e.g.
    ``c.damage <- 1``).
    """

    target: SglExpression
    value: SglExpression


@dataclass(frozen=True)
class SetInsert(Statement):
    """``target <= expr;`` — insert a value into a set-valued effect
    (``itemsAcquired <= i`` in the paper's multi-tick example)."""

    target: SglExpression
    value: SglExpression


@dataclass(frozen=True)
class IfStatement(Statement):
    condition: SglExpression
    then_block: Block
    else_block: Block | None = None


@dataclass(frozen=True)
class AccumLoop(Statement):
    """The accum-loop of Figure 2.

    ``accum TYPE accum_var with COMBINATOR over TYPE loop_var from EXTENT
    { body } in { follow }``
    """

    accum_type: str
    accum_var: str
    combinator: str
    loop_type: str
    loop_var: str
    extent: SglExpression
    body: Block
    follow: Block


@dataclass(frozen=True)
class ReachLoop(Statement):
    """A transitive-closure loop over a dynamically derived edge relation.

    ``reach TYPE node_var from SEED via TYPE cur_var on COND [iterate N]
    { body }``

    Starting from the object whose id is ``SEED``, repeatedly expand the
    reached set: for every reached object (bound to ``cur_var``) every
    object of the node class (bound to ``node_var``) satisfying ``COND``
    becomes reached.  ``body`` then runs once per *reached* object with
    ``node_var`` bound to it — effect assignments inside address the whole
    closure.  ``iterate N`` caps the number of expansion rounds (N hops).

    The compiler lowers this to a :class:`~repro.engine.algebra.Fixpoint`
    plan, so closures plan, MQO-share, and incrementalize like any other
    query; the interpreter runs a reference BFS.
    """

    node_type: str
    node_var: str
    seed: SglExpression
    via_type: str
    via_var: str
    condition: SglExpression
    body: Block
    max_rounds: int | None = None


@dataclass(frozen=True)
class WaitNextTick(Statement):
    """``waitNextTick;`` — suspend the script until the next tick."""


@dataclass(frozen=True)
class AtomicBlock(Statement):
    """``atomic require(c1, c2, ...) { body }`` — a transaction (Section 3.1).

    The effect assignments inside the body form one transaction issued by
    the acting object; ``constraints`` are boolean expressions over state
    attributes that must hold *after* the update step for the transaction
    to commit.
    """

    constraints: tuple[SglExpression, ...]
    body: Block


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StateFieldDecl:
    """``number x = 0;`` inside a ``state:`` section."""

    name: str
    type_name: str
    default: SglExpression | None = None
    ref_class: str | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class EffectFieldDecl:
    """``number damage : sum;`` inside an ``effects:`` section."""

    name: str
    type_name: str
    combinator: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class ClassDecl:
    """A game-object class: its state and effect fields (Figure 1)."""

    name: str
    state_fields: tuple[StateFieldDecl, ...]
    effect_fields: tuple[EffectFieldDecl, ...]
    line: int = field(default=0, compare=False)

    def state_field(self, name: str) -> StateFieldDecl | None:
        for decl in self.state_fields:
            if decl.name == name:
                return decl
        return None

    def effect_field(self, name: str) -> EffectFieldDecl | None:
        for decl in self.effect_fields:
            if decl.name == name:
                return decl
        return None


@dataclass(frozen=True)
class ScriptDecl:
    """``script name(ClassName self) { ... }`` — per-object behaviour."""

    name: str
    class_name: str
    self_name: str
    body: Block
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Program:
    """A complete SGL compilation unit."""

    classes: tuple[ClassDecl, ...]
    scripts: tuple[ScriptDecl, ...]

    def class_named(self, name: str) -> ClassDecl | None:
        for decl in self.classes:
            if decl.name == name:
                return decl
        return None

    def script_named(self, name: str) -> ScriptDecl | None:
        for decl in self.scripts:
            if decl.name == name:
                return decl
        return None

    def scripts_for_class(self, class_name: str) -> tuple[ScriptDecl, ...]:
        return tuple(s for s in self.scripts if s.class_name == class_name)
