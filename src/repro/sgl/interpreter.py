"""Object-at-a-time reference interpreter for SGL scripts.

This is the baseline the paper argues against for performance — "game
developers program at the object level and design behaviour for each
individual object" — and the semantics oracle for the compiler: for every
script, running the interpreter over each object must produce exactly the
same multiset of effect assignments as executing the compiled relational
plans (tested in ``tests/test_equivalence.py``, measured in experiment E2).

The interpreter executes one script for one acting object at a time,
walking the AST directly.  Accum-loops iterate the extent sequentially;
atomic blocks collect their writes into a :class:`TransactionRequest`
instead of emitting them immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Protocol

from repro.engine.aggregates import make_accumulator
from repro.sgl.ast_nodes import (
    AccumLoop,
    AtomicBlock,
    Binary,
    Block,
    BoolLiteral,
    Call,
    EffectAssign,
    FieldAccess,
    Identifier,
    IfStatement,
    LetStatement,
    LocalAssign,
    NullLiteral,
    NumberLiteral,
    ReachLoop,
    ScriptDecl,
    SetConstructor,
    SetInsert,
    SglExpression,
    Statement,
    StringLiteral,
    Unary,
    WaitNextTick,
)
from repro.sgl.errors import SGLRuntimeError
from repro.sgl.ir import EffectAssignment, TransactionRequest
from repro.sgl.multitick import ScriptSegment, SegmentedScript, segment_script
from repro.sgl.semantics import AnalyzedProgram, COMBINATOR_ALIASES
from repro.engine.expressions import FunctionCall

__all__ = ["WorldView", "InterpretationResult", "ScriptInterpreter", "evaluate_constraint"]


class WorldView(Protocol):
    """The read-only view of game state a script may observe during a tick."""

    def extent(self, class_name: str) -> Iterable[Mapping[str, Any]]:
        """All objects of a class, as state rows including the ``id`` key."""
        ...

    def get_object(self, class_name: str, object_id: Any) -> Mapping[str, Any] | None:
        """One object's state row by id, or ``None``."""
        ...


@dataclass
class InterpretationResult:
    """Everything one script execution produced for one acting object."""

    effects: list[EffectAssignment] = field(default_factory=list)
    transactions: list[TransactionRequest] = field(default_factory=list)

    def extend(self, other: "InterpretationResult") -> None:
        self.effects.extend(other.effects)
        self.transactions.extend(other.transactions)


@dataclass
class _ObjectValue:
    """An object-valued expression result: which class, which state row."""

    class_name: str
    row: Mapping[str, Any]


class _Environment:
    """Mutable evaluation environment for one script execution."""

    def __init__(self, self_name: str, self_value: _ObjectValue):
        self.objects: dict[str, _ObjectValue] = {self_name: self_value}
        self.locals: dict[str, Any] = {}
        self.readable_accums: dict[str, Any] = {}
        self.writable_accums: dict[str, Any] = {}

    def child(self) -> "_Environment":
        clone = _Environment.__new__(_Environment)
        clone.objects = dict(self.objects)
        clone.locals = dict(self.locals)
        clone.readable_accums = dict(self.readable_accums)
        clone.writable_accums = dict(self.writable_accums)
        return clone


class ScriptInterpreter:
    """Executes SGL scripts one object at a time against a world view."""

    def __init__(self, analyzed: AnalyzedProgram):
        self.analyzed = analyzed
        self.program = analyzed.program
        self._segmented: dict[str, SegmentedScript] = {}

    # -- public API -----------------------------------------------------------------------

    def segmented(self, script_name: str) -> SegmentedScript:
        """The (cached) waitNextTick segmentation of a script."""
        if script_name not in self._segmented:
            script = self.program.script_named(script_name)
            if script is None:
                raise SGLRuntimeError(f"unknown script {script_name!r}")
            self._segmented[script_name] = segment_script(script)
        return self._segmented[script_name]

    def run_script(
        self,
        script_name: str,
        self_row: Mapping[str, Any],
        world: WorldView,
        pc: int = 0,
    ) -> tuple[InterpretationResult, int]:
        """Run the segment selected by *pc* for one object.

        Returns the produced effects/transactions and the next program
        counter (``0`` again for single-tick scripts).
        """
        segmented = self.segmented(script_name)
        segment = segmented.segment_for(pc)
        result = self.run_segment(script_name, segment, self_row, world)
        return result, segmented.next_pc(segment.index)

    def run_segment(
        self,
        script_name: str,
        segment: ScriptSegment,
        self_row: Mapping[str, Any],
        world: WorldView,
    ) -> InterpretationResult:
        script = self.program.script_named(script_name)
        if script is None:
            raise SGLRuntimeError(f"unknown script {script_name!r}")
        result = InterpretationResult()
        env = _Environment(script.self_name, _ObjectValue(script.class_name, self_row))
        execution = _Execution(self, script, world, result)
        execution.exec_statements(segment.statements, env, transaction_sink=None)
        return result

    # -- helpers shared with the transaction engine ---------------------------------------------

    def evaluate_expression(
        self,
        expr: SglExpression,
        class_name: str,
        self_row: Mapping[str, Any],
        world: WorldView,
        self_name: str = "self",
    ) -> Any:
        """Evaluate an expression against one object's state (used for
        transaction constraints and reactive handler conditions)."""
        env = _Environment(self_name, _ObjectValue(class_name, self_row))
        script = ScriptDecl("<expr>", class_name, self_name, Block(()), line=0)
        execution = _Execution(self, script, world, InterpretationResult())
        return execution.eval(expr, env)


def evaluate_constraint(
    interpreter: ScriptInterpreter,
    constraint: SglExpression,
    class_name: str,
    self_row: Mapping[str, Any],
    world: WorldView,
    self_name: str = "self",
) -> bool:
    """Evaluate a transaction constraint; null results count as violations."""
    value = interpreter.evaluate_expression(constraint, class_name, self_row, world, self_name)
    return bool(value)


class _Execution:
    """The per-run walker: statements mutate the environment and emit IR."""

    def __init__(
        self,
        interpreter: ScriptInterpreter,
        script: ScriptDecl,
        world: WorldView,
        result: InterpretationResult,
    ):
        self.interpreter = interpreter
        self.program = interpreter.program
        self.script = script
        self.class_decl = interpreter.analyzed.class_named(script.class_name)
        self.world = world
        self.result = result
        self._atomic_counter = 0

    # -- statements --------------------------------------------------------------------------

    def exec_statements(
        self,
        statements: Iterable[Statement],
        env: _Environment,
        transaction_sink: list[EffectAssignment] | None,
    ) -> None:
        for statement in statements:
            self.exec_statement(statement, env, transaction_sink)

    def exec_statement(
        self,
        statement: Statement,
        env: _Environment,
        transaction_sink: list[EffectAssignment] | None,
    ) -> None:
        if isinstance(statement, LetStatement):
            env.locals[statement.name] = self.eval(statement.value, env)
            return
        if isinstance(statement, LocalAssign):
            env.locals[statement.name] = self.eval(statement.value, env)
            return
        if isinstance(statement, EffectAssign):
            self._emit_effect(statement.target, statement.value, env, transaction_sink, set_insert=False)
            return
        if isinstance(statement, SetInsert):
            self._emit_effect(statement.target, statement.value, env, transaction_sink, set_insert=True)
            return
        if isinstance(statement, IfStatement):
            if self.eval(statement.condition, env):
                self.exec_statements(statement.then_block.statements, env.child(), transaction_sink)
            elif statement.else_block is not None:
                self.exec_statements(statement.else_block.statements, env.child(), transaction_sink)
            return
        if isinstance(statement, AccumLoop):
            self._exec_accum(statement, env, transaction_sink)
            return
        if isinstance(statement, ReachLoop):
            self._exec_reach(statement, env, transaction_sink)
            return
        if isinstance(statement, WaitNextTick):
            # Segmentation removes top-level waits before execution; one that
            # survives (e.g. running an unsegmented script directly) is a no-op.
            return
        if isinstance(statement, AtomicBlock):
            self._exec_atomic(statement, env)
            return
        raise SGLRuntimeError(f"unsupported statement {type(statement).__name__}")

    def _exec_accum(
        self,
        loop: AccumLoop,
        env: _Environment,
        transaction_sink: list[EffectAssignment] | None,
    ) -> None:
        combinator = COMBINATOR_ALIASES.get(loop.combinator, loop.combinator)
        accumulator = make_accumulator(combinator)
        extent_class = self._extent_class(loop)
        for row in self.world.extent(extent_class):
            body_env = env.child()
            body_env.objects[loop.loop_var] = _ObjectValue(extent_class, row)
            body_env.writable_accums[loop.accum_var] = accumulator
            self.exec_statements(loop.body.statements, body_env, transaction_sink)
        follow_env = env.child()
        follow_env.readable_accums[loop.accum_var] = accumulator.result()
        self.exec_statements(loop.follow.statements, follow_env, transaction_sink)

    def _exec_reach(
        self,
        loop: ReachLoop,
        env: _Environment,
        transaction_sink: list[EffectAssignment] | None,
    ) -> None:
        """Reference BFS for ``reach`` — the oracle the Fixpoint plan must match."""
        node_class = self._class_by_name(loop.node_type, loop.line)
        seed = self.eval(loop.seed, env)
        seed_id = seed.row.get("id") if isinstance(seed, _ObjectValue) else seed
        rows = list(self.world.extent(node_class))
        by_id = {row.get("id"): row for row in rows}
        reached: list[Any] = [seed_id]
        seen = {seed_id}
        frontier = [seed_id]
        rounds = 0
        while frontier and (loop.max_rounds is None or rounds < loop.max_rounds):
            rounds += 1
            next_frontier: list[Any] = []
            for via_id in frontier:
                via_row = by_id.get(via_id)
                if via_row is None:
                    continue
                for candidate in rows:
                    candidate_id = candidate.get("id")
                    if candidate_id in seen:
                        continue
                    cond_env = env.child()
                    cond_env.objects[loop.via_var] = _ObjectValue(node_class, via_row)
                    cond_env.objects[loop.node_var] = _ObjectValue(node_class, candidate)
                    if bool(self.eval(loop.condition, cond_env)):
                        seen.add(candidate_id)
                        reached.append(candidate_id)
                        next_frontier.append(candidate_id)
            frontier = next_frontier
        for node_id in reached:
            row = by_id.get(node_id)
            if row is None:
                continue
            body_env = env.child()
            body_env.objects[loop.node_var] = _ObjectValue(node_class, row)
            self.exec_statements(loop.body.statements, body_env, transaction_sink)

    def _exec_atomic(self, block: AtomicBlock, env: _Environment) -> None:
        sink: list[EffectAssignment] = []
        self.exec_statements(block.body.statements, env.child(), sink)
        self_value = env.objects[self.script.self_name]
        request = TransactionRequest(
            actor_class=self.script.class_name,
            actor_id=self_value.row.get("id"),
            assignments=tuple(sink),
            constraints=block.constraints,
            script_name=self.script.name,
            block_index=self._atomic_counter,
        )
        self._atomic_counter += 1
        self.result.transactions.append(request)

    def _extent_class(self, loop: AccumLoop) -> str:
        if isinstance(loop.extent, Identifier):
            return self._class_by_name(loop.extent.name, loop.line)
        raise SGLRuntimeError(
            f"accum-loop extent must be a class name, got {loop.extent!r}", loop.line
        )

    def _class_by_name(self, name: str, line: int) -> str:
        for decl in self.program.classes:
            if decl.name == name or decl.name.lower() == name.lower():
                return decl.name
        raise SGLRuntimeError(f"unknown class {name!r}", line)

    # -- effect emission ----------------------------------------------------------------------

    def _emit_effect(
        self,
        target: SglExpression,
        value_expr: SglExpression,
        env: _Environment,
        transaction_sink: list[EffectAssignment] | None,
        set_insert: bool,
    ) -> None:
        value = self.eval(value_expr, env)
        # Accum variable write.
        if isinstance(target, Identifier) and target.name in env.writable_accums:
            env.writable_accums[target.name].add(value)
            return
        target_class, target_row, effect_name = self._resolve_effect_target(target, env)
        assignment = EffectAssignment(
            class_name=target_class,
            target_id=target_row.get("id"),
            effect=effect_name,
            value=value,
            set_insert=set_insert,
        )
        if transaction_sink is not None:
            transaction_sink.append(assignment)
        else:
            self.result.effects.append(assignment)

    def _resolve_effect_target(
        self, target: SglExpression, env: _Environment
    ) -> tuple[str, Mapping[str, Any], str]:
        if isinstance(target, Identifier):
            self_value = env.objects[self.script.self_name]
            return self_value.class_name, self_value.row, target.name
        if isinstance(target, FieldAccess):
            owner = self._eval_object(target.target, env)
            if owner is None:
                raise SGLRuntimeError(
                    f"effect target {target!r} does not resolve to an object", target.line
                )
            return owner.class_name, owner.row, target.field_name
        raise SGLRuntimeError("invalid effect assignment target", getattr(target, "line", 0))

    # -- expressions -------------------------------------------------------------------------------

    def eval(self, expr: SglExpression, env: _Environment) -> Any:
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, BoolLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, NullLiteral):
            return None
        if isinstance(expr, Identifier):
            return self._eval_identifier(expr, env)
        if isinstance(expr, FieldAccess):
            return self._eval_field_access(expr, env)
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, Unary):
            operand = self.eval(expr.operand, env)
            if expr.op == "-":
                return None if operand is None else -operand
            return not bool(operand)
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        if isinstance(expr, SetConstructor):
            return frozenset(self.eval(e, env) for e in expr.elements)
        raise SGLRuntimeError(f"unsupported expression {type(expr).__name__}", expr.line)

    def _eval_identifier(self, expr: Identifier, env: _Environment) -> Any:
        name = expr.name
        if name in env.objects:
            return env.objects[name]
        if name in env.locals:
            return env.locals[name]
        if name in env.readable_accums:
            return env.readable_accums[name]
        self_value = env.objects[self.script.self_name]
        if name in self_value.row:
            return self_value.row[name]
        raise SGLRuntimeError(f"unknown identifier {name!r}", expr.line)

    def _eval_field_access(self, expr: FieldAccess, env: _Environment) -> Any:
        owner = self._eval_object(expr.target, env)
        if owner is not None:
            if expr.field_name in owner.row:
                value = owner.row[expr.field_name]
                return value
            raise SGLRuntimeError(
                f"object of class {owner.class_name!r} has no field {expr.field_name!r}", expr.line
            )
        value = self.eval(expr.target, env)
        if isinstance(value, Mapping):
            return value.get(expr.field_name)
        raise SGLRuntimeError(
            f"cannot read field {expr.field_name!r} of non-object value {value!r}", expr.line
        )

    def _eval_object(self, expr: SglExpression, env: _Environment) -> _ObjectValue | None:
        """Resolve an expression to an object (self, loop var, or ref field)."""
        if isinstance(expr, Identifier):
            if expr.name in env.objects:
                return env.objects[expr.name]
            # A bare ref-typed state field of self.
            state = self.class_decl.state_field(expr.name)
            if state is not None and state.type_name == "ref":
                self_value = env.objects[self.script.self_name]
                return self._deref(state.ref_class, self_value.row.get(expr.name))
            return None
        if isinstance(expr, FieldAccess):
            owner = self._eval_object(expr.target, env)
            if owner is None:
                return None
            owner_decl = self.program.class_named(owner.class_name)
            if owner_decl is None:
                return None
            state = owner_decl.state_field(expr.field_name)
            if state is not None and state.type_name == "ref":
                return self._deref(state.ref_class, owner.row.get(expr.field_name))
            return None
        return None

    def _deref(self, ref_class: str | None, ref_value: Any) -> _ObjectValue | None:
        if ref_value is None:
            return None
        class_name = ref_class
        if class_name is None:
            if len(self.program.classes) == 1:
                class_name = self.program.classes[0].name
            else:
                raise SGLRuntimeError("untyped reference used in a multi-class program")
        object_id = getattr(ref_value, "oid", ref_value)
        row = self.world.get_object(class_name, object_id)
        if row is None:
            return None
        return _ObjectValue(class_name, row)

    def _eval_binary(self, expr: Binary, env: _Environment) -> Any:
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left, env)) and bool(self.eval(expr.right, env))
        if op == "||":
            return bool(self.eval(expr.left, env)) or bool(self.eval(expr.right, env))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op in ("==", "!="):
            left_id = left.row.get("id") if isinstance(left, _ObjectValue) else left
            right_id = right.row.get("id") if isinstance(right, _ObjectValue) else right
            return (left_id == right_id) if op == "==" else (left_id != right_id)
        if left is None or right is None:
            return None
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return None if right == 0 else left / right
            if op == "%":
                return None if right == 0 else left % right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise SGLRuntimeError(
                f"cannot apply {op!r} to {left!r} and {right!r}", expr.line
            ) from exc
        raise SGLRuntimeError(f"unknown operator {op!r}", expr.line)

    def _eval_call(self, expr: Call, env: _Environment) -> Any:
        args = [self.eval(a, env) for a in expr.args]
        resolved = []
        for arg in args:
            if isinstance(arg, _ObjectValue):
                resolved.append(arg.row.get("id"))
            else:
                resolved.append(arg)
        from repro.engine.expressions import Literal

        call = FunctionCall(expr.name, [Literal(v) for v in resolved])
        return call.evaluate({})
