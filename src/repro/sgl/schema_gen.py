"""Schema generation: from SGL class declarations to relational schemas.

Section 2.1 of the paper: "The SGL compiler can generate the tables from
these class definitions without the programmer knowing anything about
them … we have discovered that it is often best to break a class up into
multiple tables containing those attributes that commonly appear in
expressions together.  In other cases it is preferable to construct a
single table for all of the state variables, and a separate table for each
individual effect variable."

This module implements those layout strategies:

* :class:`SchemaLayout.SINGLE` — one table per class holding the key and
  every state field (the default).
* :class:`SchemaLayout.VERTICAL` — the state fields are split into groups
  of co-accessed attributes (spatial attributes together, the rest
  together, or caller-provided groups); scans reconstruct the extent by
  joining the partitions on the key.
* :class:`SchemaLayout.PER_EFFECT` — like SINGLE for state, plus one
  narrow table per effect variable used to materialize effect assignments
  before combination (experiment E9 measures the trade-offs).

Every generated table carries an implicit ``id`` key column; the SGL
programmer never sees any of this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.algebra import Join, LogicalPlan, Project, TableScan
from repro.engine.catalog import Catalog
from repro.engine.expressions import BinaryOp, ColumnRef
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType
from repro.sgl.ast_nodes import ClassDecl, NumberLiteral, BoolLiteral, StringLiteral, SglExpression
from repro.sgl.errors import SGLCompileError

__all__ = ["SchemaLayout", "GeneratedSchema", "SchemaGenerator", "KEY_COLUMN", "sgl_type_to_engine"]

#: Name of the implicit key column added to every generated table.
KEY_COLUMN = "id"

#: Default attribute names treated as "spatial" for vertical partitioning.
SPATIAL_ATTRIBUTES = ("x", "y", "z", "vx", "vy", "vz")


class SchemaLayout(enum.Enum):
    """How a class declaration maps onto relational tables."""

    SINGLE = "single"
    VERTICAL = "vertical"
    PER_EFFECT = "per_effect"


def sgl_type_to_engine(type_name: str) -> DataType:
    """Map an SGL type keyword to the engine column type."""
    mapping = {
        "number": DataType.NUMBER,
        "bool": DataType.BOOL,
        "string": DataType.STRING,
        "ref": DataType.REF,
        "set": DataType.SET,
    }
    try:
        return mapping[type_name]
    except KeyError:
        raise SGLCompileError(f"unknown SGL type {type_name!r}") from None


def _literal_default(expr: SglExpression | None):
    """Extract a Python default value from a literal default expression."""
    if expr is None:
        return None
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return expr.value
    if isinstance(expr, StringLiteral):
        return expr.value
    raise SGLCompileError("state field defaults must be literal values")


@dataclass
class GeneratedSchema:
    """The tables generated for one class under one layout."""

    class_name: str
    layout: SchemaLayout
    #: Table name -> schema for the state partitions (in join order).
    state_tables: dict[str, Schema] = field(default_factory=dict)
    #: Effect name -> (table name, schema); only populated for PER_EFFECT.
    effect_tables: dict[str, tuple[str, Schema]] = field(default_factory=dict)

    @property
    def primary_table(self) -> str:
        """The table holding the key (the first state partition)."""
        return next(iter(self.state_tables))

    def state_table_names(self) -> list[str]:
        return list(self.state_tables)


class SchemaGenerator:
    """Generates table schemas and extent plans for SGL classes."""

    def __init__(
        self,
        layout: SchemaLayout = SchemaLayout.SINGLE,
        vertical_groups: Sequence[Sequence[str]] | None = None,
    ):
        self.layout = layout
        self.vertical_groups = [list(group) for group in (vertical_groups or [])]

    # -- schema generation ------------------------------------------------------------------

    def generate(self, class_decl: ClassDecl) -> GeneratedSchema:
        """Generate the relational schemas for *class_decl*."""
        generated = GeneratedSchema(class_name=class_decl.name, layout=self.layout)
        if self.layout is SchemaLayout.VERTICAL:
            groups = self._vertical_groups(class_decl)
            for index, group in enumerate(groups):
                name = class_decl.name if index == 0 else f"{class_decl.name}__part{index}"
                generated.state_tables[name] = self._state_schema(class_decl, group)
        else:
            all_fields = [f.name for f in class_decl.state_fields]
            generated.state_tables[class_decl.name] = self._state_schema(class_decl, all_fields)
        if self.layout is SchemaLayout.PER_EFFECT:
            for effect in class_decl.effect_fields:
                table_name = f"{class_decl.name}__effect_{effect.name}"
                schema = Schema(
                    [
                        Column(KEY_COLUMN, DataType.NUMBER, nullable=False),
                        Column("value", sgl_type_to_engine(effect.type_name)),
                    ]
                )
                generated.effect_tables[effect.name] = (table_name, schema)
        return generated

    def _state_schema(self, class_decl: ClassDecl, field_names: Sequence[str]) -> Schema:
        columns = [Column(KEY_COLUMN, DataType.NUMBER, nullable=False)]
        for name in field_names:
            decl = class_decl.state_field(name)
            if decl is None:
                raise SGLCompileError(
                    f"vertical group references unknown state field {name!r} "
                    f"of class {class_decl.name!r}"
                )
            columns.append(
                Column(decl.name, sgl_type_to_engine(decl.type_name), default=_literal_default(decl.default))
            )
        return Schema(columns)

    def _vertical_groups(self, class_decl: ClassDecl) -> list[list[str]]:
        all_fields = [f.name for f in class_decl.state_fields]
        if self.vertical_groups:
            grouped = [name for group in self.vertical_groups for name in group]
            leftover = [name for name in all_fields if name not in grouped]
            groups = [list(group) for group in self.vertical_groups if group]
            if leftover:
                groups.append(leftover)
            return [g for g in groups if g] or [all_fields]
        spatial = [name for name in all_fields if name in SPATIAL_ATTRIBUTES]
        rest = [name for name in all_fields if name not in SPATIAL_ATTRIBUTES]
        groups = [group for group in (spatial, rest) if group]
        return groups or [all_fields]

    # -- catalog registration -----------------------------------------------------------------

    def register(self, catalog: Catalog, class_decl: ClassDecl) -> GeneratedSchema:
        """Create the generated tables in *catalog* and return the layout."""
        generated = self.generate(class_decl)
        for table_name, schema in generated.state_tables.items():
            catalog.create_table(table_name, schema, key=KEY_COLUMN)
        for table_name, schema in generated.effect_tables.values():
            catalog.create_table(table_name, schema)
        return generated

    # -- extent plans ------------------------------------------------------------------------------

    def extent_plan(self, generated: GeneratedSchema, alias: str) -> LogicalPlan:
        """A logical plan producing the full extent of the class under *alias*.

        For the SINGLE and PER_EFFECT layouts this is one scan; for the
        VERTICAL layout the partitions are joined back together on the key
        and re-qualified under *alias*, so the compiler (and therefore the
        script writer) never notices the physical split.
        """
        names = generated.state_table_names()
        plan: LogicalPlan = TableScan(names[0], alias=alias)
        if len(names) == 1:
            return plan
        projections: dict[str, ColumnRef] = {}
        for column in generated.state_tables[names[0]]:
            projections[f"{alias}.{column.name}"] = ColumnRef(f"{alias}.{column.name}")
        for index, table_name in enumerate(names[1:], start=1):
            part_alias = f"{alias}__part{index}"
            condition = BinaryOp(
                "==", ColumnRef(f"{alias}.{KEY_COLUMN}"), ColumnRef(f"{part_alias}.{KEY_COLUMN}")
            )
            plan = Join(plan, TableScan(table_name, alias=part_alias), condition, how="inner")
            for column in generated.state_tables[table_name]:
                output = f"{alias}.{column.name}"
                if output not in projections:
                    projections[output] = ColumnRef(f"{part_alias}.{column.name}")
        # Re-qualify the joined partitions under the single alias so every
        # downstream reference (``self.health``) resolves exactly.
        return Project(plan, projections)
