"""Recursive-descent parser for SGL.

Grammar (informal):

    program      := (class_decl | script_decl)*
    class_decl   := 'class' IDENT '{' 'state' ':' state_field* 'effects' ':' effect_field* '}'
    state_field  := type IDENT ('=' expression)? ';'
    effect_field := type IDENT ':' IDENT ';'
    type         := 'number' | 'bool' | 'string' | 'ref' ('<' IDENT '>')? | 'set'
    script_decl  := 'script' IDENT '(' IDENT IDENT ')' block
    block        := '{' statement* '}'
    statement    := let | local_assign | effect_assign | set_insert | if
                  | accum | reach | waitNextTick | atomic
    let          := 'let' IDENT '=' expression ';'
    effect_assign:= lvalue '<-' expression ';'
    set_insert   := lvalue '<=' expression ';'
    if           := 'if' '(' expression ')' block ('else' (block | if))?
    accum        := 'accum' type IDENT 'with' IDENT 'over' type IDENT 'from'
                    expression block 'in' block
    reach        := 'reach' IDENT IDENT 'from' expression 'via' IDENT IDENT
                    'on' expression ('iterate' NUMBER)? block
    atomic       := 'atomic' ('require' '(' expression (',' expression)* ')')? block
    expression   := or-expression with C-like precedence

Note ``<=`` is *both* the less-or-equal operator and the set-insert
statement; the parser disambiguates by context (statement position with an
lvalue on the left), matching the paper's usage ``itemsAcquired <= i;``.
"""

from __future__ import annotations

from typing import Sequence

from repro.sgl.ast_nodes import (
    AccumLoop,
    AtomicBlock,
    Binary,
    Block,
    BoolLiteral,
    Call,
    ClassDecl,
    EffectAssign,
    EffectFieldDecl,
    FieldAccess,
    Identifier,
    IfStatement,
    LetStatement,
    LocalAssign,
    NullLiteral,
    NumberLiteral,
    Program,
    ReachLoop,
    ScriptDecl,
    SetConstructor,
    SetInsert,
    SglExpression,
    StateFieldDecl,
    Statement,
    StringLiteral,
    Unary,
    WaitNextTick,
)
from repro.sgl.errors import SGLSyntaxError
from repro.sgl.lexer import Token, tokenize

__all__ = ["parse_program", "parse_expression", "Parser"]

_TYPE_KEYWORDS = ("number", "bool", "string", "ref", "set")


def parse_program(source: str) -> Program:
    """Parse SGL source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> SglExpression:
    """Parse a single SGL expression (useful in tests and the debugger)."""
    parser = Parser(tokenize(source))
    expr = parser._expression()
    parser._expect_eof()
    return expr


class Parser:
    """A hand-written recursive-descent parser over the token list."""

    def __init__(self, tokens: Sequence[Token]):
        self._tokens = list(tokens)
        self._pos = 0

    # -- token utilities -----------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check_op(self, *texts: str) -> bool:
        return self._current.is_op(*texts)

    def _check_keyword(self, *texts: str) -> bool:
        return self._current.is_keyword(*texts)

    def _match_op(self, *texts: str) -> Token | None:
        if self._check_op(*texts):
            return self._advance()
        return None

    def _match_keyword(self, *texts: str) -> Token | None:
        if self._check_keyword(*texts):
            return self._advance()
        return None

    def _expect_op(self, text: str) -> Token:
        if not self._check_op(text):
            raise SGLSyntaxError(
                f"expected {text!r}, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self._check_keyword(text):
            raise SGLSyntaxError(
                f"expected keyword {text!r}, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind != "ident":
            raise SGLSyntaxError(
                f"expected identifier, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _expect_eof(self) -> None:
        if self._current.kind != "eof":
            raise SGLSyntaxError(
                f"unexpected trailing input {self._current.text!r}",
                self._current.line,
                self._current.column,
            )

    # -- program structure ------------------------------------------------------------

    def parse_program(self) -> Program:
        classes: list[ClassDecl] = []
        scripts: list[ScriptDecl] = []
        while self._current.kind != "eof":
            if self._check_keyword("class"):
                classes.append(self._class_decl())
            elif self._check_keyword("script"):
                scripts.append(self._script_decl())
            else:
                raise SGLSyntaxError(
                    f"expected 'class' or 'script', found {self._current.text!r}",
                    self._current.line,
                    self._current.column,
                )
        return Program(tuple(classes), tuple(scripts))

    def _class_decl(self) -> ClassDecl:
        start = self._expect_keyword("class")
        name = self._expect_ident().text
        self._expect_op("{")
        state_fields: list[StateFieldDecl] = []
        effect_fields: list[EffectFieldDecl] = []
        while not self._check_op("}"):
            if self._match_keyword("state"):
                self._expect_op(":")
                while self._current.is_keyword(*_TYPE_KEYWORDS):
                    state_fields.append(self._state_field())
            elif self._match_keyword("effects"):
                self._expect_op(":")
                while self._current.is_keyword(*_TYPE_KEYWORDS):
                    effect_fields.append(self._effect_field())
            else:
                raise SGLSyntaxError(
                    f"expected 'state:' or 'effects:' section, found {self._current.text!r}",
                    self._current.line,
                    self._current.column,
                )
        self._expect_op("}")
        return ClassDecl(name, tuple(state_fields), tuple(effect_fields), line=start.line)

    def _type_name(self) -> tuple[str, str | None]:
        token = self._advance()
        if not token.is_keyword(*_TYPE_KEYWORDS):
            raise SGLSyntaxError(f"expected a type, found {token.text!r}", token.line, token.column)
        ref_class = None
        if token.text == "ref" and self._match_op("<"):
            ref_class = self._expect_ident().text
            self._expect_op(">")
        return token.text, ref_class

    def _state_field(self) -> StateFieldDecl:
        line = self._current.line
        type_name, ref_class = self._type_name()
        name = self._expect_ident().text
        default = None
        if self._match_op("="):
            default = self._expression()
        self._expect_op(";")
        return StateFieldDecl(name, type_name, default, ref_class, line=line)

    def _effect_field(self) -> EffectFieldDecl:
        line = self._current.line
        type_name, _ = self._type_name()
        name = self._expect_ident().text
        self._expect_op(":")
        combinator = self._expect_ident().text
        self._expect_op(";")
        return EffectFieldDecl(name, type_name, combinator, line=line)

    def _script_decl(self) -> ScriptDecl:
        start = self._expect_keyword("script")
        name = self._expect_ident().text
        self._expect_op("(")
        class_name = self._expect_ident().text
        self_name = self._expect_ident().text
        self._expect_op(")")
        body = self._block()
        return ScriptDecl(name, class_name, self_name, body, line=start.line)

    # -- statements -----------------------------------------------------------------------

    def _block(self) -> Block:
        self._expect_op("{")
        statements: list[Statement] = []
        while not self._check_op("}"):
            statements.append(self._statement())
        self._expect_op("}")
        return Block(tuple(statements))

    def _statement(self) -> Statement:
        token = self._current
        if token.is_keyword("let"):
            return self._let_statement()
        if token.is_keyword("if"):
            return self._if_statement()
        if token.is_keyword("accum"):
            return self._accum_loop()
        if token.is_keyword("reach"):
            return self._reach_loop()
        if token.is_keyword("waitNextTick"):
            self._advance()
            self._expect_op(";")
            return WaitNextTick(line=token.line)
        if token.is_keyword("atomic"):
            return self._atomic_block()
        return self._assignment_statement()

    def _let_statement(self) -> LetStatement:
        start = self._expect_keyword("let")
        name = self._expect_ident().text
        self._expect_op("=")
        value = self._expression()
        self._expect_op(";")
        return LetStatement(name, value, line=start.line)

    def _if_statement(self) -> IfStatement:
        start = self._expect_keyword("if")
        self._expect_op("(")
        condition = self._expression()
        self._expect_op(")")
        then_block = self._block()
        else_block = None
        if self._match_keyword("else"):
            if self._check_keyword("if"):
                nested = self._if_statement()
                else_block = Block((nested,))
            else:
                else_block = self._block()
        return IfStatement(condition, then_block, else_block, line=start.line)

    def _accum_loop(self) -> AccumLoop:
        start = self._expect_keyword("accum")
        accum_type, _ = self._type_name()
        accum_var = self._expect_ident().text
        self._expect_keyword("with")
        combinator = self._expect_ident().text
        self._expect_keyword("over")
        loop_type, _ = self._type_name() if self._current.is_keyword(*_TYPE_KEYWORDS) else (self._expect_ident().text, None)
        loop_var = self._expect_ident().text
        self._expect_keyword("from")
        extent = self._expression()
        body = self._block()
        self._expect_keyword("in")
        follow = self._block()
        return AccumLoop(
            accum_type,
            accum_var,
            combinator,
            loop_type,
            loop_var,
            extent,
            body,
            follow,
            line=start.line,
        )

    def _reach_loop(self) -> ReachLoop:
        start = self._expect_keyword("reach")
        node_type = self._expect_ident().text
        node_var = self._expect_ident().text
        self._expect_keyword("from")
        seed = self._expression()
        self._expect_keyword("via")
        via_type = self._expect_ident().text
        via_var = self._expect_ident().text
        self._expect_keyword("on")
        condition = self._expression()
        max_rounds = None
        if self._match_keyword("iterate"):
            token = self._current
            if token.kind != "number":
                raise SGLSyntaxError(
                    f"expected a round count after 'iterate', found {token.text!r}",
                    token.line,
                    token.column,
                )
            self._advance()
            max_rounds = int(float(token.text))
            if max_rounds < 0:
                raise SGLSyntaxError(
                    "'iterate' round count must be non-negative", token.line, token.column
                )
        body = self._block()
        return ReachLoop(
            node_type,
            node_var,
            seed,
            via_type,
            via_var,
            condition,
            body,
            max_rounds,
            line=start.line,
        )

    def _atomic_block(self) -> AtomicBlock:
        start = self._expect_keyword("atomic")
        constraints: list[SglExpression] = []
        if self._match_keyword("require"):
            self._expect_op("(")
            constraints.append(self._expression())
            while self._match_op(","):
                constraints.append(self._expression())
            self._expect_op(")")
        body = self._block()
        return AtomicBlock(tuple(constraints), body, line=start.line)

    def _assignment_statement(self) -> Statement:
        line = self._current.line
        target = self._postfix_expression()
        if self._match_op("<-"):
            value = self._expression()
            self._expect_op(";")
            return EffectAssign(target, value, line=line)
        if self._match_op("<="):
            value = self._expression()
            self._expect_op(";")
            return SetInsert(target, value, line=line)
        if self._match_op("="):
            if not isinstance(target, Identifier):
                raise SGLSyntaxError(
                    "only script-local variables can be re-assigned with '='; "
                    "state is read-only and effects use '<-'",
                    line,
                )
            value = self._expression()
            self._expect_op(";")
            return LocalAssign(target.name, value, line=line)
        raise SGLSyntaxError(
            f"expected '<-', '<=' or '=' after expression, found {self._current.text!r}",
            self._current.line,
            self._current.column,
        )

    # -- expressions --------------------------------------------------------------------------

    def _expression(self) -> SglExpression:
        return self._or_expression()

    def _or_expression(self) -> SglExpression:
        left = self._and_expression()
        while True:
            token = self._current
            if token.is_op("||") or token.is_keyword("or"):
                self._advance()
                right = self._and_expression()
                left = Binary("||", left, right, line=token.line)
            else:
                return left

    def _and_expression(self) -> SglExpression:
        left = self._equality_expression()
        while True:
            token = self._current
            if token.is_op("&&") or token.is_keyword("and"):
                self._advance()
                right = self._equality_expression()
                left = Binary("&&", left, right, line=token.line)
            else:
                return left

    def _equality_expression(self) -> SglExpression:
        left = self._relational_expression()
        while self._check_op("==", "!="):
            op = self._advance()
            right = self._relational_expression()
            left = Binary(op.text, left, right, line=op.line)
        return left

    def _relational_expression(self) -> SglExpression:
        left = self._additive_expression()
        while self._check_op("<", "<=", ">", ">="):
            op = self._advance()
            right = self._additive_expression()
            left = Binary(op.text, left, right, line=op.line)
        return left

    def _additive_expression(self) -> SglExpression:
        left = self._multiplicative_expression()
        while self._check_op("+", "-"):
            op = self._advance()
            right = self._multiplicative_expression()
            left = Binary(op.text, left, right, line=op.line)
        return left

    def _multiplicative_expression(self) -> SglExpression:
        left = self._unary_expression()
        while self._check_op("*", "/", "%"):
            op = self._advance()
            right = self._unary_expression()
            left = Binary(op.text, left, right, line=op.line)
        return left

    def _unary_expression(self) -> SglExpression:
        token = self._current
        if token.is_op("-"):
            self._advance()
            return Unary("-", self._unary_expression(), line=token.line)
        if token.is_op("!") or token.is_keyword("not"):
            self._advance()
            return Unary("!", self._unary_expression(), line=token.line)
        return self._postfix_expression()

    def _postfix_expression(self) -> SglExpression:
        expr = self._primary_expression()
        while self._check_op("."):
            dot = self._advance()
            field_name = self._expect_ident().text
            expr = FieldAccess(expr, field_name, line=dot.line)
        return expr

    def _primary_expression(self) -> SglExpression:
        token = self._current
        if token.kind == "number":
            self._advance()
            value = float(token.text)
            if value.is_integer() and "." not in token.text:
                return NumberLiteral(int(value), line=token.line)
            return NumberLiteral(value, line=token.line)
        if token.kind == "string":
            self._advance()
            return StringLiteral(token.text, line=token.line)
        if token.is_keyword("true"):
            self._advance()
            return BoolLiteral(True, line=token.line)
        if token.is_keyword("false"):
            self._advance()
            return BoolLiteral(False, line=token.line)
        if token.is_keyword("null"):
            self._advance()
            return NullLiteral(line=token.line)
        if token.is_op("("):
            self._advance()
            expr = self._expression()
            self._expect_op(")")
            return expr
        if token.is_op("{"):
            self._advance()
            elements: list[SglExpression] = []
            if not self._check_op("}"):
                elements.append(self._expression())
                while self._match_op(","):
                    elements.append(self._expression())
            self._expect_op("}")
            return SetConstructor(tuple(elements), line=token.line)
        if token.kind == "ident":
            self._advance()
            if self._check_op("("):
                self._advance()
                args: list[SglExpression] = []
                if not self._check_op(")"):
                    args.append(self._expression())
                    while self._match_op(","):
                        args.append(self._expression())
                self._expect_op(")")
                return Call(token.text, tuple(args), line=token.line)
            return Identifier(token.text, line=token.line)
        raise SGLSyntaxError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )
