"""Errors raised by the SGL language front end and compiler."""

from __future__ import annotations

__all__ = ["SGLError", "SGLSyntaxError", "SGLSemanticError", "SGLCompileError", "SGLRuntimeError"]


class SGLError(Exception):
    """Base class for all SGL language errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", col {column})" if column is not None else ")")
        super().__init__(message + location)


class SGLSyntaxError(SGLError):
    """The source text could not be tokenized or parsed."""


class SGLSemanticError(SGLError):
    """The program violates SGL's static rules (state read-only, effect
    write-only, accum-loop restrictions, waitNextTick placement, …)."""


class SGLCompileError(SGLError):
    """The compiler could not lower a construct to relational algebra."""


class SGLRuntimeError(SGLError):
    """A script failed while being interpreted or executed."""
