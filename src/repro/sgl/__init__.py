"""The SGL language: lexer, parser, semantic analysis, schema generation,
compiler to relational algebra, per-object interpreter, and multi-tick
segmentation."""

from repro.sgl.ast_nodes import Program
from repro.sgl.compiler import CompiledProgram, CompiledScript, SGLCompiler
from repro.sgl.errors import (
    SGLCompileError,
    SGLError,
    SGLRuntimeError,
    SGLSemanticError,
    SGLSyntaxError,
)
from repro.sgl.interpreter import InterpretationResult, ScriptInterpreter, WorldView
from repro.sgl.ir import EffectAssignment, EffectQuery, TransactionRequest
from repro.sgl.multitick import SegmentedScript, pc_variable_name, segment_script
from repro.sgl.parser import parse_expression, parse_program
from repro.sgl.schema_gen import GeneratedSchema, SchemaGenerator, SchemaLayout
from repro.sgl.semantics import AnalyzedProgram, analyze_program

__all__ = [
    "Program",
    "CompiledProgram",
    "CompiledScript",
    "SGLCompiler",
    "SGLCompileError",
    "SGLError",
    "SGLRuntimeError",
    "SGLSemanticError",
    "SGLSyntaxError",
    "InterpretationResult",
    "ScriptInterpreter",
    "WorldView",
    "EffectAssignment",
    "EffectQuery",
    "TransactionRequest",
    "SegmentedScript",
    "pc_variable_name",
    "segment_script",
    "parse_expression",
    "parse_program",
    "GeneratedSchema",
    "SchemaGenerator",
    "SchemaLayout",
    "AnalyzedProgram",
    "analyze_program",
]
