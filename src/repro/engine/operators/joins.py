"""Join operators.

The SGL workload is dominated by self-joins with spatial range predicates
("all units within range of me"), equi-joins on object references, and
small cross products in effect computation.  The planner chooses between:

* :class:`NestedLoopJoinOp` — the fallback; also the only operator that
  supports arbitrary residual predicates and left-outer semantics directly.
* :class:`HashJoinOp` — equi-joins; builds a hash table on the right input.
* :class:`IndexNestedLoopJoinOp` — uses a table index on the inner side for
  equality keys computed from the outer row.
* :class:`BandJoinOp` — joins on per-dimension distance bounds
  (``|a.x − b.x| ≤ r``) using an on-the-fly grid built from the inner input;
  this is the set-at-a-time analogue of the accum-loop in Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.engine.expressions import Expression
from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.engine.table import Table

__all__ = [
    "NestedLoopJoinOp",
    "HashJoinOp",
    "IndexNestedLoopJoinOp",
    "BandJoinOp",
    "CrossJoinOp",
    "IndexProbeJoinOp",
]


def _merge(left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
    out = dict(left)
    out.update(right)
    return out


class CrossJoinOp(PhysicalOperator):
    """Cartesian product of two inputs (right side materialized)."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, schema: Schema):
        super().__init__(schema, (left, right))

    def _produce(self) -> Iterator[dict[str, Any]]:
        right_rows = self.children[1].rows()
        for left_row in self.children[0]:
            for right_row in right_rows:
                yield _merge(left_row, right_row)

    def label(self) -> str:
        return "CrossJoin"


class NestedLoopJoinOp(PhysicalOperator):
    """Nested-loop join with an arbitrary predicate.

    Supports inner and left-outer joins.  The right input is materialized
    once per execution (it is re-read every tick anyway).
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Expression | None,
        schema: Schema,
        how: str = "inner",
    ):
        super().__init__(schema, (left, right))
        self.condition = condition
        self.how = how

    def _produce(self) -> Iterator[dict[str, Any]]:
        right_rows = self.children[1].rows()
        right_names = self.children[1].schema.names
        null_right = {name: None for name in right_names}
        condition = self.condition
        for left_row in self.children[0]:
            matched = False
            for right_row in right_rows:
                combined = _merge(left_row, right_row)
                if condition is None or condition.evaluate(combined):
                    matched = True
                    yield combined
            if not matched and self.how == "left":
                yield _merge(left_row, null_right)

    def label(self) -> str:
        return f"NestedLoopJoin({self.how}, on={self.condition!r})"


class HashJoinOp(PhysicalOperator):
    """Hash equi-join: build on the right input, probe with the left.

    ``left_keys`` / ``right_keys`` are expressions evaluated against each
    side; ``residual`` is an optional extra predicate applied to matches
    (used when the join condition has non-equi conjuncts).
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        schema: Schema,
        residual: Expression | None = None,
        how: str = "inner",
    ):
        super().__init__(schema, (left, right))
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.how = how

    def _produce(self) -> Iterator[dict[str, Any]]:
        build: dict[tuple[Any, ...], list[dict[str, Any]]] = defaultdict(list)
        for right_row in self.children[1]:
            key = tuple(expr.evaluate(right_row) for expr in self.right_keys)
            if any(k is None for k in key):
                continue
            build[key].append(right_row)
        right_names = self.children[1].schema.names
        null_right = {name: None for name in right_names}
        residual = self.residual
        for left_row in self.children[0]:
            key = tuple(expr.evaluate(left_row) for expr in self.left_keys)
            matched = False
            if not any(k is None for k in key):
                for right_row in build.get(key, ()):
                    combined = _merge(left_row, right_row)
                    if residual is None or residual.evaluate(combined):
                        matched = True
                        yield combined
            if not matched and self.how == "left":
                yield _merge(left_row, null_right)

    def label(self) -> str:
        keys = ", ".join(
            f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        extra = "" if self.residual is None else f", residual={self.residual!r}"
        return f"HashJoin({self.how}, {keys}{extra})"


class IndexNestedLoopJoinOp(PhysicalOperator):
    """For each outer row, probe a table index on the inner side.

    ``key_fn`` maps an outer row to the index key; ``fetch`` maps an index
    key to an iterable of inner rows (already qualified).  The planner wires
    these up against the catalog so the operator itself stays storage
    agnostic.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        schema: Schema,
        key_fn: Callable[[dict[str, Any]], Any],
        fetch: Callable[[Any], Iterator[dict[str, Any]]],
        residual: Expression | None = None,
        index_label: str = "index",
    ):
        super().__init__(schema, (outer,))
        self.key_fn = key_fn
        self.fetch = fetch
        self.residual = residual
        self.index_label = index_label

    def _produce(self) -> Iterator[dict[str, Any]]:
        residual = self.residual
        for outer_row in self.children[0]:
            key = self.key_fn(outer_row)
            if key is None:
                continue
            for inner_row in self.fetch(key):
                combined = _merge(outer_row, inner_row)
                if residual is None or residual.evaluate(combined):
                    yield combined

    def label(self) -> str:
        return f"IndexNestedLoopJoin({self.index_label})"


class BandJoinOp(PhysicalOperator):
    """Spatial band join: match rows whose coordinates are within a radius.

    ``left_coords`` / ``right_coords`` name the coordinate columns on each
    side (same dimensionality) and ``radius`` is the per-dimension bound —
    exactly the ``u.x >= x-range && u.x <= x+range`` shape of Figure 2.
    The inner (right) input is bucketed into a uniform grid with cell size
    equal to the radius, so each outer row probes at most 3^d cells.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_coords: Sequence[str],
        right_coords: Sequence[str],
        radius: float,
        schema: Schema,
        residual: Expression | None = None,
    ):
        super().__init__(schema, (left, right))
        if len(left_coords) != len(right_coords):
            raise ValueError("coordinate lists must have the same dimensionality")
        self.left_coords = list(left_coords)
        self.right_coords = list(right_coords)
        self.radius = float(radius)
        self.residual = residual

    def _cell(self, coords: Sequence[float]) -> tuple[int, ...]:
        size = self.radius if self.radius > 0 else 1.0
        return tuple(int(c // size) for c in coords)

    def _produce(self) -> Iterator[dict[str, Any]]:
        grid: dict[tuple[int, ...], list[tuple[tuple[float, ...], dict[str, Any]]]] = defaultdict(list)
        dims = len(self.right_coords)
        for right_row in self.children[1]:
            coords = tuple(float(right_row[c]) for c in self.right_coords)
            grid[self._cell(coords)].append((coords, right_row))
        radius = self.radius
        residual = self.residual
        # Precompute neighbour cell offsets (-1, 0, 1)^d.
        offsets: list[tuple[int, ...]] = [()]
        for _ in range(dims):
            offsets = [o + (d,) for o in offsets for d in (-1, 0, 1)]
        for left_row in self.children[0]:
            left_pos = tuple(float(left_row[c]) for c in self.left_coords)
            base = self._cell(left_pos)
            for offset in offsets:
                cell = tuple(b + o for b, o in zip(base, offset))
                for coords, right_row in grid.get(cell, ()):
                    if all(abs(a - b) <= radius for a, b in zip(left_pos, coords)):
                        combined = _merge(left_row, right_row)
                        if residual is None or residual.evaluate(combined):
                            yield combined

    def label(self) -> str:
        pairs = ", ".join(
            f"|{l}-{r}|<={self.radius}" for l, r in zip(self.left_coords, self.right_coords)
        )
        return f"BandJoin({pairs})"


class RangeProbeJoinOp(PhysicalOperator):
    """Join where the right side is probed with per-row computed ranges.

    For each dimension *i* the planner supplies the right-side coordinate
    column and two expressions over the *left* row computing the lower and
    upper bound — the shape produced by compiling Figure 2's accum-loop
    (``u.x >= x - range && u.x <= x + range`` where ``range`` may itself be
    a per-object attribute).  The right input is materialized into a
    uniform grid whose cell size is estimated from a sample of probe widths,
    so each probe touches only nearby cells.  The full join condition is
    re-checked as a residual predicate.

    Two guards keep degenerate probe distributions from blowing up the cell
    enumeration: zero-width probes (equality lookups) are excluded from the
    cell-size sample, and a probe whose bounding box spans more cells than
    the grid has *occupied* falls back to scanning the occupied cells — so
    one very wide probe costs O(populated cells), never O(width/cell_size).
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        dimensions: Sequence[tuple[str, Expression, Expression]],
        schema: Schema,
        residual: Expression | None = None,
    ):
        super().__init__(schema, (left, right))
        self.dimensions = list(dimensions)
        self.residual = residual
        #: Optional callable ``(n_probes, width_sum, width_count)`` invoked
        #: after each execution; the index advisor uses it to spot band
        #: joins that stay hot across ticks (see optimizer/adaptive.py).
        self.stats_hook: Callable[[int, float, int], None] | None = None

    def _produce(self) -> Iterator[dict[str, Any]]:
        left_rows = self.children[0].rows()
        right_rows = self.children[1].rows()
        if not left_rows or not right_rows:
            # No probes actually executed; report zero so an always-empty
            # join never accumulates advisor heat.
            if self.stats_hook is not None:
                self.stats_hook(0, 0.0, 0)
            return
        dims = self.dimensions
        # Estimate a cell size from the average probe width over a sample.
        # Zero-width probes (exact lookups) are excluded: averaging them in
        # shrinks the cell size toward zero, and a single later wide probe
        # would then enumerate ~width/cell_size cells.
        widths: list[float] = []
        for row in left_rows[: min(len(left_rows), 32)]:
            for _, low_expr, high_expr in dims:
                low = low_expr.evaluate(row)
                high = high_expr.evaluate(row)
                if low is not None and high is not None and high > low:
                    widths.append(float(high) - float(low))
        cell_size = (sum(widths) / len(widths)) if widths else 1.0

        def cell_of(coords: Sequence[float]) -> tuple[int, ...]:
            return tuple(int(c // cell_size) for c in coords)

        grid: dict[tuple[int, ...], list[tuple[tuple[float, ...], dict[str, Any]]]] = defaultdict(list)
        for right_row in right_rows:
            coords = []
            ok = True
            for column, _, _ in dims:
                value = right_row.get(column)
                if value is None:
                    ok = False
                    break
                coords.append(float(value))
            if ok:
                grid[cell_of(coords)].append((tuple(coords), right_row))
        residual = self.residual
        n_probes = 0
        width_sum = 0.0
        width_count = 0
        for left_row in left_rows:
            bounds: list[tuple[float, float]] = []
            ok = True
            for _, low_expr, high_expr in dims:
                low = low_expr.evaluate(left_row)
                high = high_expr.evaluate(left_row)
                if low is None or high is None or high < low:
                    ok = False
                    break
                bounds.append((float(low), float(high)))
            if not ok:
                continue
            n_probes += 1
            for lo, hi in bounds:
                width_sum += hi - lo
                width_count += 1
            lo_cells = [int(lo // cell_size) for lo, _ in bounds]
            hi_cells = [int(hi // cell_size) for _, hi in bounds]
            box_cells = 1
            for lo_c, hi_c in zip(lo_cells, hi_cells):
                box_cells *= hi_c - lo_c + 1
                if box_cells > len(grid):
                    break
            if box_cells <= len(grid):
                cells: Iterator[tuple[int, ...]] = _product(
                    [range(lo_c, hi_c + 1) for lo_c, hi_c in zip(lo_cells, hi_cells)]
                )
            else:
                # The probe box covers more cells than are occupied: scan
                # the occupied cells instead of enumerating the box.
                cells = iter(
                    [
                        cell
                        for cell in grid
                        if all(lo_c <= c <= hi_c for c, lo_c, hi_c in zip(cell, lo_cells, hi_cells))
                    ]
                )
            for cell in cells:
                for coords, right_row in grid.get(cell, ()):
                    if all(lo <= c <= hi for c, (lo, hi) in zip(coords, bounds)):
                        combined = _merge(left_row, right_row)
                        if residual is None or residual.evaluate(combined):
                            yield combined
        if self.stats_hook is not None:
            self.stats_hook(n_probes, width_sum, width_count)

    def label(self) -> str:
        cols = ", ".join(column for column, _, _ in self.dimensions)
        return f"RangeProbeJoin(right=[{cols}])"


class IndexProbeJoinOp(PhysicalOperator):
    """Band/range join probing a *persistent* index on the inner table.

    Where :class:`RangeProbeJoinOp` materializes the inner input and builds
    a transient grid on **every execution**, this operator probes a
    registered table index (``GridIndex`` / ``RangeTreeIndex`` /
    ``SortedIndex``) that the table maintains O(1)-per-mutation anyway —
    Section 4.2's argument that indexing is what makes per-tick range
    queries scale, applied to the actual join path.

    ``dimensions`` are ``(right_column, low_expr, high_expr)`` triples like
    :class:`RangeProbeJoinOp`'s, with ``right_column`` resolved to the inner
    table's schema names.  The index may cover only some probe dimensions
    and may over-approximate near cell borders, so every fetched row is
    re-checked against *all* bounds before the residual runs.

    The index is re-resolved by name on every execution: plans can outlive
    the index they were built against (an incremental view's frozen full
    plan, a cached plan raced by the advisor's eviction), so a missing
    name degrades to any other covering index
    (:meth:`Table.find_index_covering`) and, failing that, to scanning the
    table's row ids per probe — slower, never wrong.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        table: "Table",
        index_name: str,
        dimensions: Sequence[tuple[str, Expression, Expression]],
        schema: Schema,
        residual: Expression | None = None,
        alias: str | None = None,
    ):
        super().__init__(schema, (outer,))
        self.table = table
        self.index_name = index_name
        self.dimensions = list(dimensions)
        self.residual = residual
        self.alias = alias
        table.index(index_name)  # validate the name at plan time
        #: Probe columns resolved to the table's schema names (the stored
        #: row dicts use base names even when the scan is aliased).
        self._base_columns = [
            table.schema.resolve(column.split(".")[-1]) for column, _, _ in self.dimensions
        ]
        #: Probe-dimension position per base column (to order ``range_search``
        #: bounds for whichever index :meth:`_resolve_index` returns).
        self._dim_by_column = {c: i for i, c in enumerate(self._base_columns)}
        #: ``(output name, stored name)`` pairs, precomputed so the hot
        #: loop merges fetched rows without per-row string work.
        self._output_columns = [
            (f"{alias}.{name.split('.')[-1]}" if alias else name, name)
            for name in table.schema.names
        ]
        #: See :attr:`RangeProbeJoinOp.stats_hook`.
        self.stats_hook: Callable[[int, float, int], None] | None = None

    def _resolve_index(self):
        """The named index, any other covering one, or ``None`` (degraded)."""
        from repro.engine.errors import CatalogError

        try:
            return self.table.index(self.index_name)
        except CatalogError:
            covering = self.table.find_index_covering(self._base_columns)
            return None if covering is None else covering[1]

    def _produce(self) -> Iterator[dict[str, Any]]:
        index = self._resolve_index()
        index_dims = (
            None
            if index is None
            else [self._dim_by_column[c.split(".")[-1]] for c in index.columns]
        )
        get_row = self.table.get
        dims = self.dimensions
        base_columns = self._base_columns
        output_columns = self._output_columns
        residual = self.residual
        n_probes = 0
        width_sum = 0.0
        width_count = 0
        for outer_row in self.children[0]:
            bounds: list[tuple[float, float]] = []
            ok = True
            for _, low_expr, high_expr in dims:
                low = low_expr.evaluate(outer_row)
                high = high_expr.evaluate(outer_row)
                if low is None or high is None or high < low:
                    ok = False
                    break
                bounds.append((float(low), float(high)))
            if not ok:
                continue
            n_probes += 1
            for lo, hi in bounds:
                width_sum += hi - lo
                width_count += 1
            if index is not None:
                rowids: Iterator[Any] = index.range_search([bounds[i] for i in index_dims])
            else:
                rowids = self.table.row_ids()
            for rowid in rowids:
                inner_row = get_row(rowid)
                ok = True
                for column, (lo, hi) in zip(base_columns, bounds):
                    value = inner_row[column]
                    if value is None or value < lo or value > hi:
                        ok = False
                        break
                if not ok:
                    continue
                combined = dict(outer_row)
                for name, stored in output_columns:
                    combined[name] = inner_row[stored]
                if residual is None or residual.evaluate(combined):
                    yield combined
        if self.stats_hook is not None:
            self.stats_hook(n_probes, width_sum, width_count)

    def label(self) -> str:
        pairs = ", ".join(
            f"{lo!r}<={c}<={hi!r}" for c, lo, hi in self.dimensions
        )
        return f"IndexProbeJoin({self.table.name}.{self.index_name}, {pairs})"


def _product(ranges: Sequence[range]) -> Iterator[tuple[int, ...]]:
    """Cartesian product of integer ranges as tuples (tiny local itertools.product)."""
    if not ranges:
        yield ()
        return
    for head in ranges[0]:
        for tail in _product(ranges[1:]):
            yield (head,) + tail
