"""Exchange operator: label rows with their destination shard.

The sharded engine (``repro.shard``) splits the world along one spatial
axis into half-open ranges separated by ``cuts``.  ``ExchangeOp`` is the
local half of a shuffle: it computes each row's destination shard with a
binary search over the cuts and tags the row, leaving the actual shipping
(framing, pipes, byte accounting) to the coordinator.  With
``exclude_shard`` set, rows staying on the local shard are dropped, which
is exactly the handoff-detection query each worker runs after the update
step.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator

from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema

__all__ = ["ExchangeOp"]


class ExchangeOp(PhysicalOperator):
    """Tag each input row with the shard owning its axis value."""

    def __init__(
        self,
        child: PhysicalOperator,
        axis_column: str,
        cuts: tuple[float, ...],
        shard_column: str,
        exclude_shard: int | None,
        schema: Schema,
    ):
        super().__init__(schema, (child,))
        self.axis_column = axis_column
        self.cuts = cuts
        self.shard_column = shard_column
        self.exclude_shard = exclude_shard

    def _produce(self) -> Iterator[dict[str, Any]]:
        (child,) = self.children
        cuts = self.cuts
        axis = self.axis_column
        shard_column = self.shard_column
        exclude = self.exclude_shard
        for row in child:
            dest = bisect_right(cuts, row[axis])
            if dest == exclude:
                continue
            yield {**row, shard_column: dest}

    def label(self) -> str:
        skip = "" if self.exclude_shard is None else f", exclude={self.exclude_shard}"
        return f"ExchangeOp({self.axis_column}, {len(self.cuts) + 1} shards{skip})"
