"""Physical operator base class.

Physical operators form an iterator tree: each operator produces row dicts
and pulls from its children.  The base class counts produced rows and wall
clock time per operator, which feeds two systems from the paper:

* the adaptive optimizer's runtime monitoring (Section 4.1) compares the
  observed cardinalities against the estimates baked into the plan, and
* the debugger's ``explain analyze`` output (Section 3.3).
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.engine.schema import Schema

__all__ = ["PhysicalOperator"]


class PhysicalOperator:
    """Base class for physical operators (iterator model)."""

    def __init__(self, schema: Schema, children: tuple["PhysicalOperator", ...] = ()):
        self.schema = schema
        self.children = children
        #: Number of rows this operator has produced across all executions.
        self.rows_produced = 0
        #: Number of times the operator tree has been executed (ticks).
        self.executions = 0
        #: Total seconds spent producing rows (includes children's time).
        self.elapsed = 0.0

    def _produce(self) -> Iterator[dict[str, Any]]:
        """Yield output rows; subclasses implement this."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[dict[str, Any]]:
        self.executions += 1
        start = time.perf_counter()
        try:
            for row in self._produce():
                self.rows_produced += 1
                yield row
        finally:
            self.elapsed += time.perf_counter() - start

    def rows(self) -> list[dict[str, Any]]:
        """Materialize the full output as a list."""
        return list(self)

    # -- introspection ---------------------------------------------------------------

    def label(self) -> str:
        """A one-line description used by explain output."""
        return type(self).__name__

    def explain(self, indent: int = 0, analyze: bool = False) -> str:
        """Render the operator tree; with *analyze*, include runtime counters."""
        line = ("  " * indent) + self.label()
        if analyze:
            line += f"  [rows={self.rows_produced} execs={self.executions} time={self.elapsed:.4f}s]"
        parts = [line]
        for child in self.children:
            parts.append(child.explain(indent + 1, analyze))
        return "\n".join(parts)

    def reset_counters(self) -> None:
        """Zero the runtime counters for this operator and all descendants."""
        self.rows_produced = 0
        self.executions = 0
        self.elapsed = 0.0
        for child in self.children:
            child.reset_counters()

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children:
            yield from child.walk()
