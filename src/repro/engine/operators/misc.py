"""Sort, limit, distinct and union operators."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.engine.algebra import SortKey
from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema

__all__ = ["SortOp", "LimitOp", "DistinctOp", "UnionOp"]


def _sort_value_key(value: Any) -> tuple[int, Any]:
    """Make heterogenous values orderable: nulls first, then by type name."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, repr(value))


class SortOp(PhysicalOperator):
    """Materialize the input and sort it by the given keys."""

    def __init__(self, child: PhysicalOperator, keys: Sequence[SortKey]):
        super().__init__(child.schema, (child,))
        self.keys = list(keys)

    def _produce(self) -> Iterator[dict[str, Any]]:
        rows = self.children[0].rows()
        for key in reversed(self.keys):
            rows.sort(
                key=lambda row: _sort_value_key(key.expression.evaluate(row)),
                reverse=not key.ascending,
            )
        yield from rows

    def label(self) -> str:
        keys = ", ".join(
            f"{k.expression!r}{'' if k.ascending else ' DESC'}" for k in self.keys
        )
        return f"Sort({keys})"


class LimitOp(PhysicalOperator):
    """Stop after *count* rows."""

    def __init__(self, child: PhysicalOperator, count: int):
        super().__init__(child.schema, (child,))
        self.count = count

    def _produce(self) -> Iterator[dict[str, Any]]:
        if self.count == 0:
            return
        produced = 0
        for row in self.children[0]:
            yield row
            produced += 1
            if produced >= self.count:
                break

    def label(self) -> str:
        return f"Limit({self.count})"


class DistinctOp(PhysicalOperator):
    """Drop duplicate rows (comparing all columns)."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema, (child,))

    def _produce(self) -> Iterator[dict[str, Any]]:
        seen: set[tuple[Any, ...]] = set()
        names = self.children[0].schema.names
        for row in self.children[0]:
            key = tuple(_hashable(row.get(name)) for name in names)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def label(self) -> str:
        return "Distinct"


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class UnionOp(PhysicalOperator):
    """Bag union: all rows of the left input, then all rows of the right."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, schema: Schema):
        super().__init__(schema, (left, right))

    def _produce(self) -> Iterator[dict[str, Any]]:
        yield from self.children[0]
        yield from self.children[1]

    def label(self) -> str:
        return "Union"
