"""Selection and projection operators."""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.engine.expressions import Expression
from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema

__all__ = ["FilterOp", "ProjectOp"]


class FilterOp(PhysicalOperator):
    """Pass through rows for which the predicate evaluates to true.

    A pass-through operator: it yields the child's dicts unchanged, so row
    ownership (see :mod:`repro.engine.operators.scan`) is preserved, not
    re-established — it never copies.
    """

    def __init__(self, child: PhysicalOperator, predicate: Expression, context: Mapping[str, Any] | None = None):
        super().__init__(child.schema, (child,))
        self.predicate = predicate
        self.context = context

    def _produce(self) -> Iterator[dict[str, Any]]:
        predicate = self.predicate
        context = self.context
        for row in self.children[0]:
            if predicate.evaluate(row, context):
                yield row

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectOp(PhysicalOperator):
    """Compute output columns from expressions over each input row."""

    def __init__(
        self,
        child: PhysicalOperator,
        projections: Sequence[tuple[str, Expression]],
        schema: Schema,
        context: Mapping[str, Any] | None = None,
    ):
        super().__init__(schema, (child,))
        self.projections = list(projections)
        self.context = context

    def _produce(self) -> Iterator[dict[str, Any]]:
        projections = self.projections
        context = self.context
        for row in self.children[0]:
            yield {name: expr.evaluate(row, context) for name, expr in projections}

    def label(self) -> str:
        return f"Project({', '.join(name for name, _ in self.projections)})"
