"""Shared-materialization sources and the fused effect sink.

Two operator families introduced by tick-wide multi-query optimization
(:mod:`repro.engine.optimizer.mqo`):

* :class:`MaterializedSourceOp` / :class:`BatchSharedSourceOp` — leaves
  that serve a shared subplan's once-per-tick materialization to a
  consumer, on the row and columnar paths respectively.  The row source
  honours the source-operator ownership contract (see
  :mod:`repro.engine.operators.scan`): every consumer receives fresh
  dicts.  The batch source shares the materialized column lists directly
  — batches are immutable by convention — so columnar consumers pay
  nothing per row.

* :class:`EffectSinkOp` — the paper's observation that effect combination
  *is* an aggregate query, pushed into the engine: instead of returning
  one row per effect assignment for the runtime to fold one
  ``EffectAssignment`` at a time, the sink groups its input by target id
  and combines the values with the effect's declared ⊕ combinator
  in-plan, handing the runtime one partial
  :class:`~repro.engine.aggregates.Accumulator` per target.  Partials
  merge exactly (``Accumulator.merge``), so multiple scripts writing the
  same effect still combine correctly at the store.  Over a batch-rooted
  child the sink reads the target/value columns directly — no row dicts
  are ever materialized for fused queries.

Order discipline: accumulation happens in the child's row order and the
runtime merges partials in tick query order, so results are deterministic
and — within one query — fold floats in exactly the unfused sequence.
When *several* fused queries write the same ``(target, effect)``, merging
their partials reassociates float addition (``(q1) + (q2)`` instead of
one left fold), so sums may differ from the unfused path by rounding
error — the same caveat the delta-maintained views and partitioned
parallel folding already carry.  Order-*sensitive* combinators
(``first``/``last``/``collect``) are never sink-fused — the runtime keeps
those queries on the row-at-a-time effect path.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.engine.aggregates import Accumulator, make_accumulator
from repro.engine.batch import ColumnBatch
from repro.engine.errors import ExecutionError
from repro.engine.expressions import resolve_batch_column
from repro.engine.operators.base import PhysicalOperator
from repro.engine.operators.batch_ops import BatchBridgeOp, BatchOperator
from repro.engine.schema import Schema

__all__ = [
    "MaterializedSourceOp",
    "BatchSharedSourceOp",
    "EffectSinkOp",
    "EffectPartial",
]

#: One fused group: ``(target id, partial accumulator, raw assignment count)``.
EffectPartial = tuple[Any, Accumulator, int]


class MaterializedSourceOp(PhysicalOperator):
    """Row-path leaf serving a shared subplan's materialized result.

    ``fetch`` returns caller-owned row dicts (the executor copies — or
    materializes fresh from the shared batch — per consumer), so the
    source-operator ownership contract holds: downstream operators may
    adopt the dicts they receive.
    """

    def __init__(
        self,
        schema: Schema,
        fetch: Callable[[], list[dict[str, Any]]],
        fingerprint: str = "",
    ):
        super().__init__(schema)
        self._fetch = fetch
        self.fingerprint = fingerprint

    def _produce(self) -> Iterator[dict[str, Any]]:
        yield from self._fetch()

    def label(self) -> str:
        short = self.fingerprint[:24]
        return f"MaterializedSource({short}…)" if len(self.fingerprint) > 24 else f"MaterializedSource({short})"


class BatchSharedSourceOp(BatchOperator):
    """Batch-path leaf serving a shared subplan's materialized batch.

    The returned batch shares the materialization's value lists (renamed
    per consumer aliasing at zero per-row cost); batch operators never
    mutate input columns, so one materialization serves every columnar
    consumer of the tick.
    """

    def __init__(
        self,
        schema: Schema,
        names: tuple[str, ...],
        fetch: Callable[[], ColumnBatch],
        fingerprint: str = "",
    ):
        super().__init__(schema, names)
        self._fetch = fetch
        self.fingerprint = fingerprint

    def execute(self) -> ColumnBatch:
        return self._fetch()

    def label(self) -> str:
        short = self.fingerprint[:24]
        return f"BatchSharedSource({short}…)" if len(self.fingerprint) > 24 else f"BatchSharedSource({short})"


class EffectSinkOp(PhysicalOperator):
    """Fused effect aggregation: group by target id, combine in-plan.

    ``partials`` is the primary interface (used by
    :meth:`Executor.execute_tick`); iterating the operator yields one
    combined row per target, which keeps ``explain`` and ad-hoc execution
    working.  Targets appear in first-assignment order and values are
    folded in child row order.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        combinator: str,
        target_column: str,
        value_column: str,
    ):
        super().__init__(child.schema, (child,))
        make_accumulator(combinator)  # validate eagerly
        self.combinator = combinator
        self.target_column = target_column
        self.value_column = value_column

    # -- fused execution ---------------------------------------------------------------

    def partials(self) -> list[EffectPartial]:
        """Execute the child and return one partial accumulator per target."""
        self.executions += 1
        child = self.children[0]
        if isinstance(child, BatchBridgeOp):
            # Columnar fast path: read the two columns straight out of the
            # batch — no row dicts at all for fused queries.
            batch = child.batch_root.execute()
            target_name = resolve_batch_column(self.target_column, batch.names)
            value_name = resolve_batch_column(self.value_column, batch.names)
            if target_name is None or value_name is None:
                raise ExecutionError(
                    f"effect sink cannot resolve {self.target_column!r}/"
                    f"{self.value_column!r} in batch {list(batch.names)[:8]}"
                )
            target_col = batch.columns[target_name]
            value_col = batch.columns[value_name]
            pairs = ((target_col[i], value_col[i]) for i in batch.indices())
        else:
            pairs = (
                (row[self.target_column], row[self.value_column]) for row in child
            )
        out = _fold_pairs(pairs, self.combinator)
        self.rows_produced += len(out)
        return out

    # -- generic operator interface -------------------------------------------------------

    def _produce(self) -> Iterator[dict[str, Any]]:
        for target, accumulator, _count in self.partials():
            yield {self.target_column: target, self.value_column: accumulator.result()}

    def label(self) -> str:
        return f"EffectSink({self.combinator} by {self.target_column})"


def _fold_pairs(pairs: Iterable[tuple[Any, Any]], combinator: str) -> list[EffectPartial]:
    """Group ``(target, value)`` pairs and fold each group's values in
    arrival order.  The single fold discipline behind every fused path —
    counts include ``None``-valued assignments (the accumulator skips
    them but the debugger's per-NPC counts must match the row-at-a-time
    store exactly), targets keep first-assignment order."""
    groups: dict[Any, Accumulator] = {}
    counts: dict[Any, int] = {}
    for target, value in pairs:
        accumulator = groups.get(target)
        if accumulator is None:
            accumulator = make_accumulator(combinator)
            groups[target] = accumulator
            counts[target] = 0
        accumulator.add(value)
        counts[target] += 1
    return [(target, acc, counts[target]) for target, acc in groups.items()]


def fold_rows_to_partials(
    rows: list[dict[str, Any]],
    combinator: str,
    target_column: str,
    value_column: str,
) -> list[EffectPartial]:
    """Sink-fold already-materialized rows (incremental-view results)."""
    return _fold_pairs(
        ((row[target_column], row[value_column]) for row in rows), combinator
    )
